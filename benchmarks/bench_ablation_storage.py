"""Ablation: pointer structures vs succinct trees (Intro's 5-10x claim).

Times the navigation primitives on both backends and asserts the memory
blow-up direction.  The paper's motivation: in-memory pointer structures
blow up memory by 5-10x over the document, which succinct trees avoid at
the price of slower (but still O(1)/O(log n)) primitives.
"""

from __future__ import annotations

import pytest

from repro.index.succinct import SuccinctTree
from repro.tree.binary import NIL


@pytest.fixture(scope="module")
def succinct(xmark_index):
    return SuccinctTree.from_binary(xmark_index.tree)


def _walk_pointer(tree) -> int:
    total = 0
    stack = [0]
    left, right = tree.left, tree.right
    while stack:
        v = stack.pop()
        total += 1
        if right[v] != NIL:
            stack.append(right[v])
        if left[v] != NIL:
            stack.append(left[v])
    return total


def _walk_succinct(succ) -> int:
    total = 0
    stack = [0]
    while stack:
        v = stack.pop()
        total += 1
        r = succ.next_sibling(v)
        if r != NIL:
            stack.append(r)
        c = succ.first_child(v)
        if c != NIL:
            stack.append(c)
    return total


def test_traversal_pointer(benchmark, xmark_index):
    assert benchmark(_walk_pointer, xmark_index.tree) == xmark_index.tree.n


def test_traversal_succinct(benchmark, xmark_index, succinct):
    # Cap the walk cost by benchmarking a subtree for large scales.
    assert benchmark.pedantic(
        _walk_succinct, args=(succinct,), rounds=1, iterations=1
    ) == xmark_index.tree.n


def test_memory_blowup(benchmark, xmark_index, succinct):
    def measure():
        return (
            SuccinctTree.pointer_memory_bytes(xmark_index.tree),
            succinct.memory_bytes(),
        )

    pointer, compact = benchmark(measure)
    assert pointer > 3 * compact  # pointers blow up memory (paper: 5-10x)
