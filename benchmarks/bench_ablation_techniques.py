"""Ablation: each Section 4.4 technique toggled independently.

Rows ``test_ablation[jump=X-memo=Y-ip=Z]`` time the full Q01-Q15 batch for
every (jumping, memoization, information propagation) combination --
the design-choice ablation DESIGN.md calls out.  Expected shape: the
techniques are complementary (paper: "Opt. Eval" is at least twice as
fast as either optimization taken individually, except Q01/Q12).
"""

from __future__ import annotations

import pytest

from repro.engine.core import run_asta
from repro.xmark.queries import QUERIES
from repro.xpath.compiler import compile_xpath

_ASTAS = [compile_xpath(q) for q in QUERIES.values()]

GRID = [
    pytest.param(j, m, i, id=f"jump={int(j)}-memo={int(m)}-ip={int(i)}")
    for j in (False, True)
    for m in (False, True)
    for i in (False, True)
]


@pytest.mark.parametrize("jumping,memo,ip", GRID)
def test_ablation(benchmark, xmark_index, jumping, memo, ip):
    def run_batch():
        for asta in _ASTAS:
            run_asta(asta, xmark_index, jumping=jumping, memo=memo, ip=ip)

    benchmark.pedantic(run_batch, rounds=2, iterations=1, warmup_rounds=0)
