"""Construction costs: parse, encode, index, succinct build.

The paper's setting assumes the indexes are built once; these rows record
what that once costs in this substrate (parse -> fcns encode -> label
index -> succinct tree).
"""

from __future__ import annotations

import pytest

from repro.index.labels import LabelIndex
from repro.index.succinct import SuccinctTree
from repro.tree.binary import BinaryTree
from repro.tree.parser import parse_xml
from repro.xmark.generator import XMarkGenerator

from conftest import SCALE


@pytest.fixture(scope="module")
def xml_text():
    return XMarkGenerator(scale=min(SCALE, 1.0), seed=42, text_content=True).xml()


@pytest.fixture(scope="module")
def document(xml_text):
    return parse_xml(xml_text)


def test_parse_xml(benchmark, xml_text):
    doc = benchmark(parse_xml, xml_text)
    assert doc.size() > 0


def test_fcns_encode(benchmark, document):
    tree = benchmark(BinaryTree.from_document, document)
    assert tree.n == document.size()


def test_label_index_build(benchmark, document):
    tree = BinaryTree.from_document(document)
    benchmark(LabelIndex, tree)


def test_succinct_build(benchmark, document):
    tree = BinaryTree.from_document(document)
    benchmark.pedantic(SuccinctTree.from_binary, args=(tree,), rounds=2, iterations=1)
