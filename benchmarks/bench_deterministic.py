"""Deterministic minimal-TDSTA pipeline vs the ASTA engine on path queries.

The Intro's "extreme |Q|-optimization": for predicate-free paths the
minimal deterministic automaton needs one look-up per relevant node.
Rows compare it with the optimized ASTA engine on the path-shaped subset
of Q01-Q15.
"""

from __future__ import annotations

import pytest

from repro.engine import deterministic, optimized
from repro.xmark.queries import QUERIES
from repro.xpath.compiler import compile_xpath

PATH_QIDS = ("Q01", "Q02", "Q03", "Q04", "Q05", "Q06", "Q11")


@pytest.mark.parametrize("qid", PATH_QIDS)
def test_deterministic(benchmark, xmark_index, qid):
    query = QUERIES[qid]
    deterministic.compile_tdsta(query)  # compile outside the timer
    _, selected = benchmark(deterministic.evaluate, query, xmark_index)
    assert selected == optimized.evaluate(compile_xpath(query), xmark_index)[1]


@pytest.mark.parametrize("qid", PATH_QIDS)
def test_asta_optimized(benchmark, xmark_index, qid):
    asta = compile_xpath(QUERIES[qid])
    benchmark(optimized.evaluate, asta, xmark_index)
