"""Figure 3: selected/visited node counts and memo-table sizes.

The benchmark times the counting run (optimized engine with stats); the
assertions pin the paper's structural claims per query.  The full table is
printed by ``python -m repro.bench.experiments fig3``.
"""

from __future__ import annotations

import pytest

from repro.counters import EvalStats
from repro.engine import memo, optimized
from repro.xmark.queries import QUERIES
from repro.xpath.compiler import compile_xpath

_ASTAS = {qid: compile_xpath(q) for qid, q in QUERIES.items()}


@pytest.mark.parametrize("qid", sorted(QUERIES))
def test_fig3(benchmark, xmark_index, qid):
    asta = _ASTAS[qid]

    def counted_run():
        stats = EvalStats()
        optimized.evaluate(asta, xmark_index, stats)
        return stats

    stats = benchmark(counted_run)
    # Line (1) <= line (2): selection requires a visit.
    assert stats.selected <= stats.visited
    # Line (2) <= line (3): jumping never visits more than full traversal.
    nojump = EvalStats()
    memo.evaluate(asta, xmark_index, nojump)
    assert stats.visited <= nojump.visited
    # Line (4): memoization tables stay tiny relative to the document.
    assert stats.memo_entries < xmark_index.tree.n / 10
