"""Figure 4: query answering time per evaluation strategy.

Benchmark rows ``test_fig4[<engine>-<Qxx>]`` reproduce the four series of
Figure 4 (Naive / Jumping / Memo / Opt) over Q01-Q15.  The paper's shape:
naive is 10-100x slower on top-level '//' queries; jumping and memoization
are complementary; Opt is the fastest except on the two-node queries
Q01/Q12 where memo insertion is pure overhead.
"""

from __future__ import annotations

import pytest

from repro.engine import jumping, memo, naive, optimized
from repro.xmark.queries import QUERIES
from repro.xpath.compiler import compile_xpath

ENGINES = {
    "naive": naive.evaluate,
    "jumping": jumping.evaluate,
    "memo": memo.evaluate,
    "opt": optimized.evaluate,
}

_ASTAS = {qid: compile_xpath(q) for qid, q in QUERIES.items()}


@pytest.mark.parametrize("engine", list(ENGINES))
@pytest.mark.parametrize("qid", sorted(QUERIES))
def test_fig4(benchmark, xmark_index, qid, engine):
    evaluate = ENGINES[engine]
    asta = _ASTAS[qid]
    accepted, selected = benchmark(evaluate, asta, xmark_index)
    # Sanity: all strategies agree with the optimized engine.
    assert selected == optimized.evaluate(asta, xmark_index)[1]
