"""Figure 5: hybrid vs regular evaluation on configurations A-D.

Rows ``test_fig5[<strategy>-<config>]`` reproduce the two bars per
configuration for //listitem//keyword//emph.  Paper's shape: hybrid wins
by orders of magnitude on A/B (rare pivot label), behaves like the regular
run on C, and D is its worst case.
"""

from __future__ import annotations

import pytest

from repro.engine import optimized
from repro.engine.hybrid import hybrid_evaluate
from repro.xmark.configs import CONFIG_SPECS
from repro.xmark.queries import HYBRID_QUERY
from repro.xpath.compiler import compile_xpath

_ASTA = compile_xpath(HYBRID_QUERY)


@pytest.mark.parametrize("name", sorted(CONFIG_SPECS))
def test_fig5_hybrid(benchmark, config_indexes, name):
    index = config_indexes[name]
    _, selected = benchmark(hybrid_evaluate, HYBRID_QUERY, index)
    assert selected == optimized.evaluate(_ASTA, index)[1]


@pytest.mark.parametrize("name", sorted(CONFIG_SPECS))
def test_fig5_regular(benchmark, config_indexes, name):
    index = config_indexes[name]
    benchmark(optimized.evaluate, _ASTA, index)
