"""Figure 8 (Appendix D): automata engine vs the step-wise baseline.

Rows ``test_fig8[<engine>-<Qxx>]`` compare the SXSI-style optimized engine
against the Gottlob-Koch-family step-wise engine (the MonetDB stand-in).
Paper's shape: the automata engine wins broadly, most dramatically on
queries whose step-wise plan materializes large intermediate node sets.
"""

from __future__ import annotations

import pytest

from repro.baselines.stepwise import stepwise_evaluate
from repro.engine import optimized
from repro.xmark.queries import QUERIES
from repro.xpath.compiler import compile_xpath

_ASTAS = {qid: compile_xpath(q) for qid, q in QUERIES.items()}


@pytest.mark.parametrize("qid", sorted(QUERIES))
def test_fig8_sxsi_style(benchmark, xmark_index, qid):
    _, selected = benchmark(optimized.evaluate, _ASTAS[qid], xmark_index)
    assert selected == stepwise_evaluate(QUERIES[qid], xmark_index)


@pytest.mark.parametrize("qid", sorted(QUERIES))
def test_fig8_stepwise(benchmark, xmark_index, qid):
    benchmark(stepwise_evaluate, QUERIES[qid], xmark_index)
