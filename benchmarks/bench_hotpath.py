"""Hot-path benchmark: interned evaluation + fused jumps, vs baseline.

Run as pytest (the CI ``bench-smoke`` job does, at a small scale)::

    REPRO_BENCH_SCALE=0.2 pytest benchmarks/bench_hotpath.py -q

The correctness assertions are blocking -- every benchmarked strategy
must return the naive oracle's selected-node set on every query of the
fig-4 mix -- while the timings are recorded into ``BENCH_hotpath.json``
without being asserted (wall-clock on shared runners is noise).

Run as a script to emit the smoke artifact at the configured scale.
Regenerating the *committed* ``BENCH_hotpath.json`` (both scales, full
repeats) is ``python -m repro.bench.baseline BENCH_hotpath.json``.
"""

from __future__ import annotations

import json
import os

from repro.bench import baseline

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
# Default to a non-tracked path so a smoke run from the repo root never
# clobbers the committed full-scale artifact.
OUT = os.environ.get("REPRO_BENCH_OUT", "BENCH_hotpath.smoke.json")


def test_hotpath_strategies_match_naive_oracle():
    """Blocking: capture() asserts oracle identity for every strategy
    and query; also emits the bench artifact for CI upload."""
    report = baseline.build_report(scales=(SCALE,), repeats=REPEATS)
    entry = report["scales"][str(SCALE)]
    # The set-at-a-time strategy is tracked here too (against the
    # pre-PR-2 baseline's 'optimized' numbers).
    assert "vectorized" in entry["strategies"]
    for strat, rec in entry["strategies"].items():
        for qid, row in rec["per_query"].items():
            assert row["oracle_match"], (strat, qid)
            assert row["ms"] > 0
    with open(OUT, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")


def test_hotpath_memo_tables_warm_across_executions():
    """Blocking: a prepared plan's second execution inserts nothing."""
    from repro.engine.api import Engine
    from repro.index.jumping import TreeIndex
    from repro.xmark.generator import XMarkGenerator

    index = TreeIndex(XMarkGenerator(scale=0.1, seed=42).tree())
    engine = Engine(index)
    plan = engine.prepare("//listitem//keyword")
    first = plan.execute()
    second = plan.execute()
    assert list(first.ids) == list(second.ids)
    assert second.stats.memo_entries == 0
    assert second.stats.memo_hits > 0


if __name__ == "__main__":
    raise SystemExit(baseline.main([OUT]))
