"""Micro-benchmarks of the index primitives the engines rely on.

The paper's cost model: dt/ft are O(|L| log n) index look-ups, lt/rt are
spine-bounded, label counts are O(1).  These rows quantify the constants
behind every jump the engines perform, on both tree backends.
"""

from __future__ import annotations

import pytest

from repro.index.succinct import SuccinctTree


@pytest.fixture(scope="module")
def label_ids(xmark_index):
    return xmark_index.label_ids(["keyword"])


def test_dt_jump(benchmark, xmark_index, label_ids):
    benchmark(xmark_index.dt, 0, label_ids)


def test_ft_chain_step(benchmark, xmark_index, label_ids):
    first = xmark_index.dt(0, label_ids)
    benchmark(xmark_index.ft, first, label_ids, 0)


def test_lt_spine(benchmark, xmark_index, label_ids):
    benchmark(xmark_index.lt, 0, label_ids)


def test_topmost_enumeration(benchmark, xmark_index, label_ids):
    benchmark(xmark_index.topmost_in_subtree, 0, label_ids)


def test_label_count(benchmark, xmark_index):
    assert benchmark(xmark_index.count, "keyword") > 0


def test_pointer_first_child(benchmark, xmark_index):
    tree = xmark_index.tree
    benchmark(lambda: tree.left[tree.n // 2])


def test_succinct_first_child(benchmark, xmark_index):
    succ = SuccinctTree.from_binary(xmark_index.tree)
    v = xmark_index.tree.n // 2
    benchmark(succ.first_child, v)


def test_succinct_parent(benchmark, xmark_index):
    succ = SuccinctTree.from_binary(xmark_index.tree)
    v = xmark_index.tree.n // 2
    benchmark(succ.parent, v)
