"""Parse→ready wall clock and peak memory for the three ingestion paths.

Run as pytest (the CI ``ingest-smoke`` job does, at a small scale)::

    REPRO_BENCH_SCALE=0.2 pytest benchmarks/bench_ingest.py -q

Three ways to get an XMark document query-ready are measured:

- **legacy**: parse into an ``XMLNode`` tree, convert to ``BinaryTree``,
  build the ``TreeIndex`` (the pre-streaming pipeline, kept as the
  baseline via ``parse_xml`` + ``from_document``);
- **streaming**: scanner events append directly into the binary-tree
  arrays (``BinaryTree.from_xml``), then build the ``TreeIndex``;
- **store_reopen**: ``repro.store.open_document`` on a previously built
  bundle -- memory-mapped arrays, no parsing (the bundle build itself is
  recorded as ``store_build``, the one-time cost).

Correctness assertions are blocking: the reopened document must answer
the fig-4 query mix byte-identically to a freshly parsed one, and the
store-reopen parse→ready time must be under 10% of a full parse.  Peak
memory is ``tracemalloc``'s traced-Python-allocation peak (deterministic
and runner-independent, unlike RSS); set ``REPRO_BENCH_ASSERT_INGEST=1``
to additionally assert that the streaming builder peaks below the legacy
``XMLNode`` pipeline.

Run as a script to (re)generate the committed ``BENCH_ingest.json``.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
import tracemalloc

from repro.engine.api import Engine
from repro.index.jumping import TreeIndex
from repro.store import open_document, save_document
from repro.tree.binary import BinaryTree
from repro.tree.parser import parse_xml
from repro.xmark.generator import XMarkGenerator
from repro.xmark.queries import QUERIES

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "5"))
# Default to a non-tracked path so a smoke run never clobbers the
# committed artifact (regenerate that with `python benchmarks/bench_ingest.py`).
OUT = os.environ.get("REPRO_BENCH_OUT", "BENCH_ingest.smoke.json")


def _best_of(fn, repeats: int) -> float:
    """Best-of-N wall clock in milliseconds (after one warm-up call)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1000.0


def _traced_peak_mb(fn) -> float:
    """Peak traced Python allocation of one ``fn()`` call, in MiB."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / (1024 * 1024)


def _phase(report: dict, name: str, fn, repeats: int) -> float:
    ms = _best_of(fn, repeats)
    report["phases"][name] = {
        "ms": round(ms, 3),
        "peak_py_mb": round(_traced_peak_mb(fn), 3),
    }
    return ms


def build_report(scale: float = SCALE, repeats: int = REPEATS) -> dict:
    generator = XMarkGenerator(scale=scale, seed=42, text_content=True)
    xml = generator.xml()
    nodes = BinaryTree.from_xml(xml).n
    report = {
        "benchmark": "ingestion parse→ready (legacy vs streaming vs store)",
        "scale": scale,
        "seed": 42,
        "nodes": nodes,
        "xml_bytes": len(xml),
        "repeats": repeats,
        "memory_metric": "tracemalloc traced-allocation peak (MiB)",
        "phases": {},
        "generator": {},
    }

    # parse→ready: "ready" means a TreeIndex an Engine can run on.
    legacy_ms = _phase(
        report,
        "legacy",
        lambda: TreeIndex(BinaryTree.from_document(parse_xml(xml))),
        repeats,
    )
    streaming_ms = _phase(
        report, "streaming", lambda: TreeIndex(BinaryTree.from_xml(xml)), repeats
    )

    workdir = tempfile.mkdtemp(prefix="repro-bench-ingest-")
    bundle = os.path.join(workdir, "xmark")
    try:
        build_ms = _best_of(lambda: save_document(xml, bundle), max(1, repeats // 2))
        report["phases"]["store_build"] = {"ms": round(build_ms, 3)}
        reopen_ms = _phase(
            report, "store_reopen", lambda: open_document(bundle), repeats
        )

        # Blocking: a reopened document answers the fig-4 mix exactly
        # like a freshly parsed one.
        fresh = Engine(xml)
        stored = Engine(open_document(bundle))
        mismatches = [
            qid
            for qid, q in QUERIES.items()
            if fresh.select(q) != stored.select(q)
        ]
        report["fig4_identity"] = not mismatches
        assert not mismatches, f"store-reopen results differ for {mismatches}"
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    full_parse_ms = min(legacy_ms, streaming_ms)
    report["reopen_vs_full_parse"] = round(reopen_ms / full_parse_ms, 4)
    report["phases"]["streaming"]["speedup_vs_legacy"] = round(
        legacy_ms / streaming_ms, 3
    )
    report["phases"]["streaming"]["peak_vs_legacy"] = round(
        report["phases"]["streaming"]["peak_py_mb"]
        / report["phases"]["legacy"]["peak_py_mb"],
        3,
    )

    # Generator-side: events straight into arrays vs the legacy
    # materialize-then-convert path (--legacy-tree).
    for mode, fn in (
        ("legacy_tree", lambda: generator.tree(legacy=True)),
        ("streaming", lambda: generator.tree()),
    ):
        report["generator"][mode] = {
            "ms": round(_best_of(fn, repeats), 3),
            "peak_py_mb": round(_traced_peak_mb(fn), 3),
        }
    return report


def _write(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")


def test_ingest_paths_ready_and_identical():
    """Blocking: fig-4 identity on reopen; reopen < 10% of a parse at the
    acceptance scale.

    The 10% bound is asserted only at scale >= 0.5 (where it holds with
    ~2x margin -- see the committed BENCH_ingest.json): at smoke scales
    the reopen's fixed per-file open cost dominates tiny documents, and
    shared-runner wall clock is noise, so smaller runs record the ratio
    without gating on it.
    """
    report = build_report()
    assert report["fig4_identity"]
    if report["scale"] >= 0.5:
        assert report["reopen_vs_full_parse"] < 0.10, (
            f"store reopen took {report['reopen_vs_full_parse']:.1%} of a "
            "full parse (target < 10%)"
        )
    _write(report, OUT)
    if os.environ.get("REPRO_BENCH_ASSERT_INGEST") == "1":
        streaming = report["phases"]["streaming"]["peak_py_mb"]
        legacy = report["phases"]["legacy"]["peak_py_mb"]
        assert streaming < legacy, (
            f"streaming builder peak {streaming} MiB not below legacy "
            f"XMLNode pipeline peak {legacy} MiB"
        )


if __name__ == "__main__":
    out = os.environ.get("REPRO_BENCH_OUT", "BENCH_ingest.json")
    report = build_report()
    _write(report, out)
    for phase, rec in report["phases"].items():
        peak = f"  peak {rec['peak_py_mb']:8.3f} MiB" if "peak_py_mb" in rec else ""
        print(f"{phase:13s} {rec['ms']:9.3f} ms{peak}")
    print(
        f"store reopen = {report['reopen_vs_full_parse']:.2%} of a full parse; "
        f"wrote {out} (scale={report['scale']}, nodes={report['nodes']})"
    )
