"""Serial-vs-parallel wall clock for the fig-4 XMark batch mix.

Run as pytest (the CI ``parallel-smoke`` job does, at a small scale)::

    REPRO_BENCH_SCALE=0.2 pytest benchmarks/bench_parallel.py -q

The correctness assertions are blocking -- every executor (the sharded
thread/process services and each point of the persistent worker-pool
scaling curve) must return exactly the serial ``Workspace.select_many``
answer *and* the naive oracle's answer for every query of the mix.  So
is pool *warmth*: the 1-worker pool's second batch must re-hit the
worker-side caches (no per-batch pool rebuild, no per-task reparse).
Timings are recorded into ``BENCH_parallel.json`` without being
asserted by default -- wall-clock speedup depends on the physical core
count (recorded in the artifact), and shared CI runners are noise --
with two opt-in gates:

- ``REPRO_BENCH_ASSERT_SPEEDUP=1`` (CI sets it only when ``nproc >= 4``)
  asserts the >= 2x pool-over-serial target at the best point of the
  1/2/4/8-worker curve;
- on a single-core machine the pool's *overhead* is asserted instead:
  its best curve point must stay within 1.15x of serial.

Run as a script to (re)generate the committed ``BENCH_parallel.json``.
"""

from __future__ import annotations

import json
import os
import time

from repro.engine.api import Engine
from repro.engine.workspace import Workspace
from repro.index.jumping import TreeIndex
from repro.xmark.generator import XMarkGenerator
from repro.xmark.queries import QUERIES

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "5"))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))
POOL_CURVE = tuple(
    int(w)
    for w in os.environ.get("REPRO_BENCH_POOL_CURVE", "1,2,4,8").split(",")
)
# Default to a non-tracked path so a smoke run never clobbers the
# committed artifact (regenerate that with `python benchmarks/bench_parallel.py`).
OUT = os.environ.get("REPRO_BENCH_OUT", "BENCH_parallel.smoke.json")


def _best_of(fn, repeats: int) -> float:
    """Best-of-N wall clock in milliseconds (after one warm-up call)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1000.0


def build_report(
    scale: float = SCALE, repeats: int = REPEATS, jobs: int = JOBS
) -> dict:
    """Measure the mix serially and on both pool flavours; verify identity."""
    index = TreeIndex(XMarkGenerator(scale=scale, seed=42).tree())
    queries = list(QUERIES.values())
    workspace = Workspace()
    workspace.add("xmark", index)

    naive = Engine(index, strategy="naive")
    oracle = {
        qid: list(naive.prepare(q).execute().ids)
        for qid, q in QUERIES.items()
    }

    serial = workspace.select_many(queries, document="xmark")
    assert {q: serial[q] for q in serial} == {
        QUERIES[qid]: ids for qid, ids in oracle.items()
    }, "serial batch disagrees with the naive oracle"

    report = {
        "benchmark": "fig-4 XMark batch mix (Q01-Q15), select_many",
        "scale": scale,
        "nodes": index.tree.n,
        "queries": len(queries),
        "jobs": jobs,
        "cores": os.cpu_count(),
        "repeats": repeats,
        "oracle_match": True,
        "modes": {},
    }
    serial_ms = _best_of(
        lambda: workspace.select_many(queries, document="xmark"), repeats
    )
    report["modes"]["serial"] = {"ms": round(serial_ms, 3)}

    # One worker, inline: total sharded work.  (sharded_1worker / serial)
    # is the work-inflation factor of the rewrite+merge machinery, and
    # sharded_1worker / jobs is the scheduling lower bound a pool chases
    # -- this is what makes the artifact interpretable on any core count.
    single = workspace.service(jobs=1)
    inline = single.select_many(queries, document="xmark")
    assert inline == serial, "single-worker sharded results differ"
    inline_ms = _best_of(
        lambda: single.select_many(queries, document="xmark"), repeats
    )
    report["modes"]["sharded_1worker"] = {
        "ms": round(inline_ms, 3),
        "shards": len(single.doc_shards("xmark")),
        "identical_to_serial": True,
        "work_inflation_vs_serial": round(inline_ms / serial_ms, 3),
    }
    report["note"] = (
        "wall-clock speedup needs physical cores; compare 'cores' above. "
        "The 4-worker scheduling bound is roughly sharded_1worker/4 "
        "(see DESIGN.md, 'Parallel sharded execution')."
    )

    for executor in ("thread", "process"):
        service = workspace.service(jobs=jobs, executor=executor)
        parallel = service.select_many(queries, document="xmark")
        assert parallel == serial, f"{executor} results differ from serial"
        ms = _best_of(
            lambda: service.select_many(queries, document="xmark"), repeats
        )
        report["modes"][executor] = {
            "ms": round(ms, 3),
            "shards": len(service.doc_shards("xmark")),
            "identical_to_serial": True,
            "speedup_vs_serial": round(serial_ms / ms, 3),
        }

    # Persistent worker-pool scaling curve.  Each point keeps its pool
    # alive across every batch it runs, so the second batch exercises the
    # warm worker-side caches -- the delta in warm_hits between batch 1
    # and batch 2 is recorded (and asserted > 0 for the 1-worker point,
    # where every task must land on an already-warm worker).
    report["pool_curve"] = {}
    for workers in POOL_CURVE:
        service = workspace.service(jobs=workers, executor="pool")
        first = service.select_many(queries, document="xmark")
        assert first == serial, f"pool({workers}w) differs from serial"
        before = service.pool_stats()
        second = service.select_many(queries, document="xmark")
        assert second == serial, f"pool({workers}w) 2nd batch differs"
        after = service.pool_stats()
        ms = _best_of(
            lambda: service.select_many(queries, document="xmark"), repeats
        )
        stats = service.pool_stats()
        report["pool_curve"][str(workers)] = {
            "ms": round(ms, 3),
            "speedup_vs_serial": round(serial_ms / ms, 3),
            "identical_to_serial": True,
            "warm_hits_second_batch": (
                after["warm_hits"] - before["warm_hits"]
            ),
            "tasks": stats["tasks"],
            "chunks": stats["chunks"],
            "steals": stats["steals"],
            "warm_hits": stats["warm_hits"],
            "warm_hit_rate": stats["warm_hit_rate"],
            "respawns": stats["respawns"],
        }
        service.close()
    best_ms = min(rec["ms"] for rec in report["pool_curve"].values())
    report["pool_best_speedup_vs_serial"] = round(serial_ms / best_ms, 3)
    report["pool_best_overhead_vs_serial"] = round(best_ms / serial_ms, 3)
    workspace.close()
    return report


def _write(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")


def test_parallel_batch_identical_to_serial_and_oracle():
    """Blocking: result identity for every executor; timings recorded."""
    report = build_report()
    for executor in ("thread", "process"):
        assert report["modes"][executor]["identical_to_serial"]
    for workers, rec in report["pool_curve"].items():
        assert rec["identical_to_serial"], f"pool({workers}w) diverged"
    assert report["oracle_match"]
    if "1" in report["pool_curve"]:
        assert report["pool_curve"]["1"]["warm_hits_second_batch"] > 0, (
            "1-worker pool went cold between batches (per-batch rebuild "
            "or per-task reparse regression)"
        )
    _write(report, OUT)
    if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") == "1":
        speedup = report["pool_best_speedup_vs_serial"]
        assert speedup >= 2.0, (
            f"worker-pool best speedup {speedup}x < 2x "
            f"(cores={report['cores']}, curve={sorted(POOL_CURVE)})"
        )
    elif report["cores"] == 1:
        overhead = report["pool_best_overhead_vs_serial"]
        assert overhead <= 1.15, (
            f"worker-pool overhead {overhead}x > 1.15x serial on a "
            "single core (dispatch/IPC regression)"
        )


if __name__ == "__main__":
    out = os.environ.get("REPRO_BENCH_OUT", "BENCH_parallel.json")
    report = build_report()
    _write(report, out)
    for mode, rec in report["modes"].items():
        extra = (
            f"  {rec['speedup_vs_serial']:.2f}x vs serial"
            if "speedup_vs_serial" in rec
            else ""
        )
        print(f"{mode:8s} {rec['ms']:9.3f} ms{extra}")
    for workers, rec in sorted(
        report["pool_curve"].items(), key=lambda kv: int(kv[0])
    ):
        print(
            f"pool_{workers}w {rec['ms']:9.3f} ms"
            f"  {rec['speedup_vs_serial']:.2f}x vs serial"
            f"  (steals={rec['steals']}, "
            f"warm_hit_rate={rec['warm_hit_rate']:.2f})"
        )
    print(
        f"wrote {out} (scale={report['scale']}, nodes={report['nodes']}, "
        f"jobs={report['jobs']}, cores={report['cores']})"
    )
