"""Planner benchmark: vectorized vs optimized vs hybrid vs auto.

Run as pytest (the CI ``planner-smoke`` job does, at a small scale)::

    REPRO_BENCH_SCALE=0.2 pytest benchmarks/bench_planner.py -q

The correctness assertions are blocking -- every strategy must return
the naive oracle's selected-node set on every query of the fig-4 mix --
while the timings are recorded into ``BENCH_planner.json`` without
being asserted (wall-clock on shared runners is noise).  Set
``REPRO_BENCH_ASSERT_PLANNER=1`` on a quiet machine to also assert the
two planner targets at scale >= 0.5:

- the ``vectorized`` strategy reaches >= 2x geomean over ``optimized``
  on the wide/descendant-heavy subset of the mix;
- ``auto`` is never worse than 1.1x the best fixed strategy per query.

Timing uses an adaptive inner loop (enough executions per sample to
spend ~2 ms) so the microsecond queries of the mix are measured above
timer jitter; the reported value is the best per-execution mean of
``repeats`` samples.

Run as a script to (re)generate the committed ``BENCH_planner.json``.
"""

from __future__ import annotations

import json
import math
import os
import time

from repro.engine.api import Engine
from repro.engine.planner import plan_explain
from repro.index.jumping import TreeIndex
from repro.xmark.generator import XMarkGenerator
from repro.xmark.queries import QUERIES

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "9"))
# Default to a non-tracked path so a smoke run never clobbers the
# committed artifact (regenerate with `python benchmarks/bench_planner.py`).
OUT = os.environ.get("REPRO_BENCH_OUT", "BENCH_planner.smoke.json")

STRATEGIES = ("vectorized", "optimized", "hybrid", "auto")
FIXED = tuple(s for s in STRATEGIES if s != "auto")

#: The wide/descendant-heavy queries of the mix: every query whose main
#: path or predicates fan out over a descendant axis with a wide
#: candidate set (the set-at-a-time sweet spot the 2x target is over).
WIDE_DESCENDANT_SUBSET = (
    "Q05", "Q06", "Q08", "Q11", "Q12", "Q13", "Q14", "Q15",
)

#: Minimum wall clock one timing sample should spend, so microsecond
#: queries are averaged over many executions instead of one jittery one.
SAMPLE_MS = 2.0


def _calibrate(plan) -> int:
    """Executions per timing sample (so one sample spends ~SAMPLE_MS).

    Also warms the plan's tables and runs the auto planner's
    trial/convergence phase to the end (auto plans freeze after their
    exploration executions), so samples measure steady state.
    """
    for _ in range(8):
        plan.execute()
    t0 = time.perf_counter()
    plan.execute()
    once = time.perf_counter() - t0
    return min(1000, max(1, int(SAMPLE_MS / 1000.0 / max(once, 1e-9))))


def _sample(plan, inner: int) -> float:
    """One timing sample: per-execution milliseconds over ``inner`` runs.

    A couple of untimed executions first re-warm this plan's working
    set -- under interleaved sampling the previous strategy's sample
    just evicted it, and whichever strategy happens to run after a
    heavy one would otherwise be billed for the cold caches.
    """
    for _ in range(max(1, min(3, inner))):
        plan.execute()
    t0 = time.perf_counter()
    for _ in range(inner):
        plan.execute()
    return (time.perf_counter() - t0) / inner * 1000.0


def _time_plans(plans: dict, repeats: int) -> dict:
    """Best per-execution ms per strategy, samples *interleaved*.

    Round-robin sampling (sample 1 of every strategy, then sample 2,
    ...) cancels thermal/turbo drift -- measuring the strategies
    sequentially would hand whichever runs after a heavy one a
    systematically downclocked core (cf. repro.bench.baseline, which
    interleaves pre/post runs for the same reason).
    """
    inner = {name: _calibrate(plan) for name, plan in plans.items()}
    best = {name: float("inf") for name in plans}
    names = list(plans)
    for r in range(repeats):
        # Rotate the order each round: a fixed order would hand every
        # strategy a fixed predecessor (and whoever follows a cheap,
        # similar strategy inherits its warm caches); rotation gives
        # each strategy samples in every slot, and best-of keeps the
        # fairest one.
        for name in names[r % len(names):] + names[: r % len(names)]:
            per = _sample(plans[name], inner[name])
            if per < best[name]:
                best[name] = per
    return best


def _geomean(values) -> float:
    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values))


def build_report(scale: float = SCALE, repeats: int = REPEATS) -> dict:
    """Measure the mix; assert oracle identity for every strategy."""
    index = TreeIndex(XMarkGenerator(scale=scale, seed=42).tree())
    engine = Engine(index)
    oracle = {
        qid: tuple(engine.prepare(q, strategy="naive").execute().ids)
        for qid, q in QUERIES.items()
    }
    report: dict = {
        "benchmark": (
            "fig-4 XMark query mix (Q01-Q15): set-at-a-time vectorized "
            "evaluation and the cost-based auto planner"
        ),
        "scale": scale,
        "nodes": index.tree.n,
        "repeats": repeats,
        "wide_descendant_subset": list(WIDE_DESCENDANT_SUBSET),
        "strategies": {s: {} for s in STRATEGIES},
        "per_query": {},
    }
    times: dict = {s: {} for s in STRATEGIES}
    for qid, q in QUERIES.items():
        row: dict = {}
        plans = {s: engine.prepare(q, strategy=s) for s in STRATEGIES}
        for strat, plan in plans.items():
            result = plan.execute()
            assert result.ids == oracle[qid], (
                f"{strat} disagrees with the naive oracle on {qid}"
            )
        measured = _time_plans(plans, repeats)
        for strat, plan in plans.items():
            ms = measured[strat]
            times[strat][qid] = ms
            stats = plan.execute().stats
            row[strat] = {
                "ms": round(ms, 4),
                "visited": stats.visited,
                "jumps": stats.jumps,
                "selected": stats.selected,
                "oracle_match": True,
            }
            if strat == "auto":
                state = plan.artifacts.get("planner")
                if state is not None:
                    row[strat]["chose"] = state.choice.strategy
                    row[strat]["replans"] = state.replans
        best_fixed = min(times[s][qid] for s in FIXED)
        row["auto_vs_best_fixed"] = round(times["auto"][qid] / best_fixed, 3)
        row["vectorized_vs_optimized"] = round(
            times["optimized"][qid] / times["vectorized"][qid], 3
        )
        report["per_query"][qid] = row

    subset_speedups = [
        times["optimized"][qid] / times["vectorized"][qid]
        for qid in WIDE_DESCENDANT_SUBSET
    ]
    report["aggregates"] = {
        "vectorized_geomean_speedup_vs_optimized_all": round(
            _geomean(
                times["optimized"][q] / times["vectorized"][q]
                for q in QUERIES
            ),
            3,
        ),
        "vectorized_geomean_speedup_vs_optimized_subset": round(
            _geomean(subset_speedups), 3
        ),
        "auto_worst_case_vs_best_fixed": round(
            max(
                report["per_query"][q]["auto_vs_best_fixed"] for q in QUERIES
            ),
            3,
        ),
        "auto_geomean_vs_best_fixed": round(
            _geomean(
                report["per_query"][q]["auto_vs_best_fixed"] for q in QUERIES
            ),
            3,
        ),
    }
    report["planner_choices"] = {
        qid: plan_explain(engine, q)["planner"]["strategy"]
        for qid, q in QUERIES.items()
    }
    return report


def _write(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")


def test_planner_mix_identical_to_oracle():
    """Blocking: oracle identity for all four strategies; timings recorded."""
    report = build_report()
    for qid, row in report["per_query"].items():
        for strat in STRATEGIES:
            assert row[strat]["oracle_match"], (strat, qid)
            assert row[strat]["ms"] > 0
    _write(report, OUT)
    if os.environ.get("REPRO_BENCH_ASSERT_PLANNER") == "1":
        agg = report["aggregates"]
        assert agg["vectorized_geomean_speedup_vs_optimized_subset"] >= 2.0, agg
        assert agg["auto_worst_case_vs_best_fixed"] <= 1.1, agg


def test_auto_picks_vectorized_on_wide_descendant_queries():
    """At any scale the planner must route the wide descendant queries
    to the set-at-a-time evaluator (the cost model's raison d'etre)."""
    index = TreeIndex(XMarkGenerator(scale=min(SCALE, 0.2), seed=42).tree())
    engine = Engine(index, strategy="auto")
    for qid in ("Q05", "Q11"):
        verdict = plan_explain(engine, QUERIES[qid])
        assert verdict["planner"]["strategy"] == "vectorized", (qid, verdict)


if __name__ == "__main__":
    out = os.environ.get("REPRO_BENCH_OUT", "BENCH_planner.json")
    report = build_report()
    _write(report, out)
    for qid in QUERIES:
        row = report["per_query"][qid]
        print(
            f"{qid}: "
            + " ".join(
                f"{s}={row[s]['ms']:.4f}ms" for s in STRATEGIES
            )
            + f"  auto/best={row['auto_vs_best_fixed']:.2f}"
        )
    print(json.dumps(report["aggregates"], indent=1, sort_keys=True))
    print(f"wrote {out} (scale={report['scale']}, nodes={report['nodes']})")
