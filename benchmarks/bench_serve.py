"""Load generator for the query daemon: latency/QPS at 1/4/16 clients.

Run as pytest (the CI ``serve-smoke`` job does, at a small scale)::

    REPRO_BENCH_SCALE=0.2 pytest benchmarks/bench_serve.py -q

The correctness assertions are blocking -- every response sampled from
every concurrency level must equal the serial ``Workspace.select``
oracle answer, and a warm ``POST /query`` repeat must be served from the
daemon's prepared-plan map without any new automaton compilation --
while the latency/throughput numbers are recorded into
``BENCH_serve.json`` without being asserted (shared CI runners are
noise; the artifact records the core count for interpretation).

Run as a script to (re)generate the committed ``BENCH_serve.json``.
"""

from __future__ import annotations

import json
import os
import statistics
import tempfile
import threading
import time

from repro.engine.workspace import Workspace
from repro.serve import DaemonThread, QueryDaemon, ServeClient
from repro.xmark.generator import XMarkGenerator

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
#: Requests per client at each concurrency level.
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "40"))
CONCURRENCY_LEVELS = (1, 4, 16)
# Default to a non-tracked path so a smoke run never clobbers the
# committed artifact (regenerate that with `python benchmarks/bench_serve.py`).
OUT = os.environ.get("REPRO_BENCH_OUT", "BENCH_serve.smoke.json")

#: The served query mix -- a few planner-friendly shapes plus predicates.
QUERY_MIX = [
    "//keyword",
    "/site/regions//item",
    "//person[address]",
    "//description//emph",
    "/site/open_auctions/open_auction",
    "//item[location]/description",
]


def _percentile(samples, q: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def _run_level(port: int, oracle: dict, clients: int, repeats: int) -> dict:
    """``clients`` threads, each its own keep-alive connection; per-request
    wall clocks pooled across all of them."""
    latencies_ms: list = []
    mismatches: list = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients)

    def worker(seed: int) -> None:
        local: list = []
        with ServeClient(port=port) as client:
            client.healthz()  # connection established before the clock starts
            barrier.wait()
            for i in range(repeats):
                query = QUERY_MIX[(seed + i) % len(QUERY_MIX)]
                t0 = time.perf_counter()
                payload = client.query(query, document="xmark")
                local.append((time.perf_counter() - t0) * 1000.0)
                if payload["ids"] != oracle[query]:
                    with lock:
                        mismatches.append((seed, query))
        with lock:
            latencies_ms.extend(local)

    threads = [
        threading.Thread(target=worker, args=(n,)) for n in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall_s = time.perf_counter() - t0
    assert not mismatches, f"served results diverged: {mismatches[:3]}"
    total = clients * repeats
    return {
        "clients": clients,
        "requests": total,
        "p50_ms": round(_percentile(latencies_ms, 0.50), 3),
        "p99_ms": round(_percentile(latencies_ms, 0.99), 3),
        "mean_ms": round(statistics.fmean(latencies_ms), 3),
        "qps": round(total / wall_s, 1),
        "identical_to_serial": True,
    }


def build_report(scale: float = SCALE, repeats: int = REPEATS) -> dict:
    """Boot a daemon over a freshly built store and drive the load mix."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as root:
        ws = Workspace()
        ws.add("xmark", XMarkGenerator(scale=scale, seed=42).xml())
        nodes = ws.engine("xmark").tree.n
        oracle = {q: ws.select(q, "xmark") for q in QUERY_MIX}
        ws.save(root)
        ws.close()

        report = {
            "benchmark": "repro serve load generator (POST /query mix)",
            "scale": scale,
            "nodes": nodes,
            "queries": len(QUERY_MIX),
            "repeats_per_client": repeats,
            "cores": os.cpu_count(),
            "oracle_match": True,
            "levels": {},
        }
        with DaemonThread(
            QueryDaemon(root, workers=os.cpu_count() or 1, queue_depth=64)
        ) as handle:
            port = handle.port

            # Warm-path proof, before any load: the second identical
            # request must be answered from the daemon's plan map with
            # zero new compilations in the shared automaton cache.
            with ServeClient(port=port) as client:
                cold = client.query(QUERY_MIX[0], document="xmark")
                compiled_before = (
                    client.stats()["caches"]["compiled"]["compilations"]
                )
                warm = client.query(QUERY_MIX[0], document="xmark")
                compiled_after = (
                    client.stats()["caches"]["compiled"]["compilations"]
                )
            assert warm["warm"] is True, "second request missed the plan map"
            assert compiled_after == compiled_before, (
                "warm repeat triggered a recompilation"
            )
            assert warm["ids"] == cold["ids"] == oracle[QUERY_MIX[0]]
            report["warm_repeat"] = {
                "warm": True,
                "recompiled": False,
                "cold_prepare_ms": cold["timing_ms"]["prepare"],
                "warm_prepare_ms": warm["timing_ms"]["prepare"],
            }

            for clients in CONCURRENCY_LEVELS:
                report["levels"][str(clients)] = _run_level(
                    port, oracle, clients, repeats
                )

            snapshot = handle.daemon.stats()
            report["daemon"] = {
                "workers": snapshot["admission"]["workers"],
                "admission_limit": snapshot["admission"]["limit"],
                "rejected": snapshot["counters"]["rejected"],
                "warm_hits": snapshot["counters"]["warm_hits"],
                "cold_misses": snapshot["counters"]["cold_misses"],
            }
        report["note"] = (
            "latency/QPS depend on the core count recorded above; the "
            "blocking assertions are response identity and the warm-path "
            "no-recompilation check (see DESIGN.md, 'Serving')."
        )
        return report


def _write(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")


def test_served_results_identical_and_warm_path_holds():
    """Blocking: oracle identity at 1/4/16 clients + warm no-replan."""
    report = build_report()
    for clients in CONCURRENCY_LEVELS:
        level = report["levels"][str(clients)]
        assert level["identical_to_serial"]
        assert level["requests"] == clients * report["repeats_per_client"]
    assert report["warm_repeat"]["warm"] is True
    assert report["warm_repeat"]["recompiled"] is False
    _write(report, OUT)


if __name__ == "__main__":
    out = os.environ.get("REPRO_BENCH_OUT", "BENCH_serve.json")
    report = build_report()
    _write(report, out)
    for clients in CONCURRENCY_LEVELS:
        rec = report["levels"][str(clients)]
        print(
            f"{clients:3d} clients  p50 {rec['p50_ms']:7.3f} ms  "
            f"p99 {rec['p99_ms']:7.3f} ms  {rec['qps']:8.1f} qps"
        )
    print(
        f"wrote {out} (scale={report['scale']}, nodes={report['nodes']}, "
        f"cores={report['cores']})"
    )
