"""Window-join benchmark: interval joins vs the other evaluators.

Run as pytest (the CI ``window-smoke`` job does, at a small scale)::

    REPRO_BENCH_SCALE=0.2 pytest benchmarks/bench_window.py -q

The mix is the window strategy's home turf plus controls: sibling
chains (``following-sibling`` windows under shared parents), backward
axes (``ancestor::``/``parent::`` steps and predicates -- the queries
the vectorized fragment excludes, which resolve to the step-at-a-time
mixed pipeline there), and three forward control queries where the
vectorized evaluator is expected to stay ahead (the planner must not
route those to ``window`` blindly).

The correctness assertions are blocking -- every strategy must return
the naive oracle's selected-node set on every query -- while timings
are recorded into ``BENCH_window.json`` without being asserted
(wall-clock on shared runners is noise).  Set
``REPRO_BENCH_ASSERT_WINDOW=1`` on a quiet machine to also assert the
two targets at scale >= 0.5:

- ``window`` reaches >= 2x geomean over ``vectorized`` on the
  window-favorable subset (W01-W10);
- ``auto`` is never worse than 1.1x the best fixed strategy per query.

Timing follows ``bench_planner.py``: adaptive inner loops (~2 ms per
sample) and rotated round-robin sampling to cancel thermal drift.

Run as a script to (re)generate the committed ``BENCH_window.json``.
"""

from __future__ import annotations

import json
import math
import os
import time

from repro.engine.api import Engine
from repro.engine.planner import plan_explain
from repro.index.jumping import TreeIndex
from repro.xmark.generator import XMarkGenerator

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "9"))
# Default to a non-tracked path so a smoke run never clobbers the
# committed artifact (regenerate with `python benchmarks/bench_window.py`).
OUT = os.environ.get("REPRO_BENCH_OUT", "BENCH_window.smoke.json")

STRATEGIES = ("window", "vectorized", "optimized", "hybrid", "auto")
FIXED = tuple(s for s in STRATEGIES if s != "auto")

#: Sibling / ancestor / backward-predicate mix plus forward controls.
#: W04-W09 are outside the vectorized fragment (a ``vectorized`` request
#: resolves to the mixed pipeline); W01-W03/W10 are sibling joins; the
#: W11-W13 controls are the set-at-a-time sweet spot.
QUERIES = {
    "W01": "//listitem/following-sibling::listitem",
    "W02": "//bidder/following-sibling::bidder",
    "W03": "/site/open_auctions/open_auction/bidder/following-sibling::bidder",
    "W04": "//keyword/ancestor::listitem",
    "W05": "//emph/ancestor::description",
    "W06": "//keyword/parent::text",
    "W07": "//date/ancestor::closed_auction",
    "W08": "//keyword[ancestor::mail]",
    "W09": "//text[parent::description]",
    "W10": "//item[mailbox/mail]/following-sibling::item",
    "W11": "//listitem//keyword",
    "W12": "/site//keyword",
    "W13": "/site/regions/*/item[mailbox/mail/date]/mailbox/mail",
}

#: The subset the >= 2x geomean-over-vectorized target is measured on:
#: everything the window joins were built for (the forward controls are
#: deliberately excluded -- there the two should be within noise).
WINDOW_FAVORABLE_SUBSET = (
    "W01", "W02", "W03", "W04", "W05",
    "W06", "W07", "W08", "W09", "W10",
)

#: Minimum wall clock one timing sample should spend, so microsecond
#: queries are averaged over many executions instead of one jittery one.
#: Longer than ``bench_planner``'s 2 ms: the mix's window runs sit in
#: the tens-of-microseconds range, where the ``auto <= 1.1x best-fixed``
#: gate needs sub-5% measurement noise (auto's frozen delegate *is* the
#: winning strategy's own ``execute``, so any measured gap is jitter).
SAMPLE_MS = 5.0


def _calibrate(plan) -> int:
    """Executions per timing sample (so one sample spends ~SAMPLE_MS).

    Also warms the plan's tables (the window strategy's depth-bucket
    LRU in particular) and runs the auto planner's trial/convergence
    phase to the end, so samples measure steady state.
    """
    for _ in range(8):
        plan.execute()
    t0 = time.perf_counter()
    plan.execute()
    once = time.perf_counter() - t0
    return min(1000, max(1, int(SAMPLE_MS / 1000.0 / max(once, 1e-9))))


def _sample(plan, inner: int) -> float:
    """One timing sample: per-execution milliseconds over ``inner`` runs."""
    for _ in range(max(1, min(3, inner))):
        plan.execute()
    t0 = time.perf_counter()
    for _ in range(inner):
        plan.execute()
    return (time.perf_counter() - t0) / inner * 1000.0


def _time_plans(plans: dict, repeats: int) -> dict:
    """Best per-execution ms per strategy, samples interleaved and the
    order rotated each round (cf. ``bench_planner._time_plans``).

    The collector is paused while sampling: each execution allocates a
    result tuple and counter object, so periodic gen-2 collections
    otherwise land in random samples and dominate the microsecond-scale
    spread the ``auto`` gate needs to resolve.
    """
    import gc

    inner = {name: _calibrate(plan) for name, plan in plans.items()}
    best = {name: float("inf") for name in plans}
    names = list(plans)
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for r in range(repeats):
            for name in names[r % len(names):] + names[: r % len(names)]:
                per = _sample(plans[name], inner[name])
                if per < best[name]:
                    best[name] = per
    finally:
        if was_enabled:
            gc.enable()
    return best


def _geomean(values) -> float:
    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values))


def build_report(scale: float = SCALE, repeats: int = REPEATS) -> dict:
    """Measure the mix; assert oracle identity for every strategy."""
    index = TreeIndex(XMarkGenerator(scale=scale, seed=42).tree())
    engine = Engine(index)
    oracle = {
        qid: tuple(engine.prepare(q, strategy="naive").execute().ids)
        for qid, q in QUERIES.items()
    }
    report: dict = {
        "benchmark": (
            "window-join mix (W01-W13): sibling chains, backward axes, "
            "backward predicates, and forward controls on XMark"
        ),
        "scale": scale,
        "nodes": index.tree.n,
        "repeats": repeats,
        "window_favorable_subset": list(WINDOW_FAVORABLE_SUBSET),
        "strategies": {s: {} for s in STRATEGIES},
        "per_query": {},
    }
    times: dict = {s: {} for s in STRATEGIES}
    for qid, q in QUERIES.items():
        row: dict = {}
        plans = {s: engine.prepare(q, strategy=s) for s in STRATEGIES}
        for strat, plan in plans.items():
            result = plan.execute()
            assert result.ids == oracle[qid], (
                f"{strat} disagrees with the naive oracle on {qid}"
            )
        measured = _time_plans(plans, repeats)
        for strat, plan in plans.items():
            ms = measured[strat]
            times[strat][qid] = ms
            stats = plan.execute().stats
            row[strat] = {
                "ms": round(ms, 4),
                # What the request actually resolved to: a ``vectorized``
                # request for a backward-axis query runs as ``mixed``.
                "executes_as": plan.strategy.name,
                "visited": stats.visited,
                "jumps": stats.jumps,
                "selected": stats.selected,
                "oracle_match": True,
            }
            if strat == "auto":
                state = plan.artifacts.get("planner")
                if state is not None:
                    row[strat]["chose"] = state.choice.strategy
                    row[strat]["replans"] = state.replans
        best_fixed = min(times[s][qid] for s in FIXED)
        row["auto_vs_best_fixed"] = round(times["auto"][qid] / best_fixed, 3)
        row["window_vs_vectorized"] = round(
            times["vectorized"][qid] / times["window"][qid], 3
        )
        report["per_query"][qid] = row

    subset_speedups = [
        times["vectorized"][qid] / times["window"][qid]
        for qid in WINDOW_FAVORABLE_SUBSET
    ]
    report["aggregates"] = {
        "window_geomean_speedup_vs_vectorized_all": round(
            _geomean(
                times["vectorized"][q] / times["window"][q] for q in QUERIES
            ),
            3,
        ),
        "window_geomean_speedup_vs_vectorized_subset": round(
            _geomean(subset_speedups), 3
        ),
        "window_geomean_speedup_vs_optimized_subset": round(
            _geomean(
                times["optimized"][q] / times["window"][q]
                for q in WINDOW_FAVORABLE_SUBSET
            ),
            3,
        ),
        "auto_worst_case_vs_best_fixed": round(
            max(
                report["per_query"][q]["auto_vs_best_fixed"] for q in QUERIES
            ),
            3,
        ),
        "auto_geomean_vs_best_fixed": round(
            _geomean(
                report["per_query"][q]["auto_vs_best_fixed"] for q in QUERIES
            ),
            3,
        ),
    }
    report["planner_choices"] = {
        qid: plan_explain(engine, q)["planner"]["strategy"]
        for qid, q in QUERIES.items()
    }
    return report


def _write(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")


def test_window_mix_identical_to_oracle():
    """Blocking: oracle identity for all five strategies; timings recorded."""
    report = build_report()
    for qid, row in report["per_query"].items():
        for strat in STRATEGIES:
            assert row[strat]["oracle_match"], (strat, qid)
            assert row[strat]["ms"] > 0
    _write(report, OUT)
    if os.environ.get("REPRO_BENCH_ASSERT_WINDOW") == "1":
        agg = report["aggregates"]
        assert agg["window_geomean_speedup_vs_vectorized_subset"] >= 2.0, agg
        assert agg["auto_worst_case_vs_best_fixed"] <= 1.1, agg


def test_backward_queries_execute_natively_on_window():
    """The headline capability: ancestor/parent queries run as window
    joins (no mixed-pipeline fallback) when requested -- and the auto
    planner routes them to ``window`` on its own."""
    index = TreeIndex(XMarkGenerator(scale=min(SCALE, 0.2), seed=42).tree())
    engine = Engine(index, strategy="auto")
    for qid in ("W04", "W07"):
        plan = engine.prepare(QUERIES[qid], strategy="window")
        assert plan.strategy.name == "window", qid
        verdict = plan_explain(engine, QUERIES[qid])
        assert verdict["planner"]["strategy"] == "window", (qid, verdict)


def test_auto_keeps_forward_controls_off_window_fallbacks():
    """On the forward controls the planner may pick any set-at-a-time
    evaluator, but never the step-at-a-time ones -- the cost model must
    see through the window strategy's wider fragment."""
    index = TreeIndex(XMarkGenerator(scale=min(SCALE, 0.2), seed=42).tree())
    engine = Engine(index, strategy="auto")
    for qid in ("W11", "W12"):
        verdict = plan_explain(engine, QUERIES[qid])
        assert verdict["planner"]["strategy"] in ("vectorized", "window"), (
            qid,
            verdict,
        )


if __name__ == "__main__":
    out = os.environ.get("REPRO_BENCH_OUT", "BENCH_window.json")
    report = build_report()
    _write(report, out)
    for qid in QUERIES:
        row = report["per_query"][qid]
        print(
            f"{qid}: "
            + " ".join(f"{s}={row[s]['ms']:.4f}ms" for s in STRATEGIES)
            + f"  win/vec={row['window_vs_vectorized']:.2f}x"
            + f"  auto/best={row['auto_vs_best_fixed']:.2f}"
        )
    print(json.dumps(report["aggregates"], indent=1, sort_keys=True))
    print(f"wrote {out} (scale={report['scale']}, nodes={report['nodes']})")
