"""Shared benchmark fixtures.

The workload scale is controlled by two environment variables:

- ``REPRO_BENCH_SCALE``    (default 1.0): XMark generator scale for the
  fig3/fig4/fig8 instances (~30k element nodes per 1.0);
- ``REPRO_BENCH_FRACTION`` (default 0.1): size fraction of the Figure 5
  configurations (1.0 = the paper's exact counts).

Raise them to stress the engines; the reported *shapes* are stable across
scales (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os

import pytest

from repro.index.jumping import TreeIndex
from repro.xmark.configs import CONFIG_SPECS, make_config_tree
from repro.xmark.generator import XMarkGenerator

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
FRACTION = float(os.environ.get("REPRO_BENCH_FRACTION", "0.1"))


@pytest.fixture(scope="session")
def xmark_index() -> TreeIndex:
    return TreeIndex(XMarkGenerator(scale=SCALE, seed=42).tree())


@pytest.fixture(scope="session")
def config_indexes() -> dict:
    return {
        name: TreeIndex(make_config_tree(name, FRACTION))
        for name in CONFIG_SPECS
    }
