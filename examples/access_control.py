"""Access-control filtering: XPath rules over a document (XACML-style).

The paper's introduction motivates fast XPath by access-control languages
like XACML, where policies are XPath expressions deciding which parts of
a document a role may see.  This example evaluates a small rule set over
a generated auction site, combining forward rules (automata engine),
backward-axis rules (mixed pipeline) and subtree extraction.

Run:  python examples/access_control.py
"""

from repro import Engine
from repro.xmark.generator import XMarkGenerator

RULES = {
    # role -> (allowed paths, denied paths); deny wins.
    "analyst": (
        ["/site/closed_auctions//price", "/site/closed_auctions//date",
         "//item/name"],
        [],
    ),
    "support": (
        ["/site/people/person/name", "//mail/date",
         "//person[address]/emailaddress"],
        ["//person[creditcard]/emailaddress"],
    ),
    "auditor": (
        ["//creditcard/..",            # whole person records with cards
         "//closed_auction[seller]"],
        ["//profile"],
    ),
}


def authorized_nodes(engine: Engine, role: str) -> set:
    allowed_paths, denied_paths = RULES[role]
    allowed: set = set()
    for path in allowed_paths:
        allowed.update(engine.select(path))
    for path in denied_paths:
        allowed.difference_update(engine.select(path))
    return allowed


def main() -> None:
    doc = XMarkGenerator(scale=0.3, seed=5).document()
    engine = Engine(doc)
    print(f"document: {len(engine.tree)} nodes")
    print()
    for role in RULES:
        nodes = authorized_nodes(engine, role)
        by_label: dict = {}
        for v in nodes:
            by_label[engine.tree.label(v)] = by_label.get(engine.tree.label(v), 0) + 1
        summary = ", ".join(f"{k}×{v}" for k, v in sorted(by_label.items()))
        print(f"{role:8s} may access {len(nodes):5d} nodes: {summary}")

    print()
    print("== audit trail: first record visible to 'auditor' ==")
    records = engine.extract("//creditcard/..")
    if records:
        print(records[0])

    print()
    print("== rule engine internals ==")
    engine.select("//person[creditcard]/emailaddress")
    stats = engine.last_stats
    print(f"deny-rule evaluation visited {stats.visited} nodes "
          f"({stats.jumps} jumps) out of {len(engine.tree)}")


if __name__ == "__main__":
    main()
