"""Tour of the automata machinery behind the engine.

Walks through the paper's pipeline on concrete objects:

1. compile an XPath query to an ASTA (Section 4.2),
2. inspect the on-the-fly top-down approximation and its jump plans
   (Definition 4.2 / Figure 1),
3. run the deterministic machinery of Section 3: minimization, relevant
   nodes, and the jumping top-down algorithm B.1.

Run:  python examples/automata_explorer.py
"""

from repro.asta.tda import TDAAnalysis
from repro.automata.examples import sta_desc_a_desc_b, sta_dtd_root_a
from repro.automata.minimize import complete_topdown, minimize_tdsta
from repro.automata.relevance import topdown_relevant
from repro.automata.topdown import topdown_jump
from repro.counters import EvalStats
from repro.index.jumping import TreeIndex
from repro.tree.binary import BinaryTree
from repro.xpath.compiler import compile_xpath


def section(title: str) -> None:
    print()
    print(f"### {title}")
    print()


def main() -> None:
    section("1. XPath -> ASTA (the Example 4.1 automaton)")
    asta = compile_xpath("//a//b[c]")
    print(asta.describe())

    section("2. Top-down approximation and jump plans (Figure 1)")
    tree = BinaryTree.from_xml(
        "<x><a><b><c/></b><b/><d><b><c/></b></d></a><b/></x>"
    )
    tda = TDAAnalysis(asta, tree)
    top = frozenset(asta.top)
    frontier = [top]
    seen = set()
    while frontier:
        states = frontier.pop()
        if states in seen or not states:
            continue
        seen.add(states)
        info = tda.info(states)
        pretty = "{" + ",".join(sorted(q.split("_")[0] for q in states)) + "}"
        print(f"state set {pretty}: jump shape = {info.jump_shape}, "
              f"essential labels = {sorted(info.essential_names) or '(none)'}")
        for rep, atom in info.per_atom.items():
            frontier.append(atom.s1)
            frontier.append(atom.s2)

    section("3. Evaluating with jumps")
    index = TreeIndex(tree)
    from repro.engine import optimized

    stats = EvalStats()
    _, selected = optimized.evaluate(asta, index, stats)
    print(f"//a//b[c] over {tree.n} nodes: answer {selected}, "
          f"visited {stats.visited}, jumps {stats.jumps}")

    section("4. Deterministic STAs: minimization and relevant nodes")
    sta = sta_desc_a_desc_b()
    print("A_//a//b:", sta)
    mini = minimize_tdsta(sta)
    print("minimized:", mini, "(already minimal)")
    relevant = topdown_relevant(sta, tree)
    print(f"relevant nodes of the unique run: {sorted(relevant)}")
    run = topdown_jump(sta, index)
    print(f"topdown_jump visits exactly those: {sorted(run)}")
    assert frozenset(run) == relevant

    section("5. Subtree skipping on a recognizer (the DTD example)")
    rec = complete_topdown(sta_dtd_root_a())
    stats = EvalStats()
    doc = BinaryTree.from_xml("<a>" + "<x><y/></x>" * 500 + "</a>")
    run = topdown_jump(rec, TreeIndex(doc), stats)
    print(f"validated a {doc.n}-node document against <!ELEMENT a ANY> "
          f"by visiting {stats.visited} node(s): run = {dict(run)}")


if __name__ == "__main__":
    main()
