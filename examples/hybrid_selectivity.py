"""Start-anywhere (hybrid) evaluation on the Figure 5 configurations.

Shows how the hybrid planner picks the rarest label as pivot and how many
nodes each strategy touches on the four hand-crafted documents A-D of the
paper, for the query //listitem//keyword//emph.

Run:  python examples/hybrid_selectivity.py [fraction]
"""

import sys

from repro.counters import EvalStats
from repro.engine import optimized
from repro.engine.hybrid import hybrid_evaluate, plan_pivot
from repro.index.jumping import TreeIndex
from repro.xmark.configs import CONFIG_SPECS, make_config_tree
from repro.xmark.queries import HYBRID_QUERY
from repro.xpath.compiler import compile_xpath
from repro.xpath.parser import parse_xpath


def main(fraction: float = 0.1) -> None:
    path = parse_xpath(HYBRID_QUERY)
    asta = compile_xpath(path)
    print(f"query: {HYBRID_QUERY}   (configs at fraction {fraction})")
    print()
    header = (f"{'cfg':3s} {'nodes':>8s} {'pivot':>9s} {'answer':>7s} "
              f"{'visited hybrid':>14s} {'visited regular':>15s}")
    print(header)
    print("-" * len(header))
    for name, spec in CONFIG_SPECS.items():
        tree = make_config_tree(name, fraction)
        index = TreeIndex(tree)
        pivot = path.steps[plan_pivot(path, index)].test
        s_h, s_r = EvalStats(), EvalStats()
        _, sel = hybrid_evaluate(path, index, s_h)
        optimized.evaluate(asta, index, s_r)
        print(f"{name:3s} {tree.n:8d} {pivot:>9s} {len(sel):7d} "
              f"{s_h.visited:14d} {s_r.visited:15d}")
    print()
    print("A/B: rare pivot -> hybrid touches a handful of nodes.")
    print("C:   pivot not rare among listitems -> hybrid ~ regular.")
    print("D:   worst case -- pivot count close to the top label's.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.1)
