"""Parallel batches: shard a document, fan a query mix out to a pool.

Run:  python examples/parallel_batch.py [scale]

The same batch is answered three ways -- serial workspace, sharded
thread pool, sharded process pool -- and the three answers are
asserted identical.  The equivalent one-shot CLI is::

    python -m repro.cli batch --queries queries.txt --jobs 4 --xmark 0.2
"""

import sys
import time

from repro import Workspace
from repro.engine.parallel import shard_document
from repro.xmark.generator import XMarkGenerator
from repro.xmark.queries import QUERIES


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    ws = Workspace()
    ws.add("auctions", XMarkGenerator(scale=scale, seed=42).tree())
    queries = list(QUERIES.values())

    print("== sharding: split at top-level children of the root ==")
    shards = shard_document(ws.engine("auctions").index, parts=4)
    n = ws.engine("auctions").tree.n
    for shard in shards:
        root_child = shard.index.tree.label(1)
        print(f"shard {shard.ordinal}: nodes [{shard.lo:5d}, {shard.hi:5d})"
              f"  ~{100 * (shard.hi - shard.lo) / n:4.1f}%  starts <{root_child}>")

    print()
    print("== one batch, three executors, one answer ==")
    t0 = time.perf_counter()
    serial = ws.select_many(queries, document="auctions")
    serial_ms = (time.perf_counter() - t0) * 1000
    print(f"serial        {serial_ms:8.2f} ms")
    for executor in ("thread", "process"):
        service = ws.service(jobs=4, executor=executor)
        service.select_many(queries, document="auctions")  # warm the pool
        t0 = time.perf_counter()
        parallel = service.select_many(queries, document="auctions")
        ms = (time.perf_counter() - t0) * 1000
        assert parallel == serial
        print(f"{executor:8s}x4    {ms:8.2f} ms   identical to serial: "
              f"{parallel == serial}")
    ws.close()

    print()
    print("== per-query aggregated shard counters ==")
    service = ws.service(jobs=2)
    for qid in ("Q05", "Q08", "Q12"):
        result = service.execute(QUERIES[qid], "auctions")
        print(f"{qid}: {len(result.ids):4d} nodes selected, "
              f"{result.stats.visited} visited, {result.stats.jumps} jumps "
              f"across {len(service.doc_shards('auctions'))} shards")
    ws.close()


if __name__ == "__main__":
    main()
