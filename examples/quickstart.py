"""Quickstart: parse a document, run queries, inspect the machinery.

Run:  python examples/quickstart.py
"""

from repro import Engine, Workspace, parse_xml, strategy_names

XML = """
<library>
  <shelf id="s1">
    <book><title/><author/><keyword/></book>
    <book><title/><keyword><emph/></keyword></book>
  </shelf>
  <shelf id="s2">
    <box><book><title/></book></box>
  </shelf>
</library>
"""

BRANCH_XML = "<library><shelf><book><keyword/></book></shelf></library>"


def main() -> None:
    doc = parse_xml(XML)
    engine = Engine(doc)  # default: the fully optimized engine

    print("== basic queries (the legacy one-liner still works) ==")
    for query in ("//book", "/library/shelf/book", "//book[keyword]",
                  "//shelf//book//keyword", "//book[not(author)]"):
        ids = engine.select(query)
        print(f"{query:32s} -> {len(ids)} nodes  {ids}")

    print()
    print("== prepared queries: parse/compile once, execute many ==")
    plan = engine.prepare("//shelf//book//keyword")
    result = plan.execute()  # fresh, immutable stats per execution
    print(f"resolved strategy: {plan.strategy.name}")
    print(f"visited {result.stats.visited} of {len(engine.tree)} nodes, "
          f"{result.stats.jumps} index jumps, "
          f"{result.stats.memo_entries} memo entries")
    again = plan.execute()  # no re-parsing, no re-compilation
    print(f"re-executed: same answer {list(again.ids) == list(result.ids)}, "
          f"{engine.cache.compilations} compilation(s) total")

    print()
    print("== a workspace: many documents, one compiled-query cache ==")
    ws = Workspace()
    ws.add("main", XML)
    ws.add("branch", BRANCH_XML)
    print("select_all('//book') ->", ws.select_all("//book"))
    print("select_many on 'main' ->",
          ws.select_many(["//keyword", "//author"], document="main"))
    print(f"compiled {ws.cache.compilations} automata for "
          f"{3} distinct queries across {len(ws)} documents")

    print()
    print("== the compiled automaton ==")
    print(engine.explain("//book[keyword]"))

    print()
    print("== every registered strategy agrees ==")
    for strategy in strategy_names():
        engine.set_strategy(strategy)
        print(f"{strategy:14s} //book -> {engine.count('//book')} nodes")


if __name__ == "__main__":
    main()
