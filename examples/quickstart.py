"""Quickstart: parse a document, run queries, inspect the machinery.

Run:  python examples/quickstart.py
"""

from repro import Engine, parse_xml

XML = """
<library>
  <shelf id="s1">
    <book><title/><author/><keyword/></book>
    <book><title/><keyword><emph/></keyword></book>
  </shelf>
  <shelf id="s2">
    <box><book><title/></book></box>
  </shelf>
</library>
"""


def main() -> None:
    doc = parse_xml(XML)
    engine = Engine(doc)  # default: the fully optimized engine

    print("== basic queries ==")
    for query in ("//book", "/library/shelf/book", "//book[keyword]",
                  "//shelf//book//keyword", "//book[not(author)]"):
        ids = engine.select(query)
        print(f"{query:32s} -> {len(ids)} nodes  {ids}")

    print()
    print("== what the engine did (//shelf//book//keyword) ==")
    engine.select("//shelf//book//keyword")
    stats = engine.last_stats
    print(f"visited {stats.visited} of {len(engine.tree)} nodes, "
          f"{stats.jumps} index jumps, {stats.memo_entries} memo entries")

    print()
    print("== the compiled automaton ==")
    print(engine.explain("//book[keyword]"))

    print()
    print("== strategies agree ==")
    for strategy in ("naive", "jumping", "memo", "optimized", "hybrid"):
        engine.set_strategy(strategy)
        print(f"{strategy:10s} //book -> {engine.count('//book')} nodes")


if __name__ == "__main__":
    main()
