"""XMark workload walkthrough: Q01-Q15 with per-strategy statistics.

Generates a scaled XMark auction document and runs the paper's fifteen
queries (Figure 2), reporting answer sizes and how few nodes the jumping
engine touches -- a live miniature of Figure 3.

Run:  python examples/xmark_analytics.py [scale]
"""

import sys

from repro.counters import EvalStats
from repro.engine import naive, optimized
from repro.index.jumping import TreeIndex
from repro.xmark.generator import XMarkGenerator
from repro.xmark.queries import QUERIES
from repro.xpath.compiler import compile_xpath


def main(scale: float = 0.5) -> None:
    print(f"generating XMark document at scale {scale} ...")
    tree = XMarkGenerator(scale=scale, seed=42).tree()
    index = TreeIndex(tree)
    print(f"document: {tree.n} element nodes, {len(tree.labels)} labels, "
          f"height {tree.height()}")
    print()
    header = f"{'query':5s} {'answer':>7s} {'visited(opt)':>12s} {'visited(naive)':>14s} {'ratio %':>8s}"
    print(header)
    print("-" * len(header))
    for qid, q in QUERIES.items():
        asta = compile_xpath(q)
        s_opt, s_naive = EvalStats(), EvalStats()
        _, selected = optimized.evaluate(asta, index, s_opt)
        naive.evaluate(asta, index, s_naive)
        print(
            f"{qid:5s} {len(selected):7d} {s_opt.visited:12d} "
            f"{s_naive.visited:14d} {s_opt.ratio_selected_visited():8.1f}"
        )
    print()
    print("ratio = selected / visited-with-jumping (Figure 3, line 5)")

    # A couple of domain questions beyond the fixed query set.
    from repro.engine.api import Engine

    engine = Engine(tree)
    print()
    print("== ad-hoc analytics ==")
    print("auctions with annotated descriptions:",
          engine.count("/site/closed_auctions/closed_auction[annotation/description]"))
    print("persons reachable by phone or homepage:",
          engine.count("/site/people/person[phone or homepage]"))
    print("items outside europe with mailbox mail:",
          engine.count("/site/regions/*/item[mailbox/mail]")
          - engine.count("/site/regions/europe/item[mailbox/mail]"))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
