"""repro -- reproduction of "XPath Whole Query Optimization" (VLDB 2010).

Selecting tree automata, relevant-node jumping, and alternating-automaton
XPath evaluation over indexed XML trees, in pure Python.

Quickstart::

    from repro import parse_xml, Engine

    doc = parse_xml("<site><a><b/></a></site>")
    engine = Engine(doc)                  # optimized: jumping + memo + IP
    ids = engine.select("//a//b")
    print(engine.labels_of(ids))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.counters import EvalStats
from repro.engine.api import Engine, evaluate
from repro.index.jumping import TreeIndex
from repro.tree.binary import BinaryTree
from repro.tree.document import XMLDocument, XMLNode
from repro.tree.parser import parse_xml
from repro.xpath.compiler import compile_xpath
from repro.xpath.parser import parse_xpath

__version__ = "1.0.0"

__all__ = [
    "Engine",
    "evaluate",
    "parse_xml",
    "parse_xpath",
    "compile_xpath",
    "BinaryTree",
    "TreeIndex",
    "XMLDocument",
    "XMLNode",
    "EvalStats",
    "__version__",
]
