"""repro -- reproduction of "XPath Whole Query Optimization" (VLDB 2010).

Selecting tree automata, relevant-node jumping, and alternating-automaton
XPath evaluation over indexed XML trees, in pure Python.

Quickstart::

    from repro import parse_xml, Engine

    doc = parse_xml("<site><a><b/></a></site>")
    engine = Engine(doc)                  # optimized: jumping + memo + IP
    ids = engine.select("//a//b")
    print(engine.labels_of(ids))

Prepared queries (parse/compile once, execute many times, immutable
per-execution stats)::

    plan = engine.prepare("//a//b")
    result = plan.execute()
    print(result.nodes, result.stats.visited)

Multiple documents sharing one compiled-query cache::

    from repro import Workspace

    ws = Workspace()
    ws.add("d1", "<site><a><b/></a></site>")
    ws.add("d2", "<site><b/></site>")
    print(ws.select_all("//b"))           # {'d1': [...], 'd2': [...]}

Evaluation strategies are plugins -- see :mod:`repro.engine.registry`
and DESIGN.md for the system layers and the extension point; the
paper-vs-measured record lives in :mod:`repro.bench.experiments`.
"""

from repro.counters import EvalStats
from repro.engine.api import Engine, evaluate
from repro.engine.parallel import QueryService
from repro.engine.plan import ExecutionResult, PreparedQuery
from repro.engine.registry import Strategy, register_strategy, strategy_names
from repro.engine.workspace import Workspace
from repro.index.jumping import TreeIndex
from repro.store import DocumentStore, StoredDocument, open_document, save_document
from repro.tree.binary import BinaryTree
from repro.tree.document import XMLDocument, XMLNode
from repro.tree.parser import parse_xml
from repro.xpath.compiler import compile_xpath
from repro.xpath.parser import parse_xpath

__version__ = "1.1.0"

__all__ = [
    "Engine",
    "evaluate",
    "parse_xml",
    "parse_xpath",
    "compile_xpath",
    "BinaryTree",
    "TreeIndex",
    "XMLDocument",
    "XMLNode",
    "EvalStats",
    "ExecutionResult",
    "PreparedQuery",
    "Strategy",
    "register_strategy",
    "strategy_names",
    "Workspace",
    "QueryService",
    "DocumentStore",
    "StoredDocument",
    "open_document",
    "save_document",
    "__version__",
]
