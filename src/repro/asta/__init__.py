"""Alternating selecting tree automata (Section 4, Appendix C).

- :mod:`repro.asta.formula` -- Boolean transition formulas
  ``φ ::= ⊤ | ⊥ | φ∨φ | φ∧φ | ¬φ | ↓1 q | ↓2 q``,
- :mod:`repro.asta.automaton` -- the ASTA structure (Definition 4.1),
- :mod:`repro.asta.semantics` -- the Figure 7 evaluation rules
  (``eval_trans``, result sets, node selection),
- :mod:`repro.asta.tda` -- the top-down approximation (Definition 4.2)
  with the per-state-set jump analysis, computed on the fly.
"""

from repro.asta.automaton import ASTA, ASTATransition
from repro.asta.formula import (
    FALSE,
    TRUE,
    down,
    down_states,
    fand,
    fnot,
    for_,
    formula_str,
)

__all__ = [
    "ASTA",
    "ASTATransition",
    "TRUE",
    "FALSE",
    "fand",
    "for_",
    "fnot",
    "down",
    "down_states",
    "formula_str",
]
