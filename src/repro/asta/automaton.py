"""Alternating selecting tree automata (Definition 4.1).

An ASTA is ``(Σ, Q, T, δ)`` where transitions are
``(q, L, τ, φ)`` with ``τ ∈ {→, ⇒}`` (⇒ selects the node) and ``φ`` a
Boolean formula over ↓1/↓2 state atoms.  Σ stays implicit through
finite/co-finite :class:`~repro.automata.labelset.LabelSet` values, exactly
as for STAs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.asta.formula import Formula, down_states, formula_str
from repro.automata.labelset import LabelSet

State = str


@dataclass(frozen=True)
class ASTATransition:
    """One rule ``q, L τ φ``; ``selecting`` encodes τ = ⇒."""

    q: State
    labels: LabelSet
    selecting: bool
    formula: Formula

    def __repr__(self) -> str:
        arrow = "⇒" if self.selecting else "→"
        return f"{self.q}, {self.labels} {arrow} {formula_str(self.formula)}"


class ASTA:
    """An alternating selecting tree automaton."""

    def __init__(
        self,
        states: Iterable[State],
        top: Iterable[State],
        transitions: Sequence[ASTATransition],
    ) -> None:
        self.states: Tuple[State, ...] = tuple(dict.fromkeys(states))
        self.top: FrozenSet[State] = frozenset(top)
        self.transitions: Tuple[ASTATransition, ...] = tuple(transitions)
        known = set(self.states)
        for q in self.top:
            if q not in known:
                raise ValueError(f"unknown top state {q!r}")
        for t in self.transitions:
            if t.q not in known:
                raise ValueError(f"unknown source state in {t}")
            for _i, q in down_states(t.formula):
                if q not in known:
                    raise ValueError(f"unknown down state {q!r} in {t}")
        self._by_state: Dict[State, List[ASTATransition]] = {}
        for t in self.transitions:
            self._by_state.setdefault(t.q, []).append(t)
        self._marking = self._marking_states()

    def transitions_of(self, q: State) -> List[ASTATransition]:
        """All rules with source ``q`` (any label)."""
        return self._by_state.get(q, [])

    def active(self, states: Iterable[State], label: str) -> List[ASTATransition]:
        """Line 3 of Algorithm 4.1: rules enabled at this node.

        This is the O(|δ|) scan whose cost the memoization technique
        amortizes.
        """
        out = []
        for q in states:
            for t in self._by_state.get(q, ()):
                if t.labels.contains(label):
                    out.append(t)
        return out

    # -- analyses ------------------------------------------------------------

    def _marking_states(self) -> FrozenSet[State]:
        """States from which a selecting (⇒) transition is reachable.

        Non-marking states always carry empty result sets; information
        propagation may prune them once their truth is decided.
        """
        marking: Set[State] = {t.q for t in self.transitions if t.selecting}
        changed = True
        while changed:
            changed = False
            for t in self.transitions:
                if t.q in marking:
                    continue
                if any(q in marking for _i, q in down_states(t.formula)):
                    marking.add(t.q)
                    changed = True
        return frozenset(marking)

    def is_marking(self, q: State) -> bool:
        return q in self._marking

    def alphabet_sample(self) -> Tuple[str, ...]:
        """Mentioned names plus a fresh witness (cf. STA.alphabet_sample)."""
        names: Set[str] = set()
        for t in self.transitions:
            names |= t.labels.mentioned()
        other = "†other"
        while other in names:
            other += "'"
        return tuple(sorted(names)) + (other,)

    def atoms(self) -> List[Tuple[str, LabelSet]]:
        """Label atoms: each mentioned name plus the co-finite rest."""
        sample = self.alphabet_sample()
        names, other = sample[:-1], sample[-1]
        out: List[Tuple[str, LabelSet]] = [(n, LabelSet.of(n)) for n in names]
        out.append((other, LabelSet.not_of(*names)))
        return out

    def atom_rep(self, label: str) -> str:
        """Representative of the atom containing ``label``."""
        sample = self.alphabet_sample()
        return label if label in sample[:-1] else sample[-1]

    def size(self) -> Tuple[int, int]:
        """(|Q|, |δ|) -- e.g. for the Example C.1 blow-up demonstration."""
        return len(self.states), len(self.transitions)

    def describe(self) -> str:
        """Human-readable listing (used by the automata-explorer example)."""
        lines = [f"ASTA: Q = {{{', '.join(self.states)}}}, T = {{{', '.join(sorted(self.top))}}}"]
        lines.extend(f"  {t!r}" for t in self.transitions)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ASTA(|Q|={len(self.states)}, |δ|={len(self.transitions)})"
