"""Transition formulas of ASTAs (Definition 4.1).

``φ ::= ⊤ | ⊥ | φ ∨ φ | φ ∧ φ | ¬φ | ↓1 q | ↓2 q``

Formulas are plain nested tuples (hashable, cheap to build and compare):

- ``("T",)`` / ``("F",)``                 -- ⊤ / ⊥,
- ``("&", f, g)`` / ``("|", f, g)``        -- conjunction / disjunction,
- ``("!", f)``                            -- negation,
- ``("d", i, q)``                          -- ↓i q  (i ∈ {1, 2}).

Besides constructors, this module provides the syntactic analyses used by
evaluation and the jump machinery: the down-state sets per side, the
two-valued closed evaluation (for the skip-safety check φ(∅,∅) = ⊥) and
the three-valued partial evaluation used by information propagation.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Set, Tuple

Formula = tuple

TRUE: Formula = ("T",)
FALSE: Formula = ("F",)


def down(i: int, q: str) -> Formula:
    """The atom ↓i q."""
    if i not in (1, 2):
        raise ValueError("child index must be 1 or 2")
    return ("d", i, q)


def fand(*fs: Formula) -> Formula:
    """Right-nested conjunction with unit/absorption simplification."""
    acc = TRUE
    for f in reversed(fs):
        if f == FALSE or acc == FALSE:
            return FALSE
        if f == TRUE:
            continue
        acc = f if acc == TRUE else ("&", f, acc)
    return acc


def for_(*fs: Formula) -> Formula:
    """Right-nested disjunction with unit/absorption simplification."""
    acc = FALSE
    for f in reversed(fs):
        if f == TRUE or acc == TRUE:
            return TRUE
        if f == FALSE:
            continue
        acc = f if acc == FALSE else ("|", f, acc)
    return acc


def fnot(f: Formula) -> Formula:
    if f == TRUE:
        return FALSE
    if f == FALSE:
        return TRUE
    if f[0] == "!":
        return f[1]
    return ("!", f)


def down_states(f: Formula, side: int | None = None) -> FrozenSet[Tuple[int, str]]:
    """All ↓i q atoms occurring in ``f`` (including under negation).

    With ``side`` given, returns only the states of that side.
    """
    out: Set[Tuple[int, str]] = set()
    stack = [f]
    while stack:
        g = stack.pop()
        tag = g[0]
        if tag == "d":
            out.add((g[1], g[2]))
        elif tag in ("&", "|"):
            stack.append(g[1])
            stack.append(g[2])
        elif tag == "!":
            stack.append(g[1])
    if side is not None:
        return frozenset(q for i, q in out if i == side)
    return frozenset(out)  # type: ignore[return-value]


def eval_closed(f: Formula, acc1: FrozenSet[str], acc2: FrozenSet[str]) -> bool:
    """Two-valued truth of ``f`` given the accepted state sets of both children."""
    tag = f[0]
    if tag == "T":
        return True
    if tag == "F":
        return False
    if tag == "d":
        return f[2] in (acc1 if f[1] == 1 else acc2)
    if tag == "!":
        return not eval_closed(f[1], acc1, acc2)
    if tag == "&":
        return eval_closed(f[1], acc1, acc2) and eval_closed(f[2], acc1, acc2)
    return eval_closed(f[1], acc1, acc2) or eval_closed(f[2], acc1, acc2)


def accepts_spontaneously(f: Formula) -> bool:
    """φ(∅, ∅): truth with no child accepting anything.

    A transition whose formula is spontaneously true makes its label
    *essential* for the jump analysis: a skipped region could otherwise
    silently accept (see :mod:`repro.asta.tda`).
    """
    return eval_closed(f, frozenset(), frozenset())


# -- three-valued partial evaluation (information propagation) ----------------

_T, _F, _U = 1, 0, -1


def partial_eval(f: Formula, acc1: FrozenSet[str]) -> int:
    """Kleene truth of ``f`` with child 1 known and child 2 unknown."""
    tag = f[0]
    if tag == "T":
        return _T
    if tag == "F":
        return _F
    if tag == "d":
        if f[1] == 1:
            return _T if f[2] in acc1 else _F
        return _U
    if tag == "!":
        v = partial_eval(f[1], acc1)
        return _U if v == _U else (1 - v)
    a = partial_eval(f[1], acc1)
    b = partial_eval(f[2], acc1)
    if tag == "&":
        if a == _F or b == _F:
            return _F
        if a == _T and b == _T:
            return _T
        return _U
    if a == _T or b == _T:
        return _T
    if a == _F and b == _F:
        return _F
    return _U


def pending_down2(f: Formula, acc1: FrozenSet[str]) -> FrozenSet[str]:
    """↓2 states of ``f`` that can still influence its truth given ``acc1``.

    Branches whose truth is already decided are not walked into; this is
    what lets the information-propagation optimization narrow ``r2``.
    """
    out: Set[str] = set()
    _pending(f, acc1, out)
    return frozenset(out)


def _pending(f: Formula, acc1: FrozenSet[str], out: Set[str]) -> None:
    if partial_eval(f, acc1) != _U:
        return
    tag = f[0]
    if tag == "d":
        if f[1] == 2:
            out.add(f[2])
    elif tag == "!":
        _pending(f[1], acc1, out)
    elif tag in ("&", "|"):
        _pending(f[1], acc1, out)
        _pending(f[2], acc1, out)


def formula_str(f: Formula) -> str:
    """Pretty-print with the paper's notation."""
    tag = f[0]
    if tag == "T":
        return "⊤"
    if tag == "F":
        return "⊥"
    if tag == "d":
        return f"↓{f[1]} {f[2]}"
    if tag == "!":
        return f"¬({formula_str(f[1])})"
    op = " ∧ " if tag == "&" else " ∨ "
    return f"({formula_str(f[1])}{op}{formula_str(f[2])})"
