"""Evaluation rules for ASTAs (Figure 7, Appendix C).

The result of evaluating a subtree is a *result set* Γ: a mapping from
states to sets of selected nodes; the domain of Γ is the set of states
accepted at that subtree's root.  Node sets are represented as *ropes*
(O(1) concatenation, flattened once at the end), implementing the paper's
"Result Sets" technique; because evaluation proceeds in document order the
flattened list is already sorted in the overwhelmingly common case, and a
final merge pass restores sortedness/dedup in the remaining ones.

:func:`eval_formula` implements the judgement ``Γ1, Γ2 ⊢A φ = (b, R)`` and
:func:`eval_transitions` the ``eval_trans`` function of Definition C.3.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.asta.automaton import ASTA, ASTATransition
from repro.asta.formula import Formula

Rope = tuple
EMPTY_ROPE: Rope = ()

ResultSet = Dict[str, Rope]
"""Γ: state -> rope of selected node ids; key presence = state accepted."""


def leaf(v: int) -> Rope:
    """Singleton rope {v}."""
    return ("v", v)


def concat(a: Rope, b: Rope) -> Rope:
    """O(1) union of two ropes (the paper's constant-time concatenation)."""
    if not a:
        return b
    if not b:
        return a
    return ("+", a, b)


def flatten(rope: Rope) -> List[int]:
    """Materialize a rope into a sorted duplicate-free id list."""
    out: List[int] = []
    append = out.append
    stack = [rope]
    pop = stack.pop
    push = stack.append
    while stack:
        r = pop()
        if not r:
            continue
        if r[0] == "v":
            append(r[1])
        else:
            push(r[1])
            push(r[2])
    if not out:
        return out
    out.sort()
    # C-level ordered dedup (evaluation order makes duplicates rare).
    return list(dict.fromkeys(out))


def eval_formula(f: Formula, g1: ResultSet, g2: ResultSet) -> Tuple[bool, Rope]:
    """The judgement Γ1, Γ2 ⊢A φ = (b, R) of Figure 7."""
    tag = f[0]
    if tag == "T":
        return True, EMPTY_ROPE
    if tag == "F":
        return False, EMPTY_ROPE
    if tag == "d":
        g = g1 if f[1] == 1 else g2
        rope = g.get(f[2])
        if rope is None:
            return False, EMPTY_ROPE
        return True, rope
    if tag == "!":
        b, _ = eval_formula(f[1], g1, g2)
        return (not b), EMPTY_ROPE
    b1, r1 = eval_formula(f[1], g1, g2)
    if tag == "&":
        if not b1:
            return False, EMPTY_ROPE
        b2, r2 = eval_formula(f[2], g1, g2)
        if not b2:
            return False, EMPTY_ROPE
        return True, concat(r1, r2)
    # disjunction: union the markings of all true branches (rule "or")
    b2, r2 = eval_formula(f[2], g1, g2)
    if b1 and b2:
        return True, concat(r1, r2)
    if b1:
        return True, r1
    if b2:
        return True, r2
    return False, EMPTY_ROPE


def eval_transitions(
    active: Iterable[ASTATransition],
    g1: ResultSet,
    g2: ResultSet,
    v: int,
) -> ResultSet:
    """``eval_trans`` (Definition C.3): one node's result set.

    For each enabled transition whose formula holds: collect the markings
    of the formula's true branches, prepend the node itself for ⇒ rules,
    and union per target state.
    """
    out: ResultSet = {}
    for t in active:
        ok, rope = eval_formula(t.formula, g1, g2)
        if not ok:
            continue
        if t.selecting:
            rope = concat(leaf(v), rope)
        prev = out.get(t.q)
        out[t.q] = rope if prev is None else concat(prev, rope)
    return out


def root_answer(asta: ASTA, root_gamma: ResultSet) -> Tuple[bool, List[int]]:
    """Final answer: accepted?, selected nodes propagated to a top state."""
    accepted = False
    rope: Rope = EMPTY_ROPE
    for q in asta.top:
        if q in root_gamma:
            accepted = True
            rope = concat(rope, root_gamma[q])
    return accepted, flatten(rope)
