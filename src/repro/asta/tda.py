"""Top-down approximation of an ASTA (Definition 4.2) and jump analysis.

``tda(A)`` is the deterministic automaton over state *sets*
``S ⊆ Q`` with ``Si = {q | ∃q' ∈ S, ↓i q ∈ δ(q', σ)}``.  The exponential
blow-up is avoided by computing it on the fly: :class:`TDAAnalysis` builds
and caches, per reached state set ``S`` and label atom, the successor pair
``(S1, S2)`` plus everything the jumping evaluator needs:

- whether the atom is *essential* for ``S`` (a state change, a possible
  selection, or a spontaneously-true formula -- skipping such a node could
  lose answers or acceptance);
- the *skip class* of non-essential atoms, i.e. which Lemma 3.1-style loop
  the transitions realize:

  - ``both``  -- every enabled rule is ``q → ↓1 q ∨ ↓2 q`` (recursion into
    both children with identity propagation): regions of such labels can be
    replaced by their top-most essential descendants (dt/ft jumps);
  - ``left`` / ``right`` -- every enabled rule is ``q → ↓i q``: the region
    is a spine, reachable by lt/rt jumps;

  The identity-shape requirement is what makes combining the jumped-to
  results by plain union semantically exact (Figure 1's jump table is
  precisely this analysis run on A_//a//b[c]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.asta.automaton import ASTA, ASTATransition
from repro.asta.formula import accepts_spontaneously, down, down_states, for_
from repro.automata.labelset import LabelSet

StateSet = FrozenSet[str]


@dataclass
class AtomInfo:
    """Behaviour of a state set on one label atom."""

    s1: StateSet
    s2: StateSet
    selecting: bool
    skip_class: str  # "ess" | "both" | "left" | "right"


@dataclass
class SetInfo:
    """Jump plan for one tda state set."""

    per_atom: Dict[str, AtomInfo]
    jump_shape: str  # "both" | "left" | "right" | "none"
    essential_ids: Optional[List[int]]  # label ids to jump to (None: no jump)
    essential_names: FrozenSet[str]
    fused: object = None
    """Lazily attached :class:`~repro.index.labels.FusedLabels` for
    ``essential_ids`` (the evaluator caches it here so dt/ft jumps are one
    bisect over the merged array)."""
    early_stop: bool = False
    """True when no state of the set is marking: once every state has been
    accepted by some jumped-to node, further targets cannot change the
    result (their ropes are all empty), so the dt/ft chain may stop --
    this is what makes predicate checks one-witness existential even for
    ↓1-side predicates (paper: "only one witness is checked by the
    automaton, the first one in pre-order")."""


class TDAAnalysis:
    """On-the-fly, cached computation of tda(A) and its jump plans."""

    def __init__(self, asta: ASTA, tree, interner=None) -> None:
        self.asta = asta
        self.tree = tree
        self._atoms = asta.atoms()
        self._other = self._atoms[-1][0]
        self._mentioned = frozenset(rep for rep, _ in self._atoms[:-1])
        # With an interner (any object exposing ``state_id``) the cache is
        # keyed by dense ints instead of hashing frozensets of state names;
        # :class:`repro.engine.intern.RunTables` passes itself here so the
        # tda cache shares the evaluator's sid space.
        self._interner = interner
        self._cache: Dict[object, SetInfo] = {}

    def atom_rep(self, label: str) -> str:
        return label if label in self._mentioned else self._other

    def info(self, states: StateSet) -> SetInfo:
        """The jump plan for ``S`` (computed once per distinct set)."""
        key = (
            self._interner.state_id(states)
            if self._interner is not None
            else states
        )
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        per_atom: Dict[str, AtomInfo] = {}
        for rep, _atom in self._atoms:
            per_atom[rep] = self._atom_info(states, rep)
        shape, ids, names = self._jump_plan(states, per_atom)
        early_stop = not any(self.asta.is_marking(q) for q in states)
        info = SetInfo(per_atom, shape, ids, names, early_stop=early_stop)
        self._cache[key] = info
        return info

    def _atom_info(self, states: StateSet, rep: str) -> AtomInfo:
        active = self.asta.active(states, rep)
        s1: set = set()
        s2: set = set()
        selecting = False
        spontaneous = False
        identity_both = True
        identity_left = True
        identity_right = True
        for t in active:
            downs = down_states(t.formula)
            s1.update(q for i, q in downs if i == 1)
            s2.update(q for i, q in downs if i == 2)
            if t.selecting:
                selecting = True
            if accepts_spontaneously(t.formula):
                spontaneous = True
            both_form = for_(down(1, t.q), down(2, t.q))
            if t.formula != both_form or t.selecting:
                identity_both = False
            if t.formula != down(1, t.q) or t.selecting:
                identity_left = False
            if t.formula != down(2, t.q) or t.selecting:
                identity_right = False
        fs1, fs2 = frozenset(s1), frozenset(s2)
        if selecting or spontaneous:
            skip = "ess"
        elif active and identity_both and fs1 == states and fs2 == states:
            skip = "both"
        elif active and identity_left and fs1 == states and not fs2:
            skip = "left"
        elif active and identity_right and fs2 == states and not fs1:
            skip = "right"
        elif not active:
            # No rule enabled: the node accepts nothing; its subtrees are
            # unreachable.  Treat as essential so the evaluator visits it
            # and produces the empty result set there.
            skip = "ess"
        else:
            skip = "ess"  # state change: by definition essential
        return AtomInfo(fs1, fs2, selecting, skip)

    def _jump_plan(
        self, states: StateSet, per_atom: Dict[str, AtomInfo]
    ) -> Tuple[str, Optional[List[int]], FrozenSet[str]]:
        if not states:
            return "none", None, frozenset()
        classes = {info.skip_class for info in per_atom.values()}
        non_ess = classes - {"ess"}
        essential_names = frozenset(
            rep for rep, info in per_atom.items() if info.skip_class == "ess"
        )
        if len(non_ess) != 1:
            # Nothing skippable, or mixed loop shapes: no jump.
            return "none", None, essential_names
        (shape,) = non_ess
        # The jump targets are the essential atoms.  If the co-finite
        # "other" atom is essential the target set is co-finite: the index
        # cost model (O(|L|)) forbids jumping (paper: "no jump possible").
        if self._other in essential_names:
            return "none", None, essential_names
        ids: List[int] = []
        for name in essential_names:
            lab = self.tree.label_ids.get(name)
            if lab is not None:
                ids.append(lab)
        return shape, ids, essential_names

    def run_approximation(self, states: StateSet, label: str) -> Tuple[StateSet, StateSet]:
        """tda(A)'s transition: δa(S, σ) = (S1, S2)."""
        info = self.info(states).per_atom[self.atom_rep(label)]
        return info.s1, info.s2

    def cache_size(self) -> int:
        """Distinct tda states materialized so far."""
        return len(self._cache)
