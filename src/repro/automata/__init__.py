"""Selecting tree automata (Sections 2-3, Appendices A-B).

- :mod:`repro.automata.labelset` -- finite / co-finite label sets,
- :mod:`repro.automata.sta` -- STAs, runs, acceptance and selection oracles,
- :mod:`repro.automata.examples` -- the paper's worked automata,
- :mod:`repro.automata.recognizer` -- the hat-encoding STA <-> TA,
- :mod:`repro.automata.minimize` -- minimization and equivalence,
- :mod:`repro.automata.relevance` -- relevant nodes (Def. 3.1, Lemmas 3.1/3.2),
- :mod:`repro.automata.topdown` -- topdown_jump (Algorithm B.1),
- :mod:`repro.automata.bottomup` -- bottom_up evaluation (Algorithm B.2).
"""

from repro.automata.labelset import ANY, LabelSet
from repro.automata.sta import STA, Transition

__all__ = ["ANY", "LabelSet", "STA", "Transition"]
