"""Bottom-up evaluation of BDSTAs (Section 3.2, Algorithm B.2).

Three entry points:

- :func:`bottom_up` -- the unique run of a bottom-up complete BDSTA,
  computed by a reverse-preorder sweep (linear, used as the workhorse);
- :func:`bottom_up_reduce` -- the paper's list-reduction formulation of
  Algorithm B.2 over the explicit leaf sequence, kept for fidelity and
  cross-checked against :func:`bottom_up` in the tests;
- :func:`bottomup_jump` -- the subtree-skipping variant: whole binary
  subtrees that provably reduce to the initial state q0 are skipped using
  O(|L| log n) label-count probes.  The paper only sketches its
  ``bottomup_jump`` (their index lacks ancestor jumps; Section 5), so we
  implement the subtree-skipping core that Lemma 3.2's conditions license
  and validate it for soundness + node-visit reduction rather than the
  full Theorem 3.2 optimality.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.automata.sta import STA, State
from repro.counters import EvalStats
from repro.index.jumping import TreeIndex
from repro.tree.binary import NIL, BinaryTree


def bottom_up(
    sta: STA,
    tree: BinaryTree,
    stats: Optional[EvalStats] = None,
) -> Optional[Dict[int, State]]:
    """The unique run of a bottom-up complete BDSTA; None if rejecting."""
    if len(sta.bottom) != 1:
        raise ValueError("bottom_up requires a BDSTA (|B| = 1)")
    (q0,) = tuple(sta.bottom)
    run: Dict[int, State] = {}
    for v in range(tree.n - 1, -1, -1):
        lc, rc = tree.left[v], tree.right[v]
        s1 = q0 if lc == NIL else run[lc]
        s2 = q0 if rc == NIL else run[rc]
        sources = sta.source(s1, s2, tree.label(v))
        if len(sources) != 1:
            raise ValueError("automaton is not bottom-up deterministic/complete")
        run[v] = sources[0]
        if stats is not None:
            stats.visited += 1
    if run[0] not in sta.top:
        return None
    return run


def selected_by_run(sta: STA, tree: BinaryTree, run: Dict[int, State]) -> List[int]:
    """Nodes v with (run[v], label(v)) ∈ S, in document order."""
    return [
        v for v in range(tree.n) if sta.selects(run[v], tree.label(v))
    ]


# ---------------------------------------------------------------------------
# Algorithm B.2: list reduction over the explicit leaf sequence
# ---------------------------------------------------------------------------


def bottom_up_reduce(sta: STA, tree: BinaryTree) -> Optional[Dict[int, State]]:
    """Algorithm B.2 verbatim (iteratively), over explicit ``#`` leaves.

    Builds the preorder sequence of ``#`` leaves, then shift-reduces:
    whenever the two front items are siblings they are replaced by their
    parent with the state δ(q1, q2, label).  Virtual leaves are encoded as
    ``(parent, side)`` pairs with negative ids.
    """
    if len(sta.bottom) != 1:
        raise ValueError("bottom_up_reduce requires a BDSTA")
    (q0,) = tuple(sta.bottom)

    # Items: (node_id, state); virtual leaves use ids -(2v+2) for the left
    # # child of v and -(2v+3) for the right one.
    def leaf_items() -> List[Tuple[int, State]]:
        order: List[int] = []
        stack = [0]
        while stack:
            v = stack.pop()
            if v < 0:
                order.append(v)
                continue
            lc, rc = tree.left[v], tree.right[v]
            stack.append(rc if rc != NIL else -(2 * v + 3))
            stack.append(lc if lc != NIL else -(2 * v + 2))
        return [(v, q0) for v in order]

    def parent_and_side(item: int) -> Tuple[int, int]:
        if item < 0:
            code = -item - 2
            return code // 2, code % 2
        p = tree.bparent[item]
        side = 0 if tree.left[p] == item else 1
        return p, side

    run: Dict[int, State] = {}
    # Shift-reduce with an output stack: push items; reduce when the top
    # two are the left and right children of the same parent.
    out: List[Tuple[int, State]] = []
    for item in leaf_items():
        out.append(item)
        while len(out) >= 2:
            (v2, s2) = out[-1]
            (v1, s1) = out[-2]
            if v1 == 0:
                break  # the fully-reduced root cannot be anyone's child
            p1, side1 = parent_and_side(v1)
            p2, side2 = parent_and_side(v2)
            if p1 != p2 or side1 != 0 or side2 != 1:
                break
            sources = sta.source(s1, s2, tree.label(p1))
            if len(sources) != 1:
                raise ValueError("automaton is not bottom-up deterministic")
            out.pop()
            out.pop()
            run[p1] = sources[0]
            out.append((p1, sources[0]))
    if len(out) != 1 or out[0][0] != 0:
        raise AssertionError("reduction did not converge to the root")
    if run[0] not in sta.top:
        return None
    return run


# ---------------------------------------------------------------------------
# subtree-skipping bottom-up evaluation
# ---------------------------------------------------------------------------


def inactive_labels_ok(sta: STA, q0: State) -> Set[str]:
    """Labels l with δ(q0, q0, l) = q0, over the automaton's atoms.

    A binary subtree containing only such labels reduces to q0 without
    being visited; the membership test for the co-finite atom is returned
    implicitly via :func:`active_label_ids`.
    """
    from repro.automata.minimize import atoms

    out: Set[str] = set()
    for rep, _atom in atoms(sta):
        src = sta.source(q0, q0, rep)
        if len(src) == 1 and src[0] == q0:
            out.add(rep)
    return out


def active_label_ids(sta: STA, tree: BinaryTree) -> Optional[List[int]]:
    """Label ids of *active* atoms (δ(q0,q0,l) ≠ q0) materialized in ``tree``.

    Returns None when the co-finite rest atom is active (then every label
    of the document not mentioned by the automaton is active and skipping
    by counting is not worthwhile).
    """
    from repro.automata.minimize import atoms

    (q0,) = tuple(sta.bottom)
    ids: List[int] = []
    for rep, atom in atoms(sta):
        src = sta.source(q0, q0, rep)
        active = not (len(src) == 1 and src[0] == q0)
        if not active:
            continue
        if not atom.is_finite():
            return None
        for name in atom.names:
            lab = tree.label_ids.get(name)
            if lab is not None:
                ids.append(lab)
    return ids


def bottomup_jump(
    sta: STA,
    index: TreeIndex,
    stats: Optional[EvalStats] = None,
) -> Optional[Dict[int, State]]:
    """Bottom-up run that skips q0-inert binary subtrees.

    Sound for bottom-up complete BDSTAs: a subtree whose labels all map
    (q0, q0, l) -> q0 reduces to q0 (induction over the subtree), so the
    run values on the nodes actually visited agree with :func:`bottom_up`.
    The skipped nodes are exactly those Lemma 3.2's first/second conditions
    certify non-relevant through q0-inertia.
    """
    if len(sta.bottom) != 1:
        raise ValueError("bottomup_jump requires a BDSTA (|B| = 1)")
    (q0,) = tuple(sta.bottom)
    tree = index.tree
    active = active_label_ids(sta, tree)
    run: Dict[int, State] = {}

    def eval_range(v: int) -> State:
        """State of node v, skipping inert regions inside [v, bend(v))."""
        # Iterative post-order over the binary tree with skip checks.
        result: Dict[int, State] = {}
        stack: List[Tuple[int, int]] = [(v, 0)]
        while stack:
            node, phase = stack.pop()
            if phase == 0:
                # Skip test applies to the *binary* subtree rooted at node.
                if active is not None:
                    lo, hi = node, tree.bend(node)
                    if stats is not None:
                        stats.index_probes += 1
                    if index.labels.count_in_range(active, lo, hi) == 0:
                        result[node] = q0
                        continue
                stack.append((node, 1))
                rc = tree.right[node]
                lc = tree.left[node]
                if rc != NIL:
                    stack.append((rc, 0))
                if lc != NIL:
                    stack.append((lc, 0))
            else:
                lc, rc = tree.left[node], tree.right[node]
                s1 = q0 if lc == NIL else result[lc]
                s2 = q0 if rc == NIL else result[rc]
                sources = sta.source(s1, s2, tree.label(node))
                if len(sources) != 1:
                    raise ValueError("automaton is not bottom-up deterministic")
                result[node] = sources[0]
                if stats is not None:
                    stats.visited += 1
        run.update(result)
        return result[v]

    root_state = eval_range(0)
    if root_state not in sta.top:
        return None
    return run
