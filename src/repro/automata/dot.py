"""Graphviz (dot) export of automata, for inspection and documentation.

``python - <<'PY'`` one-liner friendly::

    from repro.automata.dot import asta_to_dot
    from repro.xpath.compiler import compile_xpath
    print(asta_to_dot(compile_xpath("//a//b[c]")))
"""

from __future__ import annotations

from typing import List

from repro.asta.automaton import ASTA
from repro.asta.formula import formula_str
from repro.automata.sta import STA


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def sta_to_dot(sta: STA, name: str = "STA") -> str:
    """Dot digraph of an STA: one edge per transition, labelled
    ``L / side`` (1 = left child, 2 = right child)."""
    lines: List[str] = [f"digraph {name} {{", "  rankdir=LR;"]
    for q in sta.states:
        shape = "doublecircle" if q in sta.top else "circle"
        style = []
        if q in sta.bottom:
            style.append("bold")
        if q in sta.selecting:
            style.append("filled")
        attr = f', style="{",".join(style)}"' if style else ""
        lines.append(f"  {_quote(q)} [shape={shape}{attr}];")
    for t in sta.transitions:
        label = repr(t.labels)
        lines.append(
            f"  {_quote(t.q)} -> {_quote(t.q1)} "
            f"[label={_quote(label + ' /1')}];"
        )
        lines.append(
            f"  {_quote(t.q)} -> {_quote(t.q2)} "
            f"[label={_quote(label + ' /2')}, style=dashed];"
        )
    lines.append("}")
    return "\n".join(lines)


def asta_to_dot(asta: ASTA, name: str = "ASTA") -> str:
    """Dot digraph of an ASTA: transition boxes carry the formulas."""
    lines: List[str] = [f"digraph {name} {{", "  rankdir=LR;"]
    for q in asta.states:
        shape = "doublecircle" if q in asta.top else "circle"
        lines.append(f"  {_quote(q)} [shape={shape}];")
    for i, t in enumerate(asta.transitions):
        box = f"t{i}"
        arrow = "⇒" if t.selecting else "→"
        label = f"{t.labels!r} {arrow} {formula_str(t.formula)}"
        lines.append(f"  {box} [shape=box, label={_quote(label)}];")
        lines.append(f"  {_quote(t.q)} -> {box};")
        from repro.asta.formula import down_states

        for side, q2 in sorted(down_states(t.formula)):
            style = "solid" if side == 1 else "dashed"
            lines.append(
                f"  {box} -> {_quote(q2)} [style={style}, label={_quote(f'↓{side}')}];"
            )
    lines.append("}")
    return "\n".join(lines)
