"""The paper's worked example automata, verbatim.

These are used throughout the test suite as ground truth:

- :func:`sta_desc_a_desc_b` -- Example 2.1, the TDSTA for ``//a//b``,
- :func:`sta_a_with_b_below` -- Examples A.1/B.1, the BDSTA for ``//a[.//b]``,
- :func:`sta_dtd_root_a` -- Section 3's recognizer for
  ``<!ELEMENT a ANY>`` (root labelled ``a``, anything below).
"""

from __future__ import annotations

from repro.automata.labelset import ANY, LabelSet
from repro.automata.sta import STA, Transition


def sta_desc_a_desc_b() -> STA:
    """Example 2.1: the TDSTA selecting all b-descendants of a-nodes.

    δ: q0,{a} -> (q1,q0);  q0,Σ\\{a} -> (q0,q0);
       q1,{b} => (q1,q1);  q1,Σ\\{b} -> (q1,q1).
    """
    return STA(
        states=["q0", "q1"],
        top=["q0"],
        bottom=["q0", "q1"],
        selecting={"q1": LabelSet.of("b")},
        transitions=[
            Transition("q0", LabelSet.of("a"), "q1", "q0"),
            Transition("q0", LabelSet.not_of("a"), "q0", "q0"),
            Transition("q1", LabelSet.of("b"), "q1", "q1"),
            Transition("q1", LabelSet.not_of("b"), "q1", "q1"),
        ],
    )


def sta_a_with_b_below() -> STA:
    """Examples A.1/B.1: the BDSTA for ``//a[.//b]``.

    Bottom-up reading (q <- L, (q_left, q_right), right child ignored):
    state q1 at v means "the XML subtree of v contains a b-node"; a-nodes
    reached in q1 are selected.  Wildcards of the paper are expanded over Q.
    """
    transitions = []
    for right in ("q0", "q1"):
        # b-labelled node: contains b, whatever is below.
        for left in ("q0", "q1"):
            transitions.append(
                Transition("q1", LabelSet.of("b"), left, right)
            )
        # non-b node: propagate the left (= XML descendants) verdict.
        transitions.append(
            Transition("q0", LabelSet.not_of("b"), "q0", right)
        )
        transitions.append(
            Transition("q1", LabelSet.not_of("b"), "q1", right)
        )
    return STA(
        states=["q0", "q1"],
        top=["q0", "q1"],
        bottom=["q0"],
        selecting={"q1": LabelSet.of("a")},
        transitions=transitions,
    )


def sta_dtd_root_a() -> STA:
    """Section 3's recognizer for the DTD ``<!ELEMENT a ANY>``.

    Only the root is relevant: the automaton changes state exactly once.
    """
    return STA(
        states=["q0", "qT", "qS"],
        top=["q0"],
        bottom=["qT"],
        selecting={},
        transitions=[
            Transition("q0", LabelSet.of("a"), "qT", "qT"),
            Transition("q0", LabelSet.not_of("a"), "qS", "qS"),
            Transition("qT", ANY, "qT", "qT"),
            Transition("qS", ANY, "qS", "qS"),
        ],
    )
