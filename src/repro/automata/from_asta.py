"""Alternation elimination: ASTA -> (non-deterministic) STA.

Section 4.1 motivates ASTAs by the cost of *not* having them: translating
an ASTA into a plain selecting tree automaton requires the disjunctive
normal form of its formulas, and Example C.1 exhibits a family
``//x[(a1 or a2) and ... and (a2n-1 or a2n)]`` whose ASTA is linear while
any STA is exponential.  This module implements the translation so the
blow-up (and the semantic equivalence) can be tested, and so the
deterministic machinery of Section 3 (minimization, relevant nodes,
``topdown_jump``) can be applied to simple compiled queries.

Construction
------------
STA states are *obligation sets* ``S`` of ASTA states ("every q ∈ S must
accept here"), plus a selecting twin ``sel(S)`` whose transitions are
restricted to combinations that fire a ⇒ rule -- this encodes the
choice-dependent selection of ASTAs in the STA's (state, label) selection
relation.  A transition from ``S`` on an atom combines, per ``q ∈ S``,
one enabled rule and one DNF disjunct of its formula; the disjunct
requirements union into the child obligation sets.  The empty obligation
set is the top-down universal state and the only bottom state
(``# `` satisfies no ↓ obligation).

Negation is not supported (obligation sets are purely conjunctive);
the compiler only emits ``¬`` for XPath ``not()``, so every
negation-free query is translatable.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.asta.automaton import ASTA
from repro.asta.formula import Formula
from repro.automata.labelset import LabelSet
from repro.automata.sta import STA, Transition

Obligation = FrozenSet[str]
_Disjunct = Tuple[FrozenSet[str], FrozenSet[str]]  # (left states, right states)


class AlternationError(ValueError):
    """Raised for formulas outside the translatable (negation-free) core."""


def formula_dnf(f: Formula) -> List[_Disjunct]:
    """DNF of a negation-free formula as (↓1-set, ↓2-set) disjuncts.

    The length of this list is the paper's blow-up measure: for the
    Example C.1 selecting formula it is 2^n.
    """
    tag = f[0]
    if tag == "T":
        return [(frozenset(), frozenset())]
    if tag == "F":
        return []
    if tag == "d":
        if f[1] == 1:
            return [(frozenset({f[2]}), frozenset())]
        return [(frozenset(), frozenset({f[2]}))]
    if tag == "!":
        raise AlternationError("negation cannot be translated to an STA")
    left = formula_dnf(f[1])
    right = formula_dnf(f[2])
    if tag == "|":
        return left + right
    # conjunction: pairwise union of disjuncts
    return [
        (l1 | l2, r1 | r2) for (l1, r1) in left for (l2, r2) in right
    ]


def _enc(obligation: Obligation, selecting: bool) -> str:
    inner = ",".join(sorted(obligation)) or "∅"
    return ("sel{" if selecting else "{") + inner + "}"


def asta_to_sta(asta: ASTA, max_states: int = 4096) -> STA:
    """Translate a negation-free ASTA into an equivalent STA.

    ``max_states`` bounds the lazy subset construction (the translation
    is inherently exponential; Example C.1 hits the bound quickly).
    """
    atoms = asta.atoms()
    empty: Obligation = frozenset()

    states: Set[Tuple[Obligation, bool]] = set()
    transitions: List[Transition] = []
    selecting: Dict[str, LabelSet] = {}

    # Per (q, atom rep): list of (selects, disjuncts) over enabled rules.
    def options(q: str, rep: str) -> List[Tuple[bool, _Disjunct]]:
        out: List[Tuple[bool, _Disjunct]] = []
        for t in asta.transitions_of(q):
            if not t.labels.contains(rep):
                continue
            for disjunct in formula_dnf(t.formula):
                out.append((t.selecting, disjunct))
        return out

    frontier: List[Tuple[Obligation, bool]] = []

    def visit(obligation: Obligation, sel: bool) -> str:
        key = (obligation, sel)
        if key not in states:
            if len(states) >= max_states:
                raise AlternationError(
                    f"subset construction exceeded {max_states} states"
                )
            states.add(key)
            frontier.append(key)
        return _enc(obligation, sel)

    top_names = [visit(frozenset({q}), False) for q in sorted(asta.top)]
    top_names += [visit(frozenset({q}), True) for q in sorted(asta.top)]
    visit(empty, False)

    while frontier:
        obligation, sel = frontier.pop()
        name = _enc(obligation, sel)
        if not obligation:
            transitions.append(
                Transition(name, LabelSet.not_of(), name, name)
            )
            continue
        for rep, atom in atoms:
            per_state = [options(q, rep) for q in sorted(obligation)]
            if any(not opts for opts in per_state):
                continue  # some obligation unsatisfiable at this label
            seen_pairs: Set[Tuple[Obligation, Obligation, bool]] = set()
            for combo in product(*per_state):
                fires = any(s for s, _ in combo)
                if sel and not fires:
                    continue  # the selecting twin must actually select
                s1: FrozenSet[str] = frozenset().union(
                    *(d[0] for _, d in combo)
                )
                s2: FrozenSet[str] = frozenset().union(
                    *(d[1] for _, d in combo)
                )
                if (s1, s2, fires) in seen_pairs:
                    continue
                seen_pairs.add((s1, s2, fires))
                # Children may independently choose to select deeper
                # nodes: emit both plain and selecting-twin successors
                # for non-empty obligations (the twin is reachable only
                # if it can select below, pruned lazily via options()).
                child_variants_1 = _child_variants(asta, s1)
                child_variants_2 = _child_variants(asta, s2)
                for c1 in child_variants_1:
                    for c2 in child_variants_2:
                        transitions.append(
                            Transition(
                                name,
                                atom,
                                visit(s1, c1),
                                visit(s2, c2),
                            )
                        )
            if sel:
                prev = selecting.get(name, LabelSet.empty())
                has_marking_combo = any(
                    any(s for s, _ in combo)
                    for combo in product(*per_state)
                )
                if has_marking_combo:
                    selecting[name] = prev.union(atom)

    all_names = [_enc(o, s) for o, s in sorted(states, key=lambda k: (_enc(*k)))]
    return STA(
        all_names,
        top_names,
        [_enc(empty, False)],
        selecting,
        transitions,
    )


def _child_variants(asta: ASTA, obligation: Obligation) -> Sequence[bool]:
    """Which twins to emit for a child obligation set.

    The selecting twin only makes sense when some obligation can reach a
    ⇒ rule (is marking); the empty set never selects.
    """
    if not obligation:
        return (False,)
    if any(asta.is_marking(q) for q in obligation):
        return (False, True)
    return (False,)


def sta_blowup_size(asta: ASTA) -> Tuple[int, int]:
    """(#states, #transitions) of the translated STA (for Example C.1)."""
    sta = asta_to_sta(asta)
    return len(sta.states), len(sta.transitions)
