"""Finite / co-finite label sets (the ``L`` of transitions).

The paper writes transitions over sets like ``{a}`` and ``Σ \\ {a}``
without ever materializing the alphabet.  :class:`LabelSet` mirrors this: a
value is either a finite set of names or the complement of one.  All the
Boolean operations needed by minimization and the essential-label analysis
are closed over this representation.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator


class LabelSet:
    """An immutable finite or co-finite set of element names."""

    __slots__ = ("names", "complemented")

    def __init__(self, names: Iterable[str], complemented: bool = False) -> None:
        self.names: FrozenSet[str] = frozenset(names)
        self.complemented = complemented

    # -- constructors --------------------------------------------------------

    @classmethod
    def of(cls, *names: str) -> "LabelSet":
        """Finite set ``{names...}``."""
        return cls(names)

    @classmethod
    def not_of(cls, *names: str) -> "LabelSet":
        """Co-finite set ``Σ \\ {names...}``."""
        return cls(names, complemented=True)

    @classmethod
    def empty(cls) -> "LabelSet":
        return cls(())

    # -- queries --------------------------------------------------------------

    def contains(self, label: str) -> bool:
        inside = label in self.names
        return (not inside) if self.complemented else inside

    __contains__ = contains

    def is_empty(self) -> bool:
        return not self.complemented and not self.names

    def is_any(self) -> bool:
        return self.complemented and not self.names

    def is_finite(self) -> bool:
        return not self.complemented

    def mentioned(self) -> FrozenSet[str]:
        """The names this set's description textually mentions."""
        return self.names

    # -- algebra ---------------------------------------------------------------

    def complement(self) -> "LabelSet":
        return LabelSet(self.names, not self.complemented)

    def union(self, other: "LabelSet") -> "LabelSet":
        if not self.complemented and not other.complemented:
            return LabelSet(self.names | other.names)
        if self.complemented and other.complemented:
            return LabelSet(self.names & other.names, complemented=True)
        fin, cof = (self, other) if other.complemented else (other, self)
        return LabelSet(cof.names - fin.names, complemented=True)

    def intersection(self, other: "LabelSet") -> "LabelSet":
        return self.union_complements(other)

    def union_complements(self, other: "LabelSet") -> "LabelSet":
        # De Morgan: A ∩ B = ¬(¬A ∪ ¬B)
        return self.complement().union(other.complement()).complement()

    def difference(self, other: "LabelSet") -> "LabelSet":
        return self.intersection(other.complement())

    def overlaps(self, other: "LabelSet") -> bool:
        return not self.intersection(other).is_empty()

    # -- evaluation-time compilation ---------------------------------------------

    def positive_ids(self, tree) -> list[int] | None:
        """Label ids of a *finite* set within ``tree``; None if co-finite.

        Jump primitives cost O(|L|), so co-finite sets cannot be jumped to
        (the paper's "no jump is possible" case); callers must fall back to
        firstChild/nextSibling when this returns None.
        """
        if self.complemented:
            return None
        ids = []
        for name in self.names:
            lab = tree.label_ids.get(name)
            if lab is not None:
                ids.append(lab)
        return ids

    # -- dunder ---------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LabelSet)
            and self.names == other.names
            and self.complemented == other.complemented
        )

    def __hash__(self) -> int:
        return hash((self.names, self.complemented))

    def __repr__(self) -> str:
        inner = ",".join(sorted(self.names))
        if self.complemented:
            return f"Σ\\{{{inner}}}" if inner else "Σ"
        return f"{{{inner}}}"

    def sample_labels(self, alphabet: Iterable[str]) -> Iterator[str]:
        """Labels of ``alphabet`` belonging to this set."""
        for label in alphabet:
            if self.contains(label):
                yield label


ANY = LabelSet.not_of()
"""The full alphabet Σ."""
