"""Minimization of deterministic selecting tree automata (Appendix A.2).

The paper reduces STA minimization to ordinary tree-automaton minimization
through the hat-encoding (Appendix A.1, see
:mod:`repro.automata.recognizer`), then observes that the same effect is
obtained *directly* by running the standard partition-refinement algorithm
with an initial partition that additionally separates states by their
selecting behaviour.  This module implements the direct method:

- :func:`minimize_bdsta` / :func:`minimize_tdsta` -- completion, removal of
  unreachable states, refinement, merging;
- :func:`tdsta_equivalent` / :func:`bdsta_equivalent` -- decision procedures
  via minimization + canonical isomorphism;
- :func:`atoms` -- the label-atom decomposition that lets us treat the
  implicit infinite alphabet finitely (automata behave uniformly on all
  labels not mentioned in any transition or selecting configuration).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.automata.labelset import LabelSet
from repro.automata.sta import STA, State, Transition

SINK = "⊥sink"


def atoms(sta: STA) -> List[Tuple[str, LabelSet]]:
    """Label atoms of an STA: each mentioned name plus the co-finite rest.

    Returns ``(representative_label, atom_as_LabelSet)`` pairs.  Every
    transition label set is a union of atoms, so the automaton's behaviour
    on the representative determines its behaviour on the whole atom.
    """
    sample = sta.alphabet_sample()
    names, other = sample[:-1], sample[-1]
    out: List[Tuple[str, LabelSet]] = [(n, LabelSet.of(n)) for n in names]
    out.append((other, LabelSet.not_of(*names)))
    return out


# ---------------------------------------------------------------------------
# completion
# ---------------------------------------------------------------------------


def complete_topdown(sta: STA) -> STA:
    """Add a sink so that δ(q, l) is non-empty everywhere."""
    reps = atoms(sta)
    new_transitions = list(sta.transitions)
    need_sink = False
    for q in sta.states:
        missing = [atom for rep, atom in reps if not sta.dest(q, rep)]
        for atom in missing:
            need_sink = True
            new_transitions.append(Transition(q, atom, SINK, SINK))
    if not need_sink:
        return sta
    new_transitions.append(Transition(SINK, LabelSet.not_of(), SINK, SINK))
    return STA(
        list(sta.states) + [SINK],
        sta.top,
        sta.bottom,
        dict(sta.selecting),
        new_transitions,
    )


def complete_bottomup(sta: STA) -> STA:
    """Add a sink so that δ(q1, q2, l) is non-empty everywhere."""
    reps = atoms(sta)
    new_transitions = list(sta.transitions)
    need_sink = False
    for q1 in sta.states:
        for q2 in sta.states:
            for rep, atom in reps:
                if not sta.source(q1, q2, rep):
                    need_sink = True
                    new_transitions.append(Transition(SINK, atom, q1, q2))
    if not need_sink:
        return sta
    states = list(sta.states) + [SINK]
    for q1 in states:
        for q2 in states:
            if q1 != SINK and q2 != SINK:
                continue
            new_transitions.append(Transition(SINK, LabelSet.not_of(), q1, q2))
    return STA(states, sta.top, sta.bottom, dict(sta.selecting), new_transitions)


# ---------------------------------------------------------------------------
# reachability trimming
# ---------------------------------------------------------------------------


def _topdown_reachable(sta: STA) -> set:
    reach = set(sta.top)
    frontier = list(sta.top)
    while frontier:
        q = frontier.pop()
        for t in sta.transitions:
            if t.q == q:
                for nxt in (t.q1, t.q2):
                    if nxt not in reach:
                        reach.add(nxt)
                        frontier.append(nxt)
    return reach


def _bottomup_reachable(sta: STA) -> set:
    reps = atoms(sta)
    reach = set(sta.bottom)
    changed = True
    while changed:
        changed = False
        for t in sta.transitions:
            if t.q in reach:
                continue
            if t.q1 in reach and t.q2 in reach and any(
                t.labels.contains(rep) for rep, _ in reps
            ):
                reach.add(t.q)
                changed = True
    return reach


def _restrict_states(sta: STA, keep: set) -> STA:
    return STA(
        [q for q in sta.states if q in keep],
        [q for q in sta.top if q in keep],
        [q for q in sta.bottom if q in keep],
        {q: ls for q, ls in sta.selecting.items() if q in keep},
        [
            t
            for t in sta.transitions
            if t.q in keep and t.q1 in keep and t.q2 in keep
        ],
    )


# ---------------------------------------------------------------------------
# partition refinement
# ---------------------------------------------------------------------------


def _selection_signature(sta: STA, reps: Iterable[str]) -> Dict[State, Tuple[bool, ...]]:
    return {
        q: tuple(sta.selects(q, rep) for rep in reps) for q in sta.states
    }


def _refine(
    sta: STA,
    initial: Dict[State, int],
    successor_sig,
) -> Dict[State, int]:
    """Generic partition refinement; ``successor_sig(q, classes)`` must be
    equal for equivalent states."""
    classes = dict(initial)
    while True:
        sigs: Dict[State, tuple] = {
            q: (classes[q], successor_sig(q, classes)) for q in sta.states
        }
        renumber: Dict[tuple, int] = {}
        new_classes: Dict[State, int] = {}
        for q in sta.states:
            sig = sigs[q]
            if sig not in renumber:
                renumber[sig] = len(renumber)
            new_classes[q] = renumber[sig]
        if new_classes == classes:
            return classes
        classes = new_classes


def _merge_by_classes(sta: STA, classes: Dict[State, int]) -> STA:
    """Collapse each class to its first member (stable representative)."""
    rep_of_class: Dict[int, State] = {}
    mapping: Dict[State, State] = {}
    for q in sta.states:
        c = classes[q]
        if c not in rep_of_class:
            rep_of_class[c] = q
        mapping[q] = rep_of_class[c]
    merged = sta.rename(mapping)
    return _merge_transition_labels(merged)


def _merge_transition_labels(sta: STA) -> STA:
    """Union label sets of transitions sharing (q, q1, q2)."""
    grouped: Dict[Tuple[State, State, State], LabelSet] = {}
    order: List[Tuple[State, State, State]] = []
    for t in sta.transitions:
        key = (t.q, t.q1, t.q2)
        if key in grouped:
            grouped[key] = grouped[key].union(t.labels)
        else:
            grouped[key] = t.labels
            order.append(key)
    return STA(
        sta.states,
        sta.top,
        sta.bottom,
        dict(sta.selecting),
        [Transition(q, grouped[(q, q1, q2)], q1, q2) for q, q1, q2 in order],
    )


def minimize_tdsta(sta: STA) -> STA:
    """Unique minimal complete TDSTA equivalent to ``sta`` (Theorem A.1)."""
    if not sta.is_topdown_deterministic():
        raise ValueError("minimize_tdsta requires a top-down deterministic STA")
    work = complete_topdown(sta)
    work = _restrict_states(work, _topdown_reachable(work))
    reps = [rep for rep, _ in atoms(work)]
    sel_sig = _selection_signature(work, reps)
    initial_keys: Dict[tuple, int] = {}
    initial: Dict[State, int] = {}
    for q in work.states:
        key = (q in work.bottom, sel_sig[q])
        if key not in initial_keys:
            initial_keys[key] = len(initial_keys)
        initial[q] = initial_keys[key]

    dest_cache = {
        (q, rep): work.dest(q, rep)[0] for q in work.states for rep in reps
    }

    def successor_sig(q: State, classes: Dict[State, int]) -> tuple:
        out = []
        for rep in reps:
            q1, q2 = dest_cache[(q, rep)]
            out.append((classes[q1], classes[q2]))
        return tuple(out)

    classes = _refine(work, initial, successor_sig)
    return _merge_by_classes(work, classes)


def minimize_bdsta(sta: STA) -> STA:
    """Unique minimal complete BDSTA equivalent to ``sta`` (Theorem A.1)."""
    if not sta.is_bottomup_deterministic():
        raise ValueError("minimize_bdsta requires a bottom-up deterministic STA")
    work = complete_bottomup(sta)
    work = _restrict_states(work, _bottomup_reachable(work))
    # Completion must be re-established on the trimmed state set.
    work = complete_bottomup(work)
    reps = [rep for rep, _ in atoms(work)]
    sel_sig = _selection_signature(work, reps)
    initial_keys: Dict[tuple, int] = {}
    initial: Dict[State, int] = {}
    for q in work.states:
        key = (q in work.top, sel_sig[q])
        if key not in initial_keys:
            initial_keys[key] = len(initial_keys)
        initial[q] = initial_keys[key]

    source_cache = {
        (q1, q2, rep): work.source(q1, q2, rep)[0]
        for q1 in work.states
        for q2 in work.states
        for rep in reps
    }
    states = list(work.states)

    def successor_sig(q: State, classes: Dict[State, int]) -> tuple:
        out = []
        for rep in reps:
            for r in states:
                out.append(classes[source_cache[(r, q, rep)]])
                out.append(classes[source_cache[(q, r, rep)]])
        return tuple(out)

    classes = _refine(work, initial, successor_sig)
    return _merge_by_classes(work, classes)


# ---------------------------------------------------------------------------
# equivalence via canonical forms
# ---------------------------------------------------------------------------


def _canonical_tdsta(sta: STA) -> tuple:
    """Canonical description of a minimal complete TDSTA."""
    reps_atoms = atoms(sta)
    reps = [rep for rep, _ in reps_atoms]
    (q0,) = tuple(sta.top)
    order: Dict[State, int] = {q0: 0}
    queue = [q0]
    while queue:
        q = queue.pop(0)
        for rep in reps:
            for nxt in sta.dest(q, rep)[0]:
                if nxt not in order:
                    order[nxt] = len(order)
                    queue.append(nxt)
    desc = []
    for q in sorted(order, key=order.get):
        row = []
        for rep, atom in reps_atoms:
            q1, q2 = sta.dest(q, rep)[0]
            row.append((atom, order[q1], order[q2], sta.selects(q, rep)))
        desc.append((q in sta.bottom, tuple(row)))
    return tuple(desc)


def tdsta_equivalent(a: STA, b: STA) -> bool:
    """Decide A ≡ B for top-down deterministic STAs.

    Both automata are minimized and compared over the *joint* label atoms
    (a fresh unmentioned label of one may be mentioned by the other).
    """
    joint = _with_joint_atoms(a, b)
    a2, b2 = (minimize_tdsta(x) for x in joint)
    return _canonical_tdsta(a2) == _canonical_tdsta(b2)


def bdsta_equivalent(a: STA, b: STA) -> bool:
    """Decide A ≡ B for bottom-up deterministic STAs (product check)."""
    a2, b2 = _with_joint_atoms(a, b)
    a2 = complete_bottomup(a2)
    b2 = complete_bottomup(b2)
    reps_atoms = _joint_atoms(a2, b2)
    reps = [rep for rep, _ in reps_atoms]
    (a0,) = tuple(a2.bottom)
    (b0,) = tuple(b2.bottom)
    # Explore reachable state pairs; equivalence fails iff some reachable
    # pair disagrees on acceptance-at-root potential or selection.  For
    # *deterministic complete* automata, A ≡ B iff for every tree/node the
    # paired run agrees on (top-membership at root, selection at node).
    # Reachable pairs are built bottom-up like a product automaton.
    pairs = {(a0, b0)}
    changed = True
    while changed:
        changed = False
        current = list(pairs)
        for p1, q1 in current:
            for p2, q2 in current:
                for rep in reps:
                    pa = a2.source(p1, p2, rep)[0]
                    pb = b2.source(q1, q2, rep)[0]
                    if a2.selects(pa, rep) != b2.selects(pb, rep):
                        return False
                    if (pa, pb) not in pairs:
                        pairs.add((pa, pb))
                        changed = True
    return all((pa in a2.top) == (pb in b2.top) for pa, pb in pairs)


def _joint_atoms(a: STA, b: STA) -> List[Tuple[str, LabelSet]]:
    names = set(a.alphabet_sample()[:-1]) | set(b.alphabet_sample()[:-1])
    other = "†other"
    while other in names:
        other += "'"
    out: List[Tuple[str, LabelSet]] = [(n, LabelSet.of(n)) for n in sorted(names)]
    out.append((other, LabelSet.not_of(*sorted(names))))
    return out


def _with_joint_atoms(a: STA, b: STA) -> Tuple[STA, STA]:
    """Make both automata mention each other's labels (no-op transitions).

    Minimization canonicalizes over an automaton's own atom decomposition;
    giving both the same mentioned-name set aligns the decompositions.
    """
    names = sorted(
        set(a.alphabet_sample()[:-1]) | set(b.alphabet_sample()[:-1])
    )

    def pad(sta: STA) -> STA:
        mentioned = set(sta.alphabet_sample()[:-1])
        missing = [n for n in names if n not in mentioned]
        if not missing:
            return sta
        # Mention missing names by splitting one existing transition's
        # label set syntactically (semantics unchanged).
        ts = list(sta.transitions)
        extra = []
        for n in missing:
            split_done = False
            for i, t in enumerate(ts):
                if t.labels.contains(n) and not t.labels.is_finite():
                    ts[i] = Transition(
                        t.q, t.labels.difference(LabelSet.of(n)), t.q1, t.q2
                    )
                    extra.append(Transition(t.q, LabelSet.of(n), t.q1, t.q2))
                    split_done = True
                    break
                if t.labels.contains(n):
                    split_done = True  # already finite and mentions n
                    break
            if not split_done:
                # Name occurs in no transition: behaviour on it is "no
                # transition"; mention it via an empty-effect marker on the
                # selection side of an arbitrary state.
                pass
        return STA(sta.states, sta.top, sta.bottom, dict(sta.selecting), ts + extra)

    return pad(a), pad(b)
