"""Deterministic compilation of path queries (the Intro's TDTA story).

The paper's "extreme |Q|-optimization" compiles a *restricted* XPath
subset into a top-down deterministic automaton whose run needs a single
look-up per node.  The restriction is essential: with predicates a
top-down automaton cannot know whether to select (the ``//a[.//b]//c``
discussion of Section 1).

This module realizes that restricted compiler by determinizing the
compiled ASTA's top-down approximation *exactly*:

- a query qualifies (:func:`is_path_shaped`) iff every transition formula
  is ``⊤``, ``↓1 q``, ``↓2 q`` or ``↓1 q ∨ ↓2 q`` -- the shape the
  Section 4.2 compiler produces for predicate-free location paths;
- for such automata every disjunct carries at most one obligation, so the
  subset states of ``tda(A)`` describe exactly the realizable active
  state sets, and selection depends only on the root path: the resulting
  :class:`~repro.automata.sta.STA` is a top-down deterministic selector
  equivalent to the ASTA.

The produced TDSTA feeds the Section 3 pipeline: minimization
(:func:`~repro.automata.minimize.minimize_tdsta`) and the jumping
evaluation of Algorithm B.1 (:func:`~repro.automata.topdown.topdown_jump`)
-- see :mod:`repro.engine.deterministic`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.asta.automaton import ASTA
from repro.asta.formula import Formula, down, down_states, for_
from repro.automata.labelset import LabelSet
from repro.automata.sta import STA, Transition

StateSet = FrozenSet[str]


class NotPathShaped(ValueError):
    """The ASTA is outside the deterministically-compilable fragment."""


def is_path_shaped(asta: ASTA) -> bool:
    """True iff the ASTA came from a predicate-free location path.

    Structurally: every formula is ⊤ / ↓1 q / ↓2 q / ↓1 q ∨ ↓2 q, and
    every *selecting* formula is ⊤.  The latter is the paper's Section 1
    point: with a predicate, selection depends on the subtree, which a
    top-down deterministic automaton cannot know (``//a[.//b]//c``).
    """
    for t in asta.transitions:
        f = t.formula
        if t.selecting and f != ("T",):
            return False
        if f == ("T",):
            continue
        if f[0] == "d":
            continue
        if (
            f[0] == "|"
            and f[1][0] == "d"
            and f[2][0] == "d"
            and len(down_states(f)) <= 2
        ):
            continue
        return False
    return True


def _enc(states: StateSet) -> str:
    return "{" + ",".join(sorted(states)) + "}" if states else "{∅}"


def path_tdsta(asta: ASTA, max_states: int = 4096) -> STA:
    """Exact top-down deterministic STA for a path-shaped ASTA."""
    if not is_path_shaped(asta):
        raise NotPathShaped(
            "deterministic compilation requires a predicate-free path query"
        )
    atoms = asta.atoms()
    empty: StateSet = frozenset()
    seen: Set[StateSet] = set()
    frontier: List[StateSet] = []

    def visit(states: StateSet) -> str:
        if states not in seen:
            if len(seen) >= max_states:
                raise NotPathShaped(
                    f"subset construction exceeded {max_states} states"
                )
            seen.add(states)
            frontier.append(states)
        return _enc(states)

    top = visit(frozenset(asta.top))
    visit(empty)

    transitions: List[Transition] = []
    selecting: Dict[str, LabelSet] = {}

    while frontier:
        states = frontier.pop()
        name = _enc(states)
        for rep, atom in atoms:
            s1: Set[str] = set()
            s2: Set[str] = set()
            fires = False
            for q in states:
                for t in asta.transitions_of(q):
                    if not t.labels.contains(rep):
                        continue
                    for side, q2 in down_states(t.formula):
                        (s1 if side == 1 else s2).add(q2)
                    if t.selecting:
                        fires = True
            transitions.append(
                Transition(
                    name, atom, visit(frozenset(s1)), visit(frozenset(s2))
                )
            )
            if fires:
                prev = selecting.get(name, LabelSet.empty())
                selecting[name] = prev.union(atom)

    names = sorted(_enc(s) for s in seen)
    return STA(
        names,
        [top],
        names,  # every state accepts #: path queries impose no constraints
        selecting,
        _merge_labels(transitions),
    )


def filter_bdsta(target: str, witness: str) -> STA:
    """BDSTA for ``//target[.//witness]`` (the Example A.1/B.1 family).

    This is the query class the paper uses to show BDSTAs are strictly
    incomparable with TDSTAs (a top-down automaton cannot know whether to
    select before seeing the subtree).  States:

    - ``q0``: no witness in the binary subtree;
    - ``q1``: the *left* subtree (= XML descendants) contains a witness --
      selection happens here on target-labelled nodes;
    - ``q2``: witness present in the binary subtree but not below-left
      (the node is the witness itself, or it is to the right).
    """
    if target == witness:
        # ``//x[.//x]``: same machinery, selection still requires a strict
        # descendant witness; the construction below already handles it.
        pass
    transitions: List[Transition] = []
    others = LabelSet.not_of(witness)
    for s1 in ("q0", "q1", "q2"):
        for s2 in ("q0", "q1", "q2"):
            left_has = s1 != "q0"
            any_has = s1 != "q0" or s2 != "q0"
            # non-witness labels: propagate
            if left_has:
                q = "q1"
            elif any_has:
                q = "q2"
            else:
                q = "q0"
            transitions.append(Transition(q, others, s1, s2))
            # the witness label: subtree contains it by definition
            qw = "q1" if left_has else "q2"
            transitions.append(Transition(qw, LabelSet.of(witness), s1, s2))
    return STA(
        ["q0", "q1", "q2"],
        ["q0", "q1", "q2"],
        ["q0"],
        {"q1": LabelSet.of(target)},
        transitions,
    )


def match_filter_query(path) -> "tuple[str, str] | None":
    """Recognize ``//target[.//witness]`` (returns (target, witness))."""
    from repro.xpath.ast import Axis, PredPath

    if not path.absolute or len(path.steps) != 1:
        return None
    step = path.steps[0]
    if step.axis is not Axis.DESCENDANT or step.test_matches_any():
        return None
    pred = step.predicate
    if not isinstance(pred, PredPath) or pred.path.absolute:
        return None
    inner = pred.path.steps
    if len(inner) != 1:
        return None
    wstep = inner[0]
    if wstep.axis is not Axis.DESCENDANT or wstep.predicate is not None:
        return None
    if wstep.test_matches_any():
        return None
    return step.test, wstep.test


def _merge_labels(transitions: List[Transition]) -> List[Transition]:
    grouped: Dict[Tuple[str, str, str], LabelSet] = {}
    order: List[Tuple[str, str, str]] = []
    for t in transitions:
        key = (t.q, t.q1, t.q2)
        if key in grouped:
            grouped[key] = grouped[key].union(t.labels)
        else:
            grouped[key] = t.labels
            order.append(key)
    return [Transition(q, grouped[(q, q1, q2)], q1, q2) for q, q1, q2 in order]
