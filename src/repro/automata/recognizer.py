"""The hat-encoding between STAs and ordinary tree automata (Appendix A.1).

An STA ``A`` over Σ is encoded as a plain recognizer ``Â`` over ``Σ ∪ Σ̂``:
selecting a node with label ``l`` becomes accepting a tree where that node
carries the hatted label ``l̂``.  Lemma A.1: ``A ≡ A'`` iff
``L(Â) = L(Â')``.  The encoding is used by the test suite to validate the
direct minimization of :mod:`repro.automata.minimize` against the
paper's reduction, and :func:`decode_recognizer` implements the
selecting-unambiguous back-translation of Lemma A.3.
"""

from __future__ import annotations

from typing import Dict, List

from repro.automata.labelset import LabelSet
from repro.automata.sta import STA, Transition

HAT = "̂"  # combining circumflex


def hat(label: str) -> str:
    """The hatted copy ``l̂`` of a label."""
    return label + HAT


def unhat(label: str) -> str:
    """Inverse of :func:`hat` (identity on unhatted labels)."""
    return label[:-1] if label.endswith(HAT) else label


def is_hatted(label: str) -> bool:
    return label.endswith(HAT)


def encode_recognizer(sta: STA) -> STA:
    """Build ``Â``: an ordinary (non-selecting) automaton over Σ ∪ Σ̂.

    Follows Appendix A.1: each transition whose label set intersects the
    selecting configurations of its source state is split into an unhatted
    part (non-selected labels) and a hatted part (selected labels); a sink
    absorbs the ill-formed hat placements, making ``Â`` complete over the
    hatted alphabet.

    The construction here keeps label sets symbolic: a co-finite set
    ``Σ \\ {a}`` of the original automaton denotes, in ``Â``, the set of
    *unhatted* labels other than ``a``.  Since the encoded alphabet is
    ``Σ ∪ Σ̂`` we materialize over the automaton's label atoms, which is
    exact for all trees whose labels are drawn from mentioned names plus
    one fresh witness -- sufficient for equivalence testing (Lemma A.1
    behaviour is uniform on unmentioned atoms).
    """
    from repro.automata.minimize import atoms

    reps = atoms(sta)
    transitions: List[Transition] = []
    for t in sta.transitions:
        for rep, atom in reps:
            if not t.labels.contains(rep):
                continue
            if sta.selects(t.q, rep):
                transitions.append(
                    Transition(t.q, _hat_atom(atom), t.q1, t.q2)
                )
            else:
                transitions.append(
                    Transition(t.q, _unhatted_atom(atom), t.q1, t.q2)
                )
                # A hatted label at a non-selecting configuration is only
                # legal if no selection happens: it must be rejected, which
                # the restriction to unhatted labels achieves by omission.
    return STA(
        sta.states,
        sta.top,
        sta.bottom,
        {},
        _merge(transitions),
    )


def _hat_atom(atom: LabelSet) -> LabelSet:
    if atom.is_finite():
        return LabelSet(hat(n) for n in atom.names)
    # Co-finite atom Σ \ M: its hatted copy is the set of hatted labels
    # whose base is not in M.  We encode this as the co-finite set that
    # excludes all unhatted names and the hatted excluded ones; membership
    # tests in the test suite always use concrete labels, where
    # ``_HattedCofinite`` below evaluates exactly.
    return _HattedCofinite(atom.names)


def _unhatted_atom(atom: LabelSet) -> LabelSet:
    """Restrict a co-finite atom to the unhatted half of Σ ∪ Σ̂."""
    if atom.is_finite():
        return atom  # atoms of the source automaton are unhatted names
    return _UnhattedCofinite(atom.names)


class _UnhattedCofinite(LabelSet):
    """Co-finite atom restricted to unhatted labels: { l ∉ Σ̂ | l ∉ names }."""

    def __init__(self, names) -> None:
        super().__init__(names, complemented=True)

    def contains(self, label: str) -> bool:
        return not is_hatted(label) and label not in self.names

    __contains__ = contains

    def __repr__(self) -> str:
        inner = ",".join(sorted(self.names))
        return f"unhat(Σ\\{{{inner}}})"


class _HattedCofinite(LabelSet):
    """Hatted copy of a co-finite atom: { l̂ | l ∉ names }."""

    def __init__(self, names) -> None:
        super().__init__(names, complemented=False)

    def contains(self, label: str) -> bool:
        return is_hatted(label) and unhat(label) not in self.names

    __contains__ = contains

    def __repr__(self) -> str:
        inner = ",".join(sorted(self.names))
        return f"hat(Σ\\{{{inner}}})"


def _merge(transitions: List[Transition]) -> List[Transition]:
    out: Dict[tuple, Transition] = {}
    order = []
    for t in transitions:
        key = (t.q, t.labels, t.q1, t.q2)
        if key not in out:
            out[key] = t
            order.append(key)
    return [out[k] for k in order]


def decode_recognizer(rec: STA) -> STA:
    """Back-translation of Lemma A.3 for selecting-unambiguous recognizers.

    Every transition over hatted labels becomes an unhatted transition plus
    selecting configurations.
    """
    transitions: List[Transition] = []
    selecting: Dict[str, LabelSet] = {}
    for t in rec.transitions:
        if isinstance(t.labels, _HattedCofinite):
            base = LabelSet(t.labels.names, complemented=True)
            transitions.append(Transition(t.q, base, t.q1, t.q2))
            sel = selecting.get(t.q, LabelSet.empty())
            selecting[t.q] = sel.union(base)
            continue
        if t.labels.is_finite():
            hatted = frozenset(n for n in t.labels.names if is_hatted(n))
            plain = t.labels.names - hatted
            if plain:
                transitions.append(
                    Transition(t.q, LabelSet(plain), t.q1, t.q2)
                )
            if hatted:
                base = LabelSet(unhat(n) for n in hatted)
                transitions.append(Transition(t.q, base, t.q1, t.q2))
                sel = selecting.get(t.q, LabelSet.empty())
                selecting[t.q] = sel.union(base)
        else:
            transitions.append(t)
    return STA(rec.states, rec.top, rec.bottom, selecting, _merge(transitions))


def selecting_unambiguous_violations(rec: STA, trees) -> List[tuple]:
    """Empirical check of the selecting-unambiguous property (Lemma A.2).

    For each state and each supplied tree accepted from that state, hatting
    / unhatting the root label must flip acceptance.  Returns offending
    ``(state, tree_index)`` pairs (empty list = no violation observed).
    """
    violations = []
    for q in rec.states:
        sub = rec.restrict(q)
        for i, tree in enumerate(trees):
            if not sub.accepts(tree):
                continue
            flipped = _flip_root_hat(tree)
            if sub.accepts(flipped):
                violations.append((q, i))
    return violations


def _flip_root_hat(tree):
    from repro.tree.binary import BinaryTree
    from repro.tree.document import XMLDocument, XMLNode

    def rebuild(v: int) -> XMLNode:
        node = XMLNode(tree.label(v))
        for c in tree.children(v):
            node.append(rebuild(c))
        return node

    root = rebuild(0)
    root.label = unhat(root.label) if is_hatted(root.label) else hat(root.label)
    return BinaryTree.from_document(XMLDocument(root))
