"""Relevant nodes (Definition 3.1, Lemmas 3.1 and 3.2).

A node is *relevant* when the minimal automaton gains information there:
it is selected, or a state change occurs.  These reference computations
back the optimality statements (Theorems 3.1/3.2) in the test suite:

- :func:`topdown_relevant` -- Lemma 3.1 over the unique run of a minimal
  complete TDSTA;
- :func:`bottomup_relevant` -- Lemma 3.2 over the unique run of a minimal
  complete BDSTA;
- :func:`essential_labels` -- the labels on which a state actually changes
  (the jump targets of Section 3.1.2).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set

from repro.automata.labelset import LabelSet
from repro.automata.sta import STA, State
from repro.tree.binary import NIL, BinaryTree


def topdown_universal_state(sta: STA) -> Optional[State]:
    """The state q> of a minimal TDSTA, if present (Definition 2.4)."""
    for q in sta.states:
        if sta.is_topdown_universal(q):
            return q
    return None


def topdown_sink_state(sta: STA) -> Optional[State]:
    """The state q⊥ of a minimal TDSTA, if present."""
    for q in sta.states:
        if sta.is_topdown_sink(q):
            return q
    return None


def bottomup_universal_state(sta: STA) -> Optional[State]:
    """The non-changing accepting state of a minimal BDSTA (its q>)."""
    for q in sta.states:
        if sta.is_non_changing(q) and q in sta.top and q not in sta.selecting:
            return q
    return None


def essential_labels(sta: STA, q: State) -> LabelSet:
    """Labels for which δ(q, l) is not the pure self-loop (q, q).

    For a minimal TDSTA these are exactly the labels at which a top-down
    run in state ``q`` can become relevant (selected labels are always
    included: a selected node is relevant even without a state change).
    """
    ess = LabelSet.empty()
    for t in sta.transitions:
        if t.q != q:
            continue
        if (t.q1, t.q2) != (q, q):
            ess = ess.union(t.labels)
    sel = sta.selecting.get(q)
    if sel is not None:
        ess = ess.union(sel)
    return ess


def topdown_relevant(sta: STA, tree: BinaryTree) -> Optional[FrozenSet[int]]:
    """Relevant nodes per Lemma 3.1 for a minimal complete TDSTA.

    Returns None when the unique run is rejecting (then ``topdown_jump``
    must return the empty mapping, Theorem 3.1).
    """
    run = sta.deterministic_topdown_run(tree)
    if run is None:
        return None
    q_top = topdown_universal_state(sta)
    out: Set[int] = set()
    for v in range(tree.n):
        label = tree.label(v)
        q = run[v]
        if sta.selects(q, label):
            out.add(v)
            continue
        ((q1, q2),) = sta.dest(q, label)
        if q == q1 == q2:
            continue
        if q == q1 and q2 == q_top:
            continue
        if q == q2 and q1 == q_top:
            continue
        out.add(v)
    return frozenset(out)


def universal_sta() -> STA:
    """A_⊤: accepts T(Σ), selects nothing (Definition 3.1's reference)."""
    from repro.automata.labelset import ANY
    from repro.automata.sta import Transition

    return STA(["qT"], ["qT"], ["qT"], {}, [Transition("qT", ANY, "qT", "qT")])


def relevant_definition31(sta: STA, tree: BinaryTree) -> Optional[FrozenSet[int]]:
    """Relevant nodes straight from Definition 3.1, for TDSTAs.

    Uses actual sub-automaton equivalence checks ``A[q] ≡ A[q']`` and
    ``A[q] ≡ A_⊤`` (the EXPTIME-complete route the paper says is
    impractical -- which is fine here: this is the *specification*, used
    by the tests to validate Lemma 3.1's efficient characterization on
    minimal automata).

    The definition speaks about nodes whose both children are in Dom(t);
    our virtual-# encoding makes every node binary-internal, with ``#``
    children behaving as sub-runs that trivially satisfy their state's
    B-membership, so the same conditions apply with the child states read
    off the unique run.
    """
    from repro.automata.minimize import tdsta_equivalent

    run = sta.deterministic_topdown_run(tree)
    if run is None:
        return None
    top = universal_sta()

    # Cache pairwise sub-automaton equivalences (they depend only on
    # states, not nodes).
    equiv_cache: dict = {}

    def equivalent(q1: State, q2: State) -> bool:
        key = (q1, q2)
        if key not in equiv_cache:
            equiv_cache[key] = tdsta_equivalent(
                sta.restrict(q1), sta.restrict(q2)
            )
        return equiv_cache[key]

    univ_cache: dict = {}

    def is_universal(q: State) -> bool:
        if q not in univ_cache:
            univ_cache[q] = tdsta_equivalent(sta.restrict(q), top)
        return univ_cache[q]

    out: Set[int] = set()
    for v in range(tree.n):
        label = tree.label(v)
        q = run[v]
        if sta.selects(q, label):
            out.add(v)
            continue
        ((q1, q2),) = sta.dest(q, label)
        if equivalent(q, q1) and equivalent(q, q2):
            continue
        if equivalent(q, q1) and is_universal(q2):
            continue
        if equivalent(q, q2) and is_universal(q1):
            continue
        out.add(v)
    return frozenset(out)


def bottomup_relevant(sta: STA, tree: BinaryTree) -> Optional[FrozenSet[int]]:
    """Relevant nodes per Lemma 3.2 for a minimal complete BDSTA."""
    from repro.automata.bottomup import bottom_up

    run = bottom_up(sta, tree)
    if run is None:
        return None
    (q0,) = tuple(sta.bottom)
    q_top = bottomup_universal_state(sta)
    skippable = {q0, q_top} if q_top is not None else {q0}
    out: Set[int] = set()
    for v in range(tree.n):
        label = tree.label(v)
        q = run[v]
        if sta.selects(q, label):
            out.add(v)
            continue
        lc, rc = tree.left[v], tree.right[v]
        r1 = q0 if lc == NIL else run[lc]
        r2 = q0 if rc == NIL else run[rc]
        if q_top is not None and q == q_top:
            continue
        if q == r1 == r2:
            continue
        if q == r1 and r2 in skippable:
            continue
        if q == r2 and r1 in skippable:
            continue
        out.add(v)
    return frozenset(out)
