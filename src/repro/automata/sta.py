"""Selecting tree automata (Definition 2.1) with reference semantics.

An STA is ``(Σ, Q, T, B, S, δ)``: top states, bottom states, selecting
configurations and transitions ``q, L -> (q1, q2)``.  Σ is implicit (label
sets are finite/co-finite over all names; see
:mod:`repro.automata.labelset`).

This module deliberately implements the *mathematical* semantics -- the set
of all accepting runs -- as a polynomial oracle (bottom-up reachable-state
sets plus a top-down usefulness pass).  The optimized evaluators of
Sections 3-4 are tested against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Set, Tuple

from repro.automata.labelset import ANY, LabelSet
from repro.tree.binary import NIL, BinaryTree

State = str


@dataclass(frozen=True)
class Transition:
    """One rule ``q, L -> (q1, q2)``."""

    q: State
    labels: LabelSet
    q1: State
    q2: State

    def __repr__(self) -> str:
        return f"{self.q}, {self.labels} -> ({self.q1}, {self.q2})"


class STA:
    """A selecting tree automaton over binary fcns trees.

    Parameters
    ----------
    states:
        The state set Q.
    top:
        T ⊆ Q (accepting at the root for bottom-up reading; initial for
        top-down reading).
    bottom:
        B ⊆ Q (required at ``#`` leaves; initial for bottom-up reading).
    selecting:
        The set S as a mapping ``state -> LabelSet`` (``(q, l) ∈ S`` iff
        ``l ∈ selecting[q]``).
    transitions:
        The rule set δ.
    """

    def __init__(
        self,
        states: Iterable[State],
        top: Iterable[State],
        bottom: Iterable[State],
        selecting: Dict[State, LabelSet],
        transitions: Sequence[Transition],
    ) -> None:
        self.states: Tuple[State, ...] = tuple(dict.fromkeys(states))
        self.top: FrozenSet[State] = frozenset(top)
        self.bottom: FrozenSet[State] = frozenset(bottom)
        self.selecting: Dict[State, LabelSet] = {
            q: ls for q, ls in selecting.items() if not ls.is_empty()
        }
        self.transitions: Tuple[Transition, ...] = tuple(transitions)
        self._validate()

    def _validate(self) -> None:
        known = set(self.states)
        for q in self.top | self.bottom | set(self.selecting):
            if q not in known:
                raise ValueError(f"unknown state {q!r}")
        for t in self.transitions:
            for q in (t.q, t.q1, t.q2):
                if q not in known:
                    raise ValueError(f"unknown state {q!r} in {t}")

    # -- structural queries ------------------------------------------------------

    def alphabet_sample(self) -> Tuple[str, ...]:
        """All names mentioned anywhere, plus a fresh ``other`` witness.

        Behaviour of the automaton is uniform on unmentioned labels, so this
        finite sample is sufficient for determinism checks, minimization and
        equivalence.
        """
        names: Set[str] = set()
        for t in self.transitions:
            names |= t.labels.mentioned()
        for ls in self.selecting.values():
            names |= ls.mentioned()
        other = "†other"
        while other in names:
            other += "'"
        return tuple(sorted(names)) + (other,)

    def dest(self, q: State, label: str) -> list[Tuple[State, State]]:
        """δ(q, l): destination pairs (top-down reading)."""
        return [
            (t.q1, t.q2)
            for t in self.transitions
            if t.q == q and t.labels.contains(label)
        ]

    def source(self, q1: State, q2: State, label: str) -> list[State]:
        """δ(q1, q2, l): source states (bottom-up reading)."""
        return [
            t.q
            for t in self.transitions
            if t.q1 == q1 and t.q2 == q2 and t.labels.contains(label)
        ]

    def selects(self, q: State, label: str) -> bool:
        """Whether ``(q, label) ∈ S``."""
        ls = self.selecting.get(q)
        return ls is not None and ls.contains(label)

    # -- determinism / completeness (Section 2) ------------------------------------

    def is_topdown_deterministic(self) -> bool:
        if len(self.top) != 1:
            return False
        sample = self.alphabet_sample()
        return all(
            len(self.dest(q, label)) <= 1
            for q in self.states
            for label in sample
        )

    def is_topdown_complete(self) -> bool:
        sample = self.alphabet_sample()
        return all(
            len(self.dest(q, label)) >= 1
            for q in self.states
            for label in sample
        )

    def is_bottomup_deterministic(self) -> bool:
        if len(self.bottom) != 1:
            return False
        sample = self.alphabet_sample()
        return all(
            len(set(self.source(q1, q2, label))) <= 1
            for q1 in self.states
            for q2 in self.states
            for label in sample
        )

    def is_bottomup_complete(self) -> bool:
        sample = self.alphabet_sample()
        return all(
            len(self.source(q1, q2, label)) >= 1
            for q1 in self.states
            for q2 in self.states
            for label in sample
        )

    # -- Definition 2.4 --------------------------------------------------------------

    def is_non_changing(self, q: State) -> bool:
        """∀l: δ(q, l) = {(q, q)} -- the state loops on everything."""
        sample = self.alphabet_sample()
        return all(self.dest(q, label) == [(q, q)] for label in sample)

    def is_topdown_universal(self, q: State) -> bool:
        return self.is_non_changing(q) and q in self.bottom and q not in self.selecting

    def is_topdown_sink(self, q: State) -> bool:
        return self.is_non_changing(q) and q not in self.bottom

    # -- restriction A[q] (Definition A.2) ---------------------------------------------

    def restrict(self, *tops: State) -> "STA":
        """A[q1..qn]: replace T and drop states unreachable from it."""
        reach: Set[State] = set(tops)
        frontier = list(tops)
        by_source: Dict[State, list[Transition]] = {}
        for t in self.transitions:
            by_source.setdefault(t.q, []).append(t)
        while frontier:
            q = frontier.pop()
            for t in by_source.get(q, ()):
                for nxt in (t.q1, t.q2):
                    if nxt not in reach:
                        reach.add(nxt)
                        frontier.append(nxt)
        return STA(
            [q for q in self.states if q in reach],
            [q for q in tops],
            [q for q in self.bottom if q in reach],
            {q: ls for q, ls in self.selecting.items() if q in reach},
            [t for t in self.transitions if t.q in reach],
        )

    # -- reference semantics (oracle) ------------------------------------------------

    def reachable_states(self, tree: BinaryTree) -> list[FrozenSet[State]]:
        """For each node, the states q with some valid sub-run R(v) = q.

        Valid means: every ``#`` leaf strictly below (in the binary sense)
        is assigned a bottom state.  Computed bottom-up in one backwards
        sweep (children have larger ids).
        """
        bottom = frozenset(self.bottom)
        out: list[FrozenSet[State]] = [frozenset()] * tree.n
        for v in range(tree.n - 1, -1, -1):
            lc, rc = tree.left[v], tree.right[v]
            s1 = bottom if lc == NIL else out[lc]
            s2 = bottom if rc == NIL else out[rc]
            label = tree.label(v)
            here: Set[State] = set()
            for t in self.transitions:
                if t.q1 in s1 and t.q2 in s2 and t.labels.contains(label):
                    here.add(t.q)
            out[v] = frozenset(here)
        return out

    def accepts(self, tree: BinaryTree) -> bool:
        """t ∈ L(A)?"""
        return bool(self.reachable_states(tree)[0] & self.top)

    def useful_states(self, tree: BinaryTree) -> list[FrozenSet[State]]:
        """States per node that occur in at least one *accepting* run."""
        reach = self.reachable_states(tree)
        useful: list[Set[State]] = [set() for _ in range(tree.n)]
        useful[0] = set(reach[0] & self.top)
        bottom = frozenset(self.bottom)
        for v in range(tree.n):
            if not useful[v]:
                continue
            lc, rc = tree.left[v], tree.right[v]
            s1 = bottom if lc == NIL else reach[lc]
            s2 = bottom if rc == NIL else reach[rc]
            label = tree.label(v)
            for t in self.transitions:
                if (
                    t.q in useful[v]
                    and t.q1 in s1
                    and t.q2 in s2
                    and t.labels.contains(label)
                ):
                    if lc != NIL:
                        useful[lc].add(t.q1)
                    if rc != NIL:
                        useful[rc].add(t.q2)
        return [frozenset(u) for u in useful]

    def selected_nodes(self, tree: BinaryTree) -> list[int]:
        """A(t): nodes selected by some accepting run (Definition 2.3)."""
        if not self.selecting:
            return []
        useful = self.useful_states(tree)
        out = []
        for v in range(tree.n):
            label = tree.label(v)
            if any(self.selects(q, label) for q in useful[v]):
                out.append(v)
        return out

    def deterministic_topdown_run(self, tree: BinaryTree) -> Optional[Dict[int, State]]:
        """The unique run of a top-down complete TDSTA; None if rejecting.

        States are also assigned to the virtual ``#`` leaves conceptually;
        acceptance checks them against B on the fly.
        """
        (q0,) = tuple(self.top)
        run: Dict[int, State] = {}
        stack: list[Tuple[int, State]] = [(0, q0)]
        while stack:
            v, q = stack.pop()
            run[v] = q
            dests = self.dest(q, tree.label(v))
            if len(dests) != 1:
                raise ValueError("automaton is not top-down deterministic/complete")
            q1, q2 = dests[0]
            lc, rc = tree.left[v], tree.right[v]
            for child, qc in ((lc, q1), (rc, q2)):
                if child == NIL:
                    if qc not in self.bottom:
                        return None
                else:
                    stack.append((child, qc))
        return run

    # -- misc ---------------------------------------------------------------------------

    def rename(self, mapping: Dict[State, State]) -> "STA":
        """Apply a state renaming (used by minimization back-translation)."""

        def r(q: State) -> State:
            return mapping.get(q, q)

        merged_sel: Dict[State, LabelSet] = {}
        for q, ls in self.selecting.items():
            tgt = r(q)
            merged_sel[tgt] = ls if tgt not in merged_sel else merged_sel[tgt].union(ls)
        return STA(
            dict.fromkeys(r(q) for q in self.states),
            {r(q) for q in self.top},
            {r(q) for q in self.bottom},
            merged_sel,
            list(
                dict.fromkeys(
                    Transition(r(t.q), t.labels, r(t.q1), r(t.q2))
                    for t in self.transitions
                )
            ),
        )

    def __repr__(self) -> str:
        return (
            f"STA(|Q|={len(self.states)}, |δ|={len(self.transitions)}, "
            f"T={sorted(self.top)}, B={sorted(self.bottom)})"
        )
