"""``topdown_jump``: the jumping top-down evaluation (Algorithm B.1).

Given a *minimal, complete* TDSTA, computes the partial run restricted to
(top-down) relevant nodes using the jumping functions of Definition 3.2.
Theorem 3.1: the returned mapping is defined exactly on the relevant nodes
of the unique run, and is empty iff the run is rejecting.

The per-state analysis follows Lemma 3.1.  For a state ``q`` we partition
the labels that *cannot* make a node relevant into three skip sets:

- ``loop_both``  : δ(q,l) = (q, q)   and (q,l) ∉ S   -> condition 1,
- ``loop_left``  : δ(q,l) = (q, q>)  and (q,l) ∉ S   -> condition 2,
- ``loop_right`` : δ(q,l) = (q>, q)  and (q,l) ∉ S   -> condition 3.

Pure shapes map onto the three jump cases of Algorithm B.1 (dt/ft for
loop_both, lt for loop_left, rt for loop_right -- the arXiv pseudocode's
line 23 says ``lt`` for the third case, an evident transcription slip).
Mixed shapes, or essential-label sets that are co-finite (where the O(|L|)
index cost model forbids jumping -- the paper's "no jump is possible"),
fall back to visiting the node directly, which is sound but may touch
non-relevant nodes; the engine never does worse than plain descent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.automata.labelset import LabelSet
from repro.automata.relevance import topdown_universal_state
from repro.automata.sta import STA, State
from repro.counters import EvalStats
from repro.index.jumping import OMEGA, TreeIndex
from repro.tree.binary import NIL


class _Failure(Exception):
    """No accepting run exists."""


@dataclass
class _StateInfo:
    essential: LabelSet
    shape: str  # "both" | "left" | "right" | "mixed" | "skip"
    essential_ids: Optional[List[int]]  # None when co-finite / not jumpable


def _analyze(sta: STA, index: TreeIndex) -> Dict[State, _StateInfo]:
    q_top = topdown_universal_state(sta)
    info: Dict[State, _StateInfo] = {}
    for q in sta.states:
        loop_both = LabelSet.empty()
        loop_left = LabelSet.empty()
        loop_right = LabelSet.empty()
        sel = sta.selecting.get(q, LabelSet.empty())
        for t in sta.transitions:
            if t.q != q:
                continue
            skippable = t.labels.difference(sel)
            if (t.q1, t.q2) == (q, q):
                loop_both = loop_both.union(skippable)
            elif t.q1 == q and t.q2 == q_top:
                loop_left = loop_left.union(skippable)
            elif t.q2 == q and t.q1 == q_top:
                loop_right = loop_right.union(skippable)
        essential = (
            loop_both.union(loop_left).union(loop_right).complement()
        ).union(sel)
        if q == q_top:
            shape = "skip"  # A[q>] accepts everything, selects nothing
        elif not loop_left.is_empty() and loop_both.is_empty() and loop_right.is_empty():
            shape = "left"
        elif not loop_right.is_empty() and loop_both.is_empty() and loop_left.is_empty():
            shape = "right"
        elif loop_left.is_empty() and loop_right.is_empty() and not loop_both.is_empty():
            # Skipping a loop_both region leaves all its # leaves in q; that
            # is only acceptance-transparent when q ∈ B.  Otherwise fall
            # back to plain descent (sound; the region must be walked to
            # check the B constraint anyway).
            shape = "both" if q in sta.bottom else "mixed"
        else:
            shape = "mixed"  # mixed loop shapes, or nothing skippable
        ids = essential.positive_ids(index.tree) if shape in ("both", "left", "right") else None
        if shape == "both" and ids is None:
            shape = "mixed"  # co-finite essential set: not jumpable
        info[q] = _StateInfo(essential, shape, ids)
    return info


def topdown_jump(
    sta: STA,
    index: TreeIndex,
    stats: Optional[EvalStats] = None,
) -> Dict[int, State]:
    """Partial run on relevant nodes; ``{}`` iff the run is rejecting.

    Parameters mirror Algorithm B.1: a minimal complete TDSTA and a tree
    index supplying dt/ft/lt/rt.
    """
    if len(sta.top) != 1:
        raise ValueError("topdown_jump requires a TDSTA (|T| = 1)")
    tree = index.tree
    info = _analyze(sta, index)
    sink = _find_sink(sta)
    (q0,) = tuple(sta.top)

    def relevant_nodes(v: int, q: State) -> List[int]:
        st = info[q]
        if st.shape == "skip":
            return []
        if st.essential.contains(tree.label(v)):
            return [v]
        if st.shape == "both":
            if stats is not None:
                stats.jumps += 1
            out: List[int] = []
            cur = index.dt(v, st.essential_ids)
            while cur != OMEGA:
                out.append(cur)
                if stats is not None:
                    stats.jumps += 1
                cur = index.ft(cur, st.essential_ids, v)
            return out
        if st.shape == "left":
            if st.essential_ids is None:
                return [v]
            if stats is not None:
                stats.jumps += 1
            hit = index.lt(v, st.essential_ids)
            if hit == OMEGA:
                # End of the left spine: its terminal # leaf carries q.
                if q not in sta.bottom:
                    raise _Failure
                return []
            return [hit]
        if st.shape == "right":
            if st.essential_ids is None:
                return [v]
            if stats is not None:
                stats.jumps += 1
            hit = index.rt(v, st.essential_ids)
            if hit == OMEGA:
                if q not in sta.bottom:
                    raise _Failure
                return []
            return [hit]
        return [v]  # mixed: sound fallback, visit the node itself

    run: Dict[int, State] = {}
    stack: List[tuple] = []

    def schedule(v: int, q: State) -> None:
        for node in relevant_nodes(v, q):
            stack.append((node, q))

    try:
        schedule(0, q0)
        while stack:
            v, q = stack.pop()
            run[v] = q
            if stats is not None:
                stats.visited += 1
            dests = sta.dest(q, tree.label(v))
            if len(dests) != 1:
                raise ValueError(
                    "topdown_jump requires a complete deterministic TDSTA"
                )
            q1, q2 = dests[0]
            if q1 == sink or q2 == sink:
                raise _Failure
            lc, rc = tree.left[v], tree.right[v]
            for child, qc in ((lc, q1), (rc, q2)):
                if child == NIL:
                    if qc not in sta.bottom:
                        raise _Failure
                else:
                    schedule(child, qc)
    except _Failure:
        return {}
    return run


def _find_sink(sta: STA) -> Optional[State]:
    from repro.automata.relevance import topdown_sink_state

    return topdown_sink_state(sta)
