"""Baseline engines the paper compares against.

- :mod:`repro.baselines.staircase` -- the staircase join [9]: pruned
  descendant/ancestor computation over pre/post (here: preorder-range)
  encodings, the relational-engine technique the Related Work discusses;
- :mod:`repro.baselines.stepwise` -- step-at-a-time Core XPath evaluation
  over node sets (the Gottlob-Koch O(|D|·|Q|) family), standing in for the
  MonetDB/XQuery comparator of Figure 8 / Appendix D.
"""

from repro.baselines.staircase import (
    descendants_with_label,
    descendants_with_label_indexed,
    topmost_prune,
)
from repro.baselines.stepwise import stepwise_evaluate

__all__ = [
    "stepwise_evaluate",
    "topmost_prune",
    "descendants_with_label",
    "descendants_with_label_indexed",
]
