"""Staircase join primitives (Grust et al. [9]).

Over our preorder-id encoding, the XML subtree of ``v`` is the contiguous
range ``[v, xml_end[v])``, so the staircase join's core tricks become
range operations:

- *pruning*: for the descendant axis, context nodes nested inside another
  context node's subtree are redundant -- keep only the top-most ones;
- *skipping*: after pruning, the per-context ranges are disjoint, so each
  document node is scanned at most once.

The paper's Related Work points out that staircase pruning is an instance
of its subtree-skipping: "only the top-most independent context nodes are
considered, i.e., their subtrees are skipped".
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, List, Optional

from repro.counters import EvalStats
from repro.index.labels import LabelIndex
from repro.tree.binary import BinaryTree


def topmost_prune(tree: BinaryTree, nodes: List[int]) -> List[int]:
    """Keep only context nodes not contained in an earlier one's subtree.

    ``nodes`` must be sorted (document order); the result is too.
    """
    out: List[int] = []
    prev_end = -1
    for v in nodes:
        if v >= prev_end:
            out.append(v)
            prev_end = tree.xml_end[v]
    return out


def descendants_with_label(
    tree: BinaryTree,
    labels: LabelIndex,
    context: List[int],
    label: Optional[str],
    stats: Optional[EvalStats] = None,
) -> List[int]:
    """Staircase-joined descendant step: all l-labelled descendants of
    the context, duplicate-free and in document order.

    Faithful to the relational staircase join [9]: after pruning, each
    context's preorder range of the node table is *scanned* and filtered
    by tag (MonetDB has no per-tag position lists -- tag filtering is a
    selection over the scanned range).  ``label=None`` is the wildcard.
    ``stats.visited`` counts scanned tuples, the join's real work.
    """
    pruned = topmost_prune(tree, context)
    out: List[int] = []
    label_of = tree.label_of
    lab = None if label is None else tree.label_ids.get(label)
    if label is not None and lab is None:
        if stats is not None:
            for v in pruned:
                stats.visited += tree.xml_end[v] - v - 1
        return out
    for v in pruned:
        end = tree.xml_end[v]
        if stats is not None:
            stats.visited += end - v - 1
        if lab is None:
            out.extend(range(v + 1, end))
        else:
            out.extend(w for w in range(v + 1, end) if label_of[w] == lab)
    return out


def descendants_with_label_indexed(
    tree: BinaryTree,
    labels: LabelIndex,
    context: List[int],
    label: str,
    stats: Optional[EvalStats] = None,
) -> List[int]:
    """Index-assisted variant (binary search into per-label lists).

    This is the operator an engine *with SXSI's label index* could run;
    kept for the index-advantage ablation, not used by the conventional
    step-wise baseline.
    """
    pruned = topmost_prune(tree, context)
    out: List[int] = []
    lst = labels.nodes(label)
    for v in pruned:
        lo = bisect_right(lst, v)
        hi = bisect_left(lst, tree.xml_end[v], lo)
        out.extend(lst[lo:hi])
        if stats is not None:
            stats.index_probes += 1
            stats.visited += hi - lo
    return out


def ancestors_with_label(
    tree: BinaryTree,
    context: Iterable[int],
    label: Optional[str],
    stats: Optional[EvalStats] = None,
) -> List[int]:
    """Ancestor step by parent walks (deduplicated, document order)."""
    seen = set()
    for v in context:
        p = tree.parent[v]
        while p != -1 and p not in seen:
            if stats is not None:
                stats.visited += 1
            if label is None or tree.label(p) == label:
                seen.add(p)
            p = tree.parent[p]
    return sorted(seen)
