"""Step-at-a-time Core XPath evaluation (the "conventional engine").

Evaluates one location step at a time over materialized node sets, the
algorithmic family of Gottlob-Koch [6] and of relational XQuery engines
(MonetDB/XQuery with staircase joins [9]).  This is the stand-in
comparator for Figure 8 / Appendix D: same answers as the automata
engines, but per-step node-set materialization instead of a single
automaton pass -- so it cannot restrict evaluation to relevant nodes
(Related Work: THOR "does step-wise evaluation of XPath a la Koch and
therefore cannot use these structures to restrict evaluation to only
relevant nodes").

Descendant steps use the staircase join; child and following-sibling
steps walk sibling lists; predicates are evaluated per candidate node with
early exit.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.baselines.staircase import descendants_with_label, topmost_prune
from repro.counters import EvalStats
from repro.index.jumping import TreeIndex
from repro.tree.binary import NIL, BinaryTree
from repro.xpath.ast import Axis, Path, Pred, PredAnd, PredNot, PredOr, PredPath, Step
from repro.xpath.parser import parse_xpath


def stepwise_evaluate(
    query: Union[str, Path],
    index: TreeIndex,
    stats: Optional[EvalStats] = None,
) -> List[int]:
    """Selected node ids, document order (agrees with all other engines)."""
    path = parse_xpath(query) if isinstance(query, str) else query
    if not path.absolute:
        raise ValueError("stepwise_evaluate expects an absolute query")
    context = [-1]  # the document node
    result = _eval_steps(index, path.steps, context, stats)
    if stats is not None:
        stats.selected = len(result)
    return result


def eval_steps_from(
    index: TreeIndex,
    steps: tuple,
    context: List[int],
    stats: Optional[EvalStats] = None,
) -> List[int]:
    """Public step-at-a-time evaluation from an explicit context set.

    Used by the mixed forward/backward pipeline
    (:mod:`repro.engine.mixed`) for the segments after a backward step.
    """
    return _eval_steps(index, steps, context, stats)


def _eval_steps(
    index: TreeIndex,
    steps: tuple,
    context: List[int],
    stats: Optional[EvalStats],
) -> List[int]:
    current = context
    for step in steps:
        current = _eval_step(index, step, current, stats)
        if not current:
            break
    return current


def _eval_step(
    index: TreeIndex,
    step: Step,
    context: List[int],
    stats: Optional[EvalStats],
) -> List[int]:
    tree = index.tree
    label = None if step.test in ("*", "node()") else _test_label(step)
    if step.axis is Axis.DESCENDANT:
        if -1 in context:
            # descendant from the document node = every element incl. the
            # root: a full scan of the node table filtered by tag, exactly
            # what a top-level '//' costs a conventional engine.
            if stats is not None:
                stats.visited += tree.n
            if label is not None:
                lab = tree.label_ids.get(label)
                label_of = tree.label_of
                out = (
                    []
                    if lab is None
                    else [w for w in range(tree.n) if label_of[w] == lab]
                )
            else:
                out = list(range(tree.n))
        else:
            out = descendants_with_label(tree, index.labels, context, label, stats)
        if step.test == "*":
            out = [v for v in out if not tree.label(v).startswith(("@", "#"))]
    elif step.axis in (Axis.CHILD, Axis.ATTRIBUTE):
        out = []
        for v in context:
            children = [0] if v == -1 else list(tree.children(v))
            for c in children:
                if stats is not None:
                    stats.visited += 1
                if _child_matches(tree, step, label, c):
                    out.append(c)
        out = _sorted_dedup(out)
    elif step.axis is Axis.FOLLOWING_SIBLING:
        out = []
        for v in context:
            if v == -1:
                continue
            cur = tree.right[v]
            while cur != NIL:
                if stats is not None:
                    stats.visited += 1
                if label is None or tree.label(cur) == label:
                    out.append(cur)
                cur = tree.right[cur]
        out = _sorted_dedup(out)
    elif step.axis is Axis.PARENT:
        out = []
        for v in context:
            if v == -1:
                continue
            p = tree.parent[v]
            if p == NIL:
                continue
            if stats is not None:
                stats.visited += 1
            if label is None or tree.label(p) == label:
                out.append(p)
        out = _sorted_dedup(out)
    elif step.axis is Axis.ANCESTOR:
        out = []
        seen = set()
        for v in context:
            if v == -1:
                continue
            p = tree.parent[v]
            while p != NIL and p not in seen:
                seen.add(p)
                if stats is not None:
                    stats.visited += 1
                if label is None or tree.label(p) == label:
                    out.append(p)
                p = tree.parent[p]
        out = _sorted_dedup(out)
    else:  # pragma: no cover - exhaustive over Axis
        raise AssertionError(step.axis)
    if step.predicate is not None:
        out = [v for v in out if _eval_pred(index, step.predicate, v, stats)]
    return out


def _test_label(step: Step) -> str:
    if step.axis is Axis.ATTRIBUTE:
        return "@" + step.test
    if step.test == "text()":
        return "#text"
    return step.test


def _child_matches(tree: BinaryTree, step: Step, label: Optional[str], c: int) -> bool:
    name = tree.label(c)
    if step.axis is Axis.ATTRIBUTE:
        if step.test in ("*", "node()"):
            return name.startswith("@")
        return name == label
    if label is not None:
        return name == label
    if step.test == "*":
        return not name.startswith(("@", "#"))
    return True  # node()


def _sorted_dedup(nodes: List[int]) -> List[int]:
    if not nodes:
        return nodes
    nodes.sort()
    out = [nodes[0]]
    for v in nodes[1:]:
        if v != out[-1]:
            out.append(v)
    return out


def _eval_pred(
    index: TreeIndex, pred: Pred, v: int, stats: Optional[EvalStats]
) -> bool:
    if isinstance(pred, PredAnd):
        return _eval_pred(index, pred.left, v, stats) and _eval_pred(
            index, pred.right, v, stats
        )
    if isinstance(pred, PredOr):
        return _eval_pred(index, pred.left, v, stats) or _eval_pred(
            index, pred.right, v, stats
        )
    if isinstance(pred, PredNot):
        return not _eval_pred(index, pred.inner, v, stats)
    if isinstance(pred, PredPath):
        path = pred.path
        if path.absolute:
            return bool(_eval_steps(index, path.steps, [-1], stats))
        if not path.steps:
            return True
        return bool(_eval_steps(index, path.steps, [v], stats))
    raise AssertionError(pred)
