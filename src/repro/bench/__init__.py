"""Benchmark harness: one entry point per paper table/figure.

``python -m repro.bench.experiments all`` regenerates every table; the
``benchmarks/`` directory wraps the timing-sensitive parts in
pytest-benchmark so the series of Figure 4/5/8 appear as benchmark rows.
"""

from repro.bench.harness import Timer, format_table
from repro.bench.experiments import (
    ablation_storage,
    ablation_techniques,
    fig3_node_counts,
    fig4_times,
    fig5_hybrid,
    fig8_vs_stepwise,
)

__all__ = [
    "Timer",
    "format_table",
    "fig3_node_counts",
    "fig4_times",
    "fig5_hybrid",
    "fig8_vs_stepwise",
    "ablation_storage",
    "ablation_techniques",
]
