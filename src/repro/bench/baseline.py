"""Hot-path benchmark writer: wall-clock + counters vs the pre-PR baseline.

``python -m repro.bench.baseline [out.json]`` runs the fig-4 XMark query
mix (Q01-Q15) through prepared queries for the ``naive`` / ``optimized``
/ ``hybrid`` / ``vectorized`` strategies, records best-of-N wall-clock
plus the jumps/visited/memo counters per query, verifies every
strategy's selected-node set against the naive oracle, and emits
``BENCH_hotpath.json`` comparing against :data:`PRE_PR_BASELINE` -- the
same measurement taken on the pre-optimization revision (commit 87e1618)
on the same machine, interleaved with the post-change runs to cancel
drift.  The ``vectorized`` strategy post-dates that revision; it is
tracked against the baseline's ``optimized`` numbers (noted per record
as ``baseline_strategy``).

Two aggregates are reported per strategy and scale:

- ``sum_speedup``: total mix wall-clock old/new (dominated by the
  hardest two or three queries);
- ``geomean_speedup``: geometric mean of the per-query speedups, the
  standard aggregate for a query-suite (Figure 4 itself is a per-query
  plot).

Timings are machine-dependent and therefore *recorded, not asserted*;
the selected-node identity checks are hard assertions (the CI
``bench-smoke`` job runs them blocking on a small scale).
"""

from __future__ import annotations

import json
import math
import sys
import time
from typing import Dict, Iterable, Optional

from repro.counters import EvalStats
from repro.engine.api import Engine
from repro.index.jumping import TreeIndex
from repro.xmark.generator import XMarkGenerator
from repro.xmark.queries import QUERIES

STRATEGIES = ("naive", "optimized", "hybrid", "vectorized")

#: Per-query best-of-9 milliseconds of the pre-PR revision (87e1618) on
#: the benchmark machine, captured from a clean worktree of that commit
#: interleaved with post-change runs.  Keyed by XMark scale.
PRE_PR_BASELINE: Dict[str, dict] = {
    "meta": {
        "rev": "87e1618",
        "repeats": 9,
        "note": (
            "pre-PR measurement, same machine/session as the 'current' "
            "numbers of the committed BENCH_hotpath.json"
        ),
    },
    "0.5": {
        "nodes": 13576,
        "strategies": {
            "naive": {
                "Q01": 0.0312, "Q02": 3.8266, "Q03": 5.7617, "Q04": 0.9631,
                "Q05": 70.5791, "Q06": 27.7713, "Q07": 9.5732, "Q08": 88.9012,
                "Q09": 15.5184, "Q10": 60.8188, "Q11": 64.0503,
                "Q12": 95.9955, "Q13": 131.2659, "Q14": 98.2627,
                "Q15": 166.0686,
            },
            "optimized": {
                "Q01": 0.0611, "Q02": 1.1937, "Q03": 1.8393, "Q04": 0.6682,
                "Q05": 7.492, "Q06": 3.5548, "Q07": 2.3955, "Q08": 9.7958,
                "Q09": 2.502, "Q10": 0.0627, "Q11": 4.9684, "Q12": 5.1995,
                "Q13": 5.7758, "Q14": 5.4232, "Q15": 5.6345,
            },
            "hybrid": {
                "Q01": 0.0596, "Q02": 1.2035, "Q03": 1.8964, "Q04": 0.6647,
                "Q05": 0.2762, "Q06": 3.807, "Q07": 2.4036, "Q08": 10.0115,
                "Q09": 2.4857, "Q10": 0.061, "Q11": 5.1721, "Q12": 5.3629,
                "Q13": 5.8816, "Q14": 5.5079, "Q15": 5.5682,
            },
        },
    },
    "1.0": {
        "nodes": 26217,
        "strategies": {
            "naive": {
                "Q01": 0.0319, "Q02": 6.8907, "Q03": 11.0067, "Q04": 1.6998,
                "Q05": 137.0962, "Q06": 52.2424, "Q07": 18.6674,
                "Q08": 166.1266, "Q09": 32.1337, "Q10": 120.4237,
                "Q11": 124.3783, "Q12": 188.3521, "Q13": 257.673,
                "Q14": 186.6501, "Q15": 313.8141,
            },
            "optimized": {
                "Q01": 0.0615, "Q02": 1.7964, "Q03": 3.1882, "Q04": 1.0852,
                "Q05": 13.8356, "Q06": 6.9584, "Q07": 3.9866, "Q08": 16.9329,
                "Q09": 4.1476, "Q10": 0.0617, "Q11": 9.882, "Q12": 10.2896,
                "Q13": 10.3615, "Q14": 10.0436, "Q15": 9.8091,
            },
            "hybrid": {
                "Q01": 0.0593, "Q02": 1.8023, "Q03": 3.162, "Q04": 1.0771,
                "Q05": 0.5143, "Q06": 6.7857, "Q07": 4.1258, "Q08": 16.9006,
                "Q09": 4.3175, "Q10": 0.0618, "Q11": 9.6737, "Q12": 10.2165,
                "Q13": 10.9328, "Q14": 10.2927, "Q15": 9.9925,
            },
        },
    },
}


def capture(
    scale: float = 0.5,
    repeats: int = 9,
    strategies: Iterable[str] = STRATEGIES,
) -> dict:
    """Measure the fig-4 mix at one scale; assert oracle identity.

    Returns ``{"nodes": n, "strategies": {name: {qid: {"ms": ...,
    "visited": ..., "jumps": ..., "memo_hits": ..., "memo_entries": ...,
    "selected": ..., "oracle_match": True}}}}``.  Raises AssertionError
    if any strategy disagrees with the naive oracle on any query.
    """
    index = TreeIndex(XMarkGenerator(scale=scale, seed=42).tree())
    engine = Engine(index)
    oracle = {
        qid: tuple(engine.prepare(q, strategy="naive").execute().ids)
        for qid, q in QUERIES.items()
    }
    out: dict = {"nodes": index.tree.n, "strategies": {}}
    for strat in strategies:
        per: Dict[str, dict] = {}
        for qid, q in QUERIES.items():
            plan = engine.prepare(q, strategy=strat)
            result = plan.execute()  # warm the plan tables
            assert result.ids == oracle[qid], (
                f"{strat} disagrees with the naive oracle on {qid}"
            )
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                result = plan.execute()
                elapsed = time.perf_counter() - t0
                if elapsed < best:
                    best = elapsed
            stats: EvalStats = result.stats
            per[qid] = {
                "ms": round(best * 1000, 4),
                "visited": stats.visited,
                "jumps": stats.jumps,
                "memo_hits": stats.memo_hits,
                "memo_entries": stats.memo_entries,
                "selected": stats.selected,
                "oracle_match": True,
            }
        out["strategies"][strat] = per
    return out


def _aggregate(baseline: Dict[str, float], current: Dict[str, dict]) -> dict:
    """Per-query speedups plus the sum/geomean aggregates."""
    speedups = {
        qid: round(baseline[qid] / rec["ms"], 3)
        for qid, rec in current.items()
        if qid in baseline and rec["ms"] > 0
    }
    total_old = sum(baseline[qid] for qid in speedups)
    total_new = sum(current[qid]["ms"] for qid in speedups)
    geo = math.exp(
        sum(math.log(s) for s in speedups.values()) / len(speedups)
    )
    return {
        "per_query_speedup": speedups,
        "total_old_ms": round(total_old, 3),
        "total_new_ms": round(total_new, 3),
        "sum_speedup": round(total_old / total_new, 3),
        "geomean_speedup": round(geo, 3),
    }


def build_report(
    scales: Iterable[float] = (0.5, 1.0), repeats: int = 9
) -> dict:
    """Capture all scales and join against the recorded baseline."""
    report: dict = {
        "benchmark": "fig-4 XMark query mix (Q01-Q15), prepared execution",
        "baseline": PRE_PR_BASELINE["meta"],
        "scales": {},
    }
    for scale in scales:
        key = str(scale)
        cap = capture(scale=scale, repeats=repeats)
        entry: dict = {"nodes": cap["nodes"], "strategies": {}}
        base_scale = PRE_PR_BASELINE.get(key)
        for strat, per in cap["strategies"].items():
            rec: dict = {"per_query": per}
            if base_scale:
                # Strategies newer than the embedded pre-PR-2 baseline
                # (the set-at-a-time 'vectorized' engine) are tracked
                # against the baseline's 'optimized' numbers -- the
                # engine they are meant to beat.
                base_name = (
                    strat
                    if strat in base_scale["strategies"]
                    else "optimized"
                )
                rec.update(
                    _aggregate(base_scale["strategies"][base_name], per)
                )
                if base_name != strat:
                    rec["baseline_strategy"] = base_name
            entry["strategies"][strat] = rec
        report["scales"][key] = entry
    return report


def write(
    path: str = "BENCH_hotpath.json",
    scales: Iterable[float] = (0.5, 1.0),
    repeats: int = 9,
) -> dict:
    """Build the report and write it to ``path``; returns the report."""
    report = build_report(scales=scales, repeats=repeats)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return report


def main(argv: Optional[list] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    path = argv[0] if argv else "BENCH_hotpath.json"
    import os

    scales = tuple(
        float(s)
        for s in os.environ.get("REPRO_BENCH_SCALES", "0.5,1.0").split(",")
    )
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "9"))
    report = write(path, scales=scales, repeats=repeats)
    for key, entry in report["scales"].items():
        for strat, rec in entry["strategies"].items():
            if "geomean_speedup" in rec:
                print(
                    f"scale={key} {strat:10s} sum {rec['sum_speedup']:.2f}x "
                    f"geomean {rec['geomean_speedup']:.2f}x"
                )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
