"""Experiment drivers: one function per table/figure of the paper.

Each driver returns structured rows and can print the paper-shaped table;
``python -m repro.bench.experiments [fig3|fig4|fig5|fig8|ablation|all]``
runs them from the command line.  The pytest-benchmark wrappers in
``benchmarks/`` reuse these drivers for the timing series.

Reproduction target (see DESIGN.md §4): the *shape* of each result --
which strategy wins, by roughly what factor, where the crossovers fall --
not absolute milliseconds (the paper's substrate is OCaml/C++ on a 5.7M
node document; ours is pure Python at a configurable scale).
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.bench.harness import Timer, format_table
from repro.baselines.stepwise import stepwise_evaluate
from repro.counters import EvalStats
from repro.engine import memo, optimized, registry
from repro.engine.core import run_asta
from repro.engine.hybrid import hybrid_evaluate
from repro.index.jumping import TreeIndex
from repro.tree.binary import BinaryTree
from repro.xmark.configs import CONFIG_SPECS, make_config_tree
from repro.xmark.generator import XMarkGenerator
from repro.xmark.queries import HYBRID_QUERY, QUERIES
from repro.xpath.compiler import compile_xpath

DEFAULT_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
DEFAULT_FRACTION = float(os.environ.get("REPRO_BENCH_FRACTION", "0.1"))

# The Figure 4 series, pulled from the strategy registry: a snapshot
# taken at import time (plugins registered before this module is first
# imported are included if they carry an ``evaluator``).  The canonical
# four keep the paper's column order.
_FIG4_ORDER = ("naive", "jumping", "memo", "optimized")
ENGINES: Dict[str, Callable] = {
    name: registry.get_strategy(name).evaluator for name in _FIG4_ORDER
}
ENGINES.update(
    {
        strategy.name: strategy.evaluator
        for strategy in registry.all_strategies()
        if strategy.name not in ENGINES
        and getattr(strategy, "evaluator", None) is not None
    }
)


def build_index(scale: float = DEFAULT_SCALE, seed: int = 42) -> TreeIndex:
    """The shared XMark instance for fig3/fig4/fig8."""
    return TreeIndex(XMarkGenerator(scale=scale, seed=seed).tree())


# ---------------------------------------------------------------------------
# Figure 3: selected / visited node counts, memo entries
# ---------------------------------------------------------------------------


def fig3_node_counts(index: TreeIndex = None, scale: float = DEFAULT_SCALE):
    """Lines (1)-(5) of Figure 3 for Q01-Q15."""
    if index is None:
        index = build_index(scale)
    n = index.tree.n
    rows = []
    for qid, q in QUERIES.items():
        asta = compile_xpath(q)
        s_jump = EvalStats()
        optimized.evaluate(asta, index, s_jump)
        s_nojump = EvalStats()
        memo.evaluate(asta, index, s_nojump)
        rows.append(
            (
                qid,
                s_jump.selected,
                s_jump.visited,
                s_nojump.visited if s_nojump.visited < n else f"#nodes",
                s_jump.memo_entries,
                round(s_jump.ratio_selected_visited(), 1),
            )
        )
    return rows, n


def print_fig3(scale: float = DEFAULT_SCALE) -> str:
    rows, n = fig3_node_counts(scale=scale)
    text = format_table(
        ["query", "(1) selected", "(2) visited w/ jump", "(3) visited w/o jump",
         "(4) memo entries", "(5) ratio %"],
        rows,
        title=f"Figure 3 reproduction (XMark scale={scale}, #nodes={n})",
    )
    return text + f"\n#nodes = {n}"


# ---------------------------------------------------------------------------
# Figure 4: query time per evaluation strategy
# ---------------------------------------------------------------------------


def fig4_times(
    index: TreeIndex = None,
    scale: float = DEFAULT_SCALE,
    repeats: int = 3,
):
    """Per-query best-of-N times for the four strategies, in ms."""
    if index is None:
        index = build_index(scale)
    timer = Timer(repeats)
    rows = []
    for qid, q in QUERIES.items():
        asta = compile_xpath(q)
        times = {
            name: timer.best_ms(lambda fn=fn: fn(asta, index))
            for name, fn in ENGINES.items()
        }
        rows.append((qid, times["naive"], times["jumping"], times["memo"],
                     times["optimized"]))
    return rows


def print_fig4(scale: float = DEFAULT_SCALE) -> str:
    rows = fig4_times(scale=scale)
    return format_table(
        ["query", "naive ms", "jumping ms", "memo ms", "opt ms"],
        rows,
        title=f"Figure 4 reproduction (XMark scale={scale}, log-scale in paper)",
    )


# ---------------------------------------------------------------------------
# Figure 5: hybrid vs regular on configurations A-D
# ---------------------------------------------------------------------------


def fig5_hybrid(fraction: float = DEFAULT_FRACTION, repeats: int = 3):
    """Times and node counts for //listitem//keyword//emph on A-D."""
    timer = Timer(repeats)
    asta = compile_xpath(HYBRID_QUERY)
    rows = []
    for name in CONFIG_SPECS:
        index = TreeIndex(make_config_tree(name, fraction))
        s_h = EvalStats()
        _, sel_h = hybrid_evaluate(HYBRID_QUERY, index, s_h)
        s_r = EvalStats()
        _, sel_r = optimized.evaluate(asta, index, s_r)
        assert sel_h == sel_r, f"hybrid/regular disagree on config {name}"
        t_h = timer.best_ms(lambda: hybrid_evaluate(HYBRID_QUERY, index))
        t_r = timer.best_ms(lambda: optimized.evaluate(asta, index))
        rows.append(
            (name, len(sel_h), s_h.visited, s_r.visited, t_h, t_r)
        )
    return rows


def print_fig5(fraction: float = DEFAULT_FRACTION) -> str:
    rows = fig5_hybrid(fraction)
    return format_table(
        ["config", "(1) selected", "(2) visited hybrid",
         "(3) visited regular", "hybrid ms", "regular ms"],
        rows,
        title=f"Figure 5 reproduction (config fraction={fraction})",
    )


# ---------------------------------------------------------------------------
# Figure 8 (Appendix D): automata engine vs step-wise baseline
# ---------------------------------------------------------------------------


def fig8_vs_stepwise(
    index: TreeIndex = None,
    scale: float = DEFAULT_SCALE,
    repeats: int = 3,
):
    """Optimized engine vs the step-wise (MonetDB-family) baseline.

    Reports both wall time and *nodes touched* (automata: visited nodes;
    stepwise: scanned node-table tuples).  The touched-node columns are
    the interpreter-independent comparison; see EXPERIMENTS.md for why
    wall-clock who-wins can invert in pure Python on answer-accumulation
    queries.
    """
    if index is None:
        index = build_index(scale)
    timer = Timer(repeats)
    rows = []
    for qid, q in QUERIES.items():
        asta = compile_xpath(q)
        s_a, s_s = EvalStats(), EvalStats()
        sel_a = optimized.evaluate(asta, index, s_a)[1]
        sel_s = stepwise_evaluate(q, index, s_s)
        assert sel_a == sel_s, f"engines disagree on {qid}"
        t_a = timer.best_ms(lambda: optimized.evaluate(asta, index))
        t_s = timer.best_ms(lambda: stepwise_evaluate(q, index))
        rows.append((qid, t_a, t_s, s_a.visited, s_s.visited))
    return rows


def print_fig8(scale: float = DEFAULT_SCALE) -> str:
    rows = fig8_vs_stepwise(scale=scale)
    return format_table(
        ["query", "SXSI-style ms", "stepwise ms", "nodes touched (SXSI)",
         "tuples scanned (stepwise)"],
        rows,
        title=f"Figure 8 reproduction (XMark scale={scale})",
    )


# ---------------------------------------------------------------------------
# Ablations called out in DESIGN.md
# ---------------------------------------------------------------------------


def ablation_storage(scale: float = DEFAULT_SCALE):
    """Pointer-structure vs succinct-tree memory (Intro's 5-10x claim)."""
    from repro.index.succinct import SuccinctTree

    tree = XMarkGenerator(scale=scale).tree()
    succ = SuccinctTree.from_binary(tree)
    pointer = SuccinctTree.pointer_memory_bytes(tree)
    succinct = succ.memory_bytes()
    return {
        "nodes": tree.n,
        "pointer_bytes": pointer,
        "succinct_bytes": succinct,
        "blowup": round(pointer / succinct, 1),
    }


def ablation_techniques(
    index: TreeIndex = None, scale: float = DEFAULT_SCALE, repeats: int = 3
):
    """Technique grid: every (jumping, memo, ip) combination, summed over
    Q01-Q15 (the design-choice ablation for Section 4.4)."""
    if index is None:
        index = build_index(scale)
    timer = Timer(repeats)
    astas = {qid: compile_xpath(q) for qid, q in QUERIES.items()}
    rows = []
    for jmp in (False, True):
        for mem in (False, True):
            for ip in (False, True):
                def run_all():
                    for asta in astas.values():
                        run_asta(index=index, asta=asta, jumping=jmp, memo=mem, ip=ip)
                total = timer.best_ms(run_all)
                visited = 0
                for asta in astas.values():
                    s = EvalStats()
                    run_asta(index=index, asta=asta, jumping=jmp, memo=mem, ip=ip, stats=s)
                    visited += s.visited
                rows.append((jmp, mem, ip, total, visited))
    return rows


def print_ablation(scale: float = DEFAULT_SCALE) -> str:
    storage = ablation_storage(scale)
    grid = ablation_techniques(scale=scale)
    text = format_table(
        ["jumping", "memo", "ip", "total ms (Q01-Q15)", "visited"],
        grid,
        title=f"Technique ablation (XMark scale={scale})",
    )
    text += (
        f"\n\nStorage ablation: {storage['nodes']} nodes, "
        f"pointer={storage['pointer_bytes']}B, "
        f"succinct={storage['succinct_bytes']}B, "
        f"blow-up x{storage['blowup']} (paper claims 5-10x for pointers)"
    )
    return text


def hybrid_sweep(
    listitems: int = 8000,
    pivot_counts: Tuple[int, ...] = (4, 16, 64, 256, 1024, 4096, 8000),
    repeats: int = 3,
):
    """Parameter sweep: where does the hybrid strategy stop paying off?

    Fixes the number of ``listitem`` elements and varies the global
    ``keyword`` count (the pivot's selectivity) from rare to as-common-as-
    the-top-label, interpolating between Figure 5's configurations A and
    D.  Each keyword carries one ``emph`` (so answers grow with the
    pivot count).
    """
    from repro.tree.document import XMLDocument, XMLNode
    from repro.xmark.queries import HYBRID_QUERY

    timer = Timer(repeats)
    asta = compile_xpath(HYBRID_QUERY)
    rows = []
    for kw in pivot_counts:
        kw = min(kw, listitems)
        site = XMLNode("site")
        body = site.new_child("regions")
        for i in range(listitems):
            listitem = body.new_child("listitem")
            if i < kw:
                listitem.new_child("keyword").new_child("emph")
        index = TreeIndex(BinaryTree.from_document(XMLDocument(site)))
        s_h, s_r = EvalStats(), EvalStats()
        _, sel = hybrid_evaluate(HYBRID_QUERY, index, s_h)
        optimized.evaluate(asta, index, s_r)
        t_h = timer.best_ms(lambda: hybrid_evaluate(HYBRID_QUERY, index))
        t_r = timer.best_ms(lambda: optimized.evaluate(asta, index))
        rows.append((kw, len(sel), s_h.visited, s_r.visited, t_h, t_r))
    return rows


def print_hybrid_sweep() -> str:
    rows = hybrid_sweep()
    return format_table(
        ["#keyword", "selected", "visited hybrid", "visited regular",
         "hybrid ms", "regular ms"],
        rows,
        title="Hybrid pivot-selectivity sweep (A -> D interpolation)",
    )


def main(argv: List[str]) -> int:
    which = argv[0] if argv else "all"
    printers = {
        "fig3": print_fig3,
        "fig4": print_fig4,
        "fig5": print_fig5,
        "fig8": print_fig8,
        "ablation": print_ablation,
        "sweep": print_hybrid_sweep,
    }
    if which == "all":
        for name, printer in printers.items():
            print(printer())
            print()
    elif which in printers:
        print(printers[which]())
    else:
        print(f"unknown experiment {which!r}; choose from {sorted(printers)} or 'all'")
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
