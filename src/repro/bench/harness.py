"""Timing and table-formatting utilities for the experiment drivers."""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence


class Timer:
    """Best-of-N wall-clock timer (the paper takes the best of 5 runs)."""

    def __init__(self, repeats: int = 3) -> None:
        self.repeats = repeats

    def best_ms(self, fn: Callable[[], object]) -> float:
        """Best wall-clock time of ``fn()`` over the configured repeats."""
        best = float("inf")
        for _ in range(self.repeats):
            t0 = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best = elapsed
        return best * 1000.0


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Plain-text aligned table (the printable figure reproduction)."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "  "
    for i, row in enumerate(cells):
        lines.append(sep.join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append(sep.join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def time_prepared(
    engine,
    queries: Sequence[str],
    strategies: Optional[Sequence[str]] = None,
    repeats: int = 3,
) -> List[tuple]:
    """Time prepared queries: rows of (query, requested strategy, resolved
    strategy, best ms, selected count).

    ``engine`` is a :class:`repro.engine.api.Engine`; preparation (parse,
    compile, strategy resolution) happens once per row, outside the timed
    region -- this is the prepared-query analogue of the per-call drivers
    in :mod:`repro.bench.experiments`.
    """
    if strategies is None:
        from repro.engine import registry

        strategies = registry.strategy_names()
    timer = Timer(repeats)
    rows = []
    for query in queries:
        for requested in strategies:
            plan = engine.prepare(query, strategy=requested)
            result = plan.execute()
            best = timer.best_ms(plan.execute)
            rows.append(
                (query, requested, plan.strategy.name, best, len(result))
            )
    return rows
