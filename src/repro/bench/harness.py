"""Timing and table-formatting utilities for the experiment drivers."""

from __future__ import annotations

import time
from typing import Callable, List, Sequence


class Timer:
    """Best-of-N wall-clock timer (the paper takes the best of 5 runs)."""

    def __init__(self, repeats: int = 3) -> None:
        self.repeats = repeats

    def best_ms(self, fn: Callable[[], object]) -> float:
        """Best wall-clock time of ``fn()`` over the configured repeats."""
        best = float("inf")
        for _ in range(self.repeats):
            t0 = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best = elapsed
        return best * 1000.0


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Plain-text aligned table (the printable figure reproduction)."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "  "
    for i, row in enumerate(cells):
        lines.append(sep.join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append(sep.join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
