"""Command-line interface.

Examples::

    python -m repro.cli '//a//b' document.xml
    python -m repro.cli '//keyword' --xmark 0.5 --stats
    cat doc.xml | python -m repro.cli '/site/regions' --strategy hybrid
    python -m repro.cli '//a[b]' doc.xml --explain
    python -m repro.cli --list-strategies
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.engine import registry
from repro.engine.api import Engine
from repro.tree.parser import parse_xml
from repro.xmark.generator import XMarkGenerator


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "XPath evaluation via selecting tree automata "
            "(reproduction of Maneth & Nguyen, VLDB 2010)"
        ),
    )
    parser.add_argument(
        "query",
        nargs="?",
        help="an XPath query in the forward Core fragment",
    )
    parser.add_argument(
        "file",
        nargs="?",
        help="XML document (default: stdin, unless --xmark is given)",
    )
    parser.add_argument(
        "--xmark",
        type=float,
        metavar="SCALE",
        help="query a generated XMark document of the given scale instead of a file",
    )
    parser.add_argument(
        "--strategy",
        choices=registry.strategy_names(),
        default="optimized",
        help="evaluation strategy (default: optimized)",
    )
    parser.add_argument(
        "--list-strategies",
        action="store_true",
        help="list the registered evaluation strategies and exit",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="emit per-query evaluation statistics as JSON on stderr",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the compiled automaton and plan instead of evaluating",
    )
    parser.add_argument(
        "--count", action="store_true", help="print only the number of results"
    )
    parser.add_argument(
        "--labels", action="store_true", help="print element names next to node ids"
    )
    parser.add_argument(
        "--attributes",
        action="store_true",
        help="encode attributes as @name children (enables the attribute axis)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="seed for --xmark (default 42)"
    )
    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_strategies:
        for name, summary in registry.describe_strategies():
            print(f"{name:14s} {summary}", file=out)
        return 0

    if args.query is None:
        parser.error("query is required unless --list-strategies is given")

    if args.xmark is not None:
        doc = XMarkGenerator(scale=args.xmark, seed=args.seed).document()
    else:
        if args.file:
            with open(args.file, "r", encoding="utf-8") as f:
                text = f.read()
        else:
            text = sys.stdin.read()
        try:
            doc = parse_xml(text)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    try:
        engine = Engine(
            doc, strategy=args.strategy, encode_attributes=args.attributes
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    try:
        if args.explain:
            print(engine.explain(args.query), file=out)
            return 0
        plan = engine.prepare(args.query)
        result = plan.execute()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    ids = list(result.ids)
    if args.count:
        print(len(ids), file=out)
    elif args.labels:
        for v, label in zip(ids, engine.labels_of(ids)):
            print(f"{v}\t{label}", file=out)
    else:
        print(" ".join(map(str, ids)), file=out)

    if args.stats:
        snapshot = dict(
            result.stats.snapshot(),
            query=args.query,
            strategy=plan.strategy.name,
            nodes=len(engine.tree),
        )
        print(json.dumps(snapshot, sort_keys=True), file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
