"""Command-line interface.

Examples::

    python -m repro.cli '//a//b' document.xml
    python -m repro.cli '//keyword' --xmark 0.5 --stats
    cat doc.xml | python -m repro.cli '/site/regions' --strategy hybrid
    python -m repro.cli '//a[b]' doc.xml --explain
    python -m repro.cli --list-strategies
    python -m repro.cli plan explain '//listitem//keyword' --xmark 0.5
    python -m repro.cli batch --queries queries.txt --jobs 4 --xmark 0.5
    python -m repro.cli store build /var/xml/auctions --xmark 1.0
    python -m repro.cli store ls /var/xml/auctions
    python -m repro.cli store query '//keyword' /var/xml/auctions --count
    python -m repro.cli serve --store /var/xml/corpus --port 8726
    python -m repro.cli client query '//keyword' --port 8726 --count
    python -m repro.cli client stats --format table
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.engine import registry
from repro.engine.api import Engine
from repro.tree.binary import BinaryTree
from repro.tree.parser import parse_xml
from repro.xmark.generator import XMarkGenerator
from repro.xpath.parser import XPathSyntaxError


def _report_error(exc: Exception) -> None:
    """Structured stderr rendering: syntax errors point into the query."""
    if isinstance(exc, XPathSyntaxError):
        print(exc.describe(), file=sys.stderr)
    else:
        print(f"error: {exc}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "XPath evaluation via selecting tree automata "
            "(reproduction of Maneth & Nguyen, VLDB 2010)"
        ),
    )
    parser.add_argument(
        "query",
        nargs="?",
        help="an XPath query in the forward Core fragment",
    )
    parser.add_argument(
        "file",
        nargs="?",
        help="XML document (default: stdin, unless --xmark is given)",
    )
    parser.add_argument(
        "--xmark",
        type=float,
        metavar="SCALE",
        help="query a generated XMark document of the given scale instead of a file",
    )
    parser.add_argument(
        "--strategy",
        choices=registry.strategy_names(),
        default="auto",
        help="evaluation strategy (default: auto, the cost-based planner)",
    )
    parser.add_argument(
        "--list-strategies",
        action="store_true",
        help="list the registered evaluation strategies and exit",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="emit per-query evaluation statistics as JSON on stderr",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the compiled automaton and plan instead of evaluating",
    )
    parser.add_argument(
        "--count", action="store_true", help="print only the number of results"
    )
    parser.add_argument(
        "--labels", action="store_true", help="print element names next to node ids"
    )
    parser.add_argument(
        "--attributes",
        action="store_true",
        help="encode attributes as @name children (enables the attribute axis)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="seed for --xmark (default 42)"
    )
    return parser


def build_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description=(
            "run a batch of queries over one document on a sharded "
            "worker pool (repro.engine.parallel.QueryService)"
        ),
    )
    parser.add_argument(
        "file",
        nargs="?",
        help="XML document (default: stdin, unless --xmark is given)",
    )
    parser.add_argument(
        "--queries",
        required=True,
        metavar="FILE",
        help=(
            "query file: one query per line, optionally 'name<TAB>query'; "
            "blank lines and #-comments are skipped"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker count (default: the machine's CPU count)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="target shard count per document (default: 2 * jobs)",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process", "pool"),
        default="thread",
        help=(
            "worker pool flavour (default: thread; 'pool' is the "
            "persistent shared-memory worker pool)"
        ),
    )
    parser.add_argument(
        "--xmark",
        type=float,
        metavar="SCALE",
        help="query a generated XMark document instead of a file",
    )
    parser.add_argument(
        "--strategy",
        choices=registry.strategy_names(),
        default="auto",
        help="evaluation strategy (default: auto, the cost-based planner)",
    )
    parser.add_argument(
        "--count", action="store_true", help="emit result counts, not id lists"
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="emit aggregated per-query counters as JSON on stderr",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="seed for --xmark (default 42)"
    )
    return parser


def build_store_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro store",
        description=(
            "build, inspect and query persistent compiled-document "
            "bundles (repro.store); a built bundle reopens zero-copy "
            "via mmap -- no XML re-parsing on any later open"
        ),
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    build = sub.add_parser(
        "build", help="compile a document into a bundle directory"
    )
    build.add_argument("out", help="bundle directory to create/overwrite")
    build.add_argument(
        "file",
        nargs="?",
        help="XML document (default: stdin, unless --xmark is given)",
    )
    build.add_argument(
        "--xmark",
        type=float,
        metavar="SCALE",
        help="compile a generated XMark document of the given scale",
    )
    build.add_argument(
        "--seed", type=int, default=42, help="seed for --xmark (default 42)"
    )
    build.add_argument(
        "--text-content",
        action="store_true",
        help="fill --xmark text elements with character data",
    )
    build.add_argument(
        "--attributes",
        action="store_true",
        help="encode attributes as @name children",
    )
    build.add_argument(
        "--text",
        action="store_true",
        help="encode character data as #text children",
    )
    build.add_argument(
        "--legacy-tree",
        action="store_true",
        help=(
            "materialize the XMLNode tree before encoding instead of "
            "streaming events into the arrays (memory/time baseline)"
        ),
    )

    ls = sub.add_parser(
        "ls", help="show the header(s) of a bundle or corpus directory"
    )
    ls.add_argument("path", help="a bundle, or a directory of bundles")

    verify = sub.add_parser(
        "verify",
        help=(
            "integrity-check a bundle or corpus: fast mode checks "
            "header/manifest/file sizes, --deep recomputes per-array "
            "CRC32 digests"
        ),
    )
    verify.add_argument("path", help="a bundle, or a directory of bundles")
    verify.add_argument(
        "--deep",
        action="store_true",
        help="recompute every array file's CRC32 against the manifest",
    )
    verify.add_argument(
        "--json",
        action="store_true",
        help="emit the full verification report as JSON",
    )

    sync = sub.add_parser(
        "sync",
        help=(
            "incrementally mirror a directory of XML files into a "
            "corpus: content fingerprints decide the minimal "
            "add/replace/remove set; untouched documents are not "
            "rebuilt"
        ),
    )
    sync.add_argument("source", help="directory of *.xml source files")
    sync.add_argument("corpus", help="corpus directory (created if missing)")
    sync.add_argument(
        "--no-delete",
        action="store_true",
        help="keep corpus documents whose source file is gone",
    )
    sync.add_argument(
        "--compact",
        action="store_true",
        help="delete retired bundles with no live readers afterwards",
    )
    sync.add_argument(
        "--dry-run",
        action="store_true",
        help="report the plan without changing anything",
    )
    sync.add_argument(
        "--attributes",
        action="store_true",
        help="encode attributes as @name children",
    )
    sync.add_argument(
        "--text",
        action="store_true",
        help="encode character data as #text children",
    )

    log = sub.add_parser(
        "log", help="show a corpus' generation history (newest last)"
    )
    log.add_argument("path", help="the corpus directory")
    log.add_argument(
        "--limit",
        type=int,
        metavar="N",
        help="show only the most recent N entries",
    )
    log.add_argument(
        "--json", action="store_true", help="emit the raw history entries"
    )

    compact = sub.add_parser(
        "compact",
        help="delete retired bundles no open reader still maps",
    )
    compact.add_argument("path", help="the corpus directory")

    query = sub.add_parser("query", help="run a query on a reopened bundle")
    query.add_argument("query", help="an XPath query")
    query.add_argument("path", help="the bundle directory")
    query.add_argument(
        "--strategy",
        choices=registry.strategy_names(),
        default="auto",
        help="evaluation strategy (default: auto, the cost-based planner)",
    )
    query.add_argument(
        "--count", action="store_true", help="print only the number of results"
    )
    query.add_argument(
        "--labels",
        action="store_true",
        help="print element names next to node ids",
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="emit per-query evaluation statistics as JSON on stderr",
    )
    query.add_argument(
        "--no-mmap",
        action="store_true",
        help="read the arrays into memory instead of mapping them",
    )
    return parser


def _bundle_summary(path: str, header: dict) -> dict:
    import os

    size = 0
    for entry in os.listdir(path):
        full = os.path.join(path, entry)
        if os.path.isfile(full):
            size += os.path.getsize(full)
    summary = {
        "path": path,
        "version": header["version"],
        "nodes": header["n"],
        "labels": len(header["labels"]),
        "encoded_attributes": header["encoded_attributes"],
        "encoded_text": header["encoded_text"],
        "created": header["created"],
        "bytes": size,
    }
    # Build-time document statistics (absent from pre-planner bundles).
    stats = header.get("stats")
    if isinstance(stats, dict):
        for key, value in sorted(stats.items()):
            summary.setdefault(key, value)
    return summary


def store_main(argv: List[str], out) -> int:
    import os

    from repro.store import (
        StoreCorruptionError,
        StoreError,
        open_document,
        read_header,
        bundle_names,
        is_bundle,
        save_document,
        verify_document,
    )

    parser = build_store_parser()
    args = parser.parse_args(argv)

    if args.cmd == "build":
        if args.file and args.xmark is not None:
            parser.error("give either a document file or --xmark, not both")
        try:
            if args.xmark is not None:
                generator = XMarkGenerator(
                    scale=args.xmark,
                    seed=args.seed,
                    text_content=args.text_content,
                )
                source = {"kind": "xmark", "scale": args.xmark, "seed": args.seed}
                # The generator is an event source: save_document streams
                # it straight into the arrays (and reuses the BP bits).
                document = (
                    generator.document() if args.legacy_tree else generator
                )
                path = save_document(
                    document,
                    args.out,
                    encode_attributes=args.attributes,
                    encode_text=args.text,
                    source=source,
                )
            else:
                text = (
                    open(args.file, "r", encoding="utf-8").read()
                    if args.file
                    else sys.stdin.read()
                )
                source = {"kind": "xml", "file": args.file or "stdin"}
                document = parse_xml(text) if args.legacy_tree else text
                path = save_document(
                    document,
                    args.out,
                    encode_attributes=args.attributes,
                    encode_text=args.text,
                    source=source,
                )
        except (ValueError, StoreError, OSError) as exc:
            _report_error(exc)
            return 1
        print(
            json.dumps(
                _bundle_summary(path, read_header(path)), sort_keys=True
            ),
            file=out,
        )
        return 0

    if args.cmd == "sync":
        from repro.store import DocumentStore

        try:
            store = DocumentStore(args.corpus)
            report = store.sync(
                args.source,
                delete=not args.no_delete,
                compact=args.compact,
                dry_run=args.dry_run,
                encode_attributes=args.attributes,
                encode_text=args.text,
            )
        except (ValueError, StoreError, OSError) as exc:
            _report_error(exc)
            return 1
        print(json.dumps(report, sort_keys=True), file=out)
        return 0

    if args.cmd == "log":
        from repro.store import DocumentStore

        try:
            store = DocumentStore(args.path)
            entries = store.log(limit=args.limit)
            generation = store.generation()
        except (StoreError, OSError) as exc:
            _report_error(exc)
            return 1
        if args.json:
            print(
                json.dumps(
                    {"generation": generation, "history": entries},
                    sort_keys=True,
                ),
                file=out,
            )
        else:
            for entry in entries:
                name = entry.get("name", "")
                print(
                    f"g{entry['generation']:<6} {entry['op']:<8} "
                    f"{name:<20} {entry.get('time', '')}",
                    file=out,
                )
            print(f"generation {generation}", file=out)
        return 0

    if args.cmd == "compact":
        from repro.store import DocumentStore

        try:
            report = DocumentStore(args.path).compact()
        except (StoreError, OSError) as exc:
            _report_error(exc)
            return 1
        print(json.dumps(report, sort_keys=True), file=out)
        return 0

    if args.cmd == "ls":
        try:
            if is_bundle(args.path):
                bundles = [("", args.path)]
            else:
                bundles = [
                    (name, os.path.join(args.path, name))
                    for name in bundle_names(args.path)
                ]
            if not bundles:
                print(f"error: no bundles in {args.path!r}", file=sys.stderr)
                return 1
            listing = []
            for name, path in bundles:
                # An unreadable entry (junk from a crashed tool, a
                # mangled header) must not hide the healthy rest of the
                # corpus: warn and keep listing.
                try:
                    summary = _bundle_summary(path, read_header(path))
                except (StoreError, OSError) as exc:
                    print(
                        f"warning: skipping {path!r}: {exc}", file=sys.stderr
                    )
                    continue
                if name:
                    summary["name"] = name
                listing.append(summary)
            if not listing:
                print(
                    f"error: no readable bundles in {args.path!r}",
                    file=sys.stderr,
                )
                return 1
        except OSError as exc:
            _report_error(exc)
            return 1
        print(json.dumps(listing, sort_keys=True), file=out)
        return 0

    if args.cmd == "verify":
        if is_bundle(args.path):
            targets = [("", args.path)]
        else:
            targets = [
                (name, os.path.join(args.path, name))
                for name in bundle_names(args.path)
            ]
            if not targets:
                print(f"error: no bundles in {args.path!r}", file=sys.stderr)
                return 1
        reports = []
        failures = 0
        for name, path in targets:
            entry = {"name": name or os.path.basename(path.rstrip(os.sep))}
            try:
                entry.update(verify_document(path, deep=args.deep))
            except StoreError as exc:
                failures += 1
                entry.update(
                    path=path,
                    mode="deep" if args.deep else "fast",
                    ok=False,
                    error=(
                        exc.to_dict()
                        if isinstance(exc, StoreCorruptionError)
                        else {"reason": str(exc)}
                    ),
                )
            reports.append(entry)
        if args.json:
            print(json.dumps(reports, sort_keys=True), file=out)
        else:
            for entry in reports:
                if entry["ok"]:
                    size = sum(a["bytes"] for a in entry["arrays"].values())
                    detail = (
                        f"{len(entry['arrays'])} arrays, {size} bytes"
                        f"{'' if entry['checksums'] else ', no digests (v1)'}"
                    )
                    print(f"{entry['name'] or entry['path']}: ok "
                          f"[{entry['mode']}] ({detail})", file=out)
                else:
                    reason = entry["error"].get("reason", "unknown")
                    where = entry["error"].get("array")
                    at = f" array {where!r}" if where else ""
                    print(
                        f"{entry['name'] or entry['path']}: CORRUPT"
                        f"{at}: {reason}",
                        file=out,
                    )
        if failures:
            print(
                f"error: {failures} of {len(reports)} bundle(s) failed "
                f"{'deep' if args.deep else 'fast'} verification",
                file=sys.stderr,
            )
        return 1 if failures else 0

    # query
    try:
        stored = open_document(args.path, mmap=not args.no_mmap)
        engine = Engine(stored, strategy=args.strategy)
        plan = engine.prepare(args.query)
        result = plan.execute()
    except (ValueError, StoreError, OSError) as exc:
        _report_error(exc)
        return 1
    ids = list(result.ids)
    if args.count:
        print(len(ids), file=out)
    elif args.labels:
        for v, label in zip(ids, engine.labels_of(ids)):
            print(f"{v}\t{label}", file=out)
    else:
        print(" ".join(map(str, ids)), file=out)
    if args.stats:
        snapshot = dict(
            result.stats.snapshot(),
            query=args.query,
            strategy=plan.strategy.name,
            nodes=len(engine.tree),
            store=stored.path,
            caches=engine.cache_info(),
        )
        print(json.dumps(snapshot, sort_keys=True), file=sys.stderr)
    return 0


def build_plan_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro plan",
        description=(
            "inspect the cost-based planner: which strategy the 'auto' "
            "default picks for a query on a document, and why"
        ),
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    explain = sub.add_parser(
        "explain",
        help="show the chosen strategy, cost estimates, and features",
    )
    explain.add_argument("query", help="an XPath query")
    explain.add_argument(
        "file",
        nargs="?",
        help="XML document (default: stdin, unless --xmark is given)",
    )
    explain.add_argument(
        "--xmark",
        type=float,
        metavar="SCALE",
        help="plan against a generated XMark document instead of a file",
    )
    explain.add_argument(
        "--seed", type=int, default=42, help="seed for --xmark (default 42)"
    )
    explain.add_argument(
        "--attributes",
        action="store_true",
        help="encode attributes as @name children",
    )
    explain.add_argument(
        "--json",
        action="store_true",
        help="emit the planner verdict as JSON instead of text",
    )
    return parser


def plan_main(argv: List[str], out) -> int:
    from repro.engine.planner import plan_explain

    parser = build_plan_parser()
    args = parser.parse_args(argv)
    if args.file and args.xmark is not None:
        parser.error("give either a document file or --xmark, not both")
    try:
        if args.xmark is not None:
            generator = XMarkGenerator(scale=args.xmark, seed=args.seed)
            doc = (
                generator.document() if args.attributes else generator.tree()
            )
        elif args.file:
            with open(args.file, "r", encoding="utf-8") as f:
                doc = f.read()
        else:
            doc = sys.stdin.read()
        engine = Engine(
            doc, strategy="auto", encode_attributes=args.attributes
        )
        if args.json:
            print(
                json.dumps(plan_explain(engine, args.query), sort_keys=True),
                file=out,
            )
        else:
            print(engine.prepare(args.query).explain(), file=out)
    except (ValueError, OSError) as exc:
        _report_error(exc)
        return 1
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    from repro.serve.daemon import QUEUE_DEPTH, TIMEOUT_S

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "run the persistent query daemon over one or more store "
            "corpora (repro.serve); corpora mount via zero-copy mmap "
            "reopen and prepared-query/planner state stays hot across "
            "requests"
        ),
    )
    parser.add_argument(
        "--store",
        action="append",
        required=True,
        metavar="DIR",
        help="corpus directory of bundles (repeatable)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8726,
        help="bind port (0 picks a free one; default 8726)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="evaluation worker threads (default: CPU count)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=QUEUE_DEPTH,
        help=(
            "requests allowed to wait beyond the busy workers before "
            f"429 (default {QUEUE_DEPTH})"
        ),
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=TIMEOUT_S,
        help=f"per-request budget in seconds (default {TIMEOUT_S:g})",
    )
    parser.add_argument(
        "--strategy",
        choices=registry.strategy_names(),
        default="auto",
        help="evaluation strategy (default: auto, the cost-based planner)",
    )
    parser.add_argument(
        "--no-mmap",
        action="store_true",
        help="read the corpus arrays into memory instead of mapping them",
    )
    parser.add_argument(
        "--fail-threshold",
        type=int,
        default=None,
        metavar="N",
        help=(
            "quarantine a document after N consecutive failed "
            "evaluations, 0 disables (default: "
            "$REPRO_SERVE_FAIL_THRESHOLD or 3)"
        ),
    )
    parser.add_argument(
        "--reload-poll",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "poll each corpus' change stamp every SECONDS and hot-"
            "reload when it moves; 0 disables polling (default: "
            "$REPRO_SERVE_RELOAD_POLL or 0; POST /reload always works)"
        ),
    )
    parser.add_argument(
        "--pool-workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "persistent shared-memory worker processes; /batch (and "
            "/query on large documents) runs on the pool with warm "
            "caches and work stealing; 0 disables (default: "
            "$REPRO_SERVE_POOL_WORKERS or 0)"
        ),
    )
    parser.add_argument(
        "--pool-min-nodes",
        type=int,
        default=None,
        metavar="NODES",
        help=(
            "route single /query requests through the pool only for "
            "documents of at least NODES nodes (default: "
            "$REPRO_SERVE_POOL_MIN_NODES or 65536)"
        ),
    )
    return parser


def serve_main(argv: List[str], out) -> int:
    from repro.serve.daemon import QueryDaemon
    from repro.store import StoreError

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    try:
        daemon = QueryDaemon(
            args.store,
            strategy=args.strategy,
            workers=args.workers,
            queue_depth=args.queue_depth,
            timeout=args.timeout,
            host=args.host,
            port=args.port,
            mmap=not args.no_mmap,
            **(
                {"fail_threshold": args.fail_threshold}
                if args.fail_threshold is not None
                else {}
            ),
            **(
                {"reload_poll": args.reload_poll}
                if args.reload_poll is not None
                else {}
            ),
            **(
                {"pool_workers": args.pool_workers}
                if args.pool_workers is not None
                else {}
            ),
            **(
                {"pool_min_nodes": args.pool_min_nodes}
                if args.pool_min_nodes is not None
                else {}
            ),
        )
    except (ValueError, StoreError, OSError) as exc:
        _report_error(exc)
        return 1

    def ready(d: QueryDaemon) -> None:
        print(
            json.dumps(
                {
                    "serving": f"{d.host}:{d.port}",
                    "documents": d.documents(),
                    "strategy": d.workspace.strategy,
                    "workers": d.workers,
                    "pool_workers": d.pool_workers,
                    "admission_limit": d.admission_limit,
                    "timeout_s": d.timeout,
                },
                sort_keys=True,
            ),
            file=out,
            flush=True,
        )

    try:
        daemon.run(ready=ready)
    except OSError as exc:  # e.g. port already bound
        _report_error(exc)
        return 1
    return 0


def build_client_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro client",
        description="talk to a running repro serve daemon",
    )
    parser.add_argument("--host", default="127.0.0.1", help="daemon host")
    parser.add_argument(
        "--port", type=int, default=8726, help="daemon port (default 8726)"
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help=(
            "retry budget for connection errors and 429/503 responses "
            "(default 2; 0 fails fast)"
        ),
    )
    parser.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help=(
            "base retry backoff, doubled per attempt with seeded "
            "jitter (default 0.05)"
        ),
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    def add_format(p) -> None:
        p.add_argument(
            "--format",
            choices=("table", "csv", "json"),
            default="table",
            help="output rendering (default: table)",
        )

    query = sub.add_parser("query", help="run one query on the daemon")
    query.add_argument("query", help="an XPath query")
    query.add_argument("--document", help="mounted document name")
    query.add_argument(
        "--count", action="store_true", help="print only the result count"
    )
    query.add_argument(
        "--labels", action="store_true", help="include element names"
    )
    add_format(query)

    batch = sub.add_parser("batch", help="run a query file as one batch")
    batch.add_argument(
        "--queries",
        required=True,
        metavar="FILE",
        help="query file (same format as repro batch)",
    )
    batch.add_argument("--document", help="mounted document name")
    batch.add_argument(
        "--count", action="store_true", help="fetch counts, not id lists"
    )
    add_format(batch)

    explain = sub.add_parser(
        "explain", help="show the daemon's plan for a query"
    )
    explain.add_argument("query", help="an XPath query")
    explain.add_argument("--document", help="mounted document name")

    stats = sub.add_parser("stats", help="daemon counters and cache state")
    add_format(stats)

    sub.add_parser("health", help="liveness probe")

    sub.add_parser(
        "reload",
        help=(
            "ask the daemon to re-mount its corpora at the current "
            "generation (picks up repro store sync / add / replace / "
            "remove without a restart)"
        ),
    )
    return parser


def client_main(argv: List[str], out) -> int:
    from repro.serve.client import ServeClient, ServeError, format_rows

    parser = build_client_parser()
    args = parser.parse_args(argv)
    try:
        client = ServeClient(
            args.host, args.port, retries=args.retries, backoff_s=args.backoff
        )
    except ValueError as exc:
        _report_error(exc)
        return 1
    try:
        if args.cmd == "query":
            payload = client.query(
                args.query,
                document=args.document,
                count=args.count,
                labels=args.labels,
            )
            if args.format == "json":
                print(json.dumps(payload, sort_keys=True), file=out)
            elif args.count:
                print(payload["count"], file=out)
            else:
                ids = payload.get("ids", [])
                labels = payload.get("labels")
                if labels is not None:
                    rows = [
                        {"id": v, "label": l} for v, l in zip(ids, labels)
                    ]
                    print(format_rows(rows, ["id", "label"], args.format), file=out)
                else:
                    rows = [{"id": v} for v in ids]
                    print(format_rows(rows, ["id"], args.format), file=out)
        elif args.cmd == "batch":
            named = _read_queries(args.queries)
            if not named:
                print(f"error: no queries in {args.queries}", file=sys.stderr)
                return 1
            payload = client.batch(
                [q for _, q in named],
                document=args.document,
                count=args.count,
            )
            if args.format == "json":
                print(json.dumps(payload, sort_keys=True), file=out)
            else:
                rows = [
                    {
                        "name": name,
                        "query": entry["query"],
                        "count": entry["count"],
                        "strategy": entry["strategy"],
                        "warm": entry["warm"],
                        "ms": entry["timing_ms"]["total"],
                    }
                    for (name, _), entry in zip(named, payload["results"])
                ]
                print(
                    format_rows(
                        rows,
                        ["name", "query", "count", "strategy", "warm", "ms"],
                        args.format,
                    ),
                    file=out,
                )
        elif args.cmd == "explain":
            payload = client.explain(args.query, document=args.document)
            print(payload["text"], file=out)
        elif args.cmd == "stats":
            payload = client.stats()
            if args.format == "json":
                print(json.dumps(payload, sort_keys=True), file=out)
            else:
                rows = [
                    {"counter": key, "value": value}
                    for key, value in sorted(payload["counters"].items())
                ]
                rows.append(
                    {"counter": "uptime_s", "value": payload["uptime_s"]}
                )
                rows.append(
                    {
                        "counter": "in_flight",
                        "value": payload["admission"]["in_flight"],
                    }
                )
                print(
                    format_rows(rows, ["counter", "value"], args.format),
                    file=out,
                )
        elif args.cmd == "reload":
            print(json.dumps(client.reload(), sort_keys=True), file=out)
        else:  # health
            print(json.dumps(client.healthz(), sort_keys=True), file=out)
    except ServeError as exc:
        error = exc.payload.get("error", {})
        if error.get("kind") == "syntax":
            # Render the daemon's structured payload exactly as a local
            # parse failure: message, offset, caret.
            _report_error(
                XPathSyntaxError(
                    error.get("message", str(exc)),
                    offset=error.get("offset"),
                    query=error.get("query"),
                )
            )
        else:
            _report_error(exc)
        return 1
    except BrokenPipeError:
        raise  # handled once, in main()
    except (ConnectionError, ValueError, OSError) as exc:
        _report_error(exc)
        return 1
    finally:
        client.close()
    return 0


def _read_queries(path: str) -> List[tuple]:
    """Parse a batch query file into (name, query) pairs.

    Raises ``ValueError`` on duplicate names -- silently overwriting a
    result under a reused key would drop a query from the report.
    """
    out: List[tuple] = []
    seen = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            name, sep, rest = line.partition("\t")
            if sep and rest.strip():
                name, query = name.strip(), rest.strip()
            else:
                name, query = f"q{lineno}", line
            if name in seen:
                raise ValueError(
                    f"duplicate query name {name!r} on line {lineno} of "
                    f"{path} (first used on line {seen[name]})"
                )
            seen[name] = lineno
            out.append((name, query))
    return out


def batch_main(argv: List[str], out) -> int:
    from repro.engine.workspace import Workspace

    parser = build_batch_parser()
    args = parser.parse_args(argv)
    if args.file and args.xmark is not None:
        parser.error("give either a document file or --xmark, not both")
    try:
        named = _read_queries(args.queries)
    except ValueError as exc:
        _report_error(exc)
        return 1
    if not named:
        print(f"error: no queries in {args.queries}", file=sys.stderr)
        return 1

    if args.xmark is not None:
        doc = XMarkGenerator(scale=args.xmark, seed=args.seed).tree()
    else:
        text = (
            open(args.file, "r", encoding="utf-8").read()
            if args.file
            else sys.stdin.read()
        )
        try:
            # Streaming build: events append straight into the arrays.
            doc = BinaryTree.from_xml(text)
        except ValueError as exc:
            _report_error(exc)
            return 1

    workspace = Workspace(strategy=args.strategy)
    workspace.add("doc", doc)
    try:
        service = workspace.service(
            jobs=args.jobs, executor=args.executor, shards=args.shards
        )
        results = {}
        stats = {}
        for name, query in named:
            result = service.execute(query, "doc")
            results[name] = (
                len(result.ids) if args.count else list(result.ids)
            )
            stats[name] = dict(result.stats.snapshot(), query=query)
    except ValueError as exc:
        _report_error(exc)
        return 1
    finally:
        workspace.close()
    payload = {
        "document": args.file or ("xmark" if args.xmark is not None else "stdin"),
        "jobs": service.jobs,
        "shards": len(service.doc_shards("doc")),
        "executor": args.executor,
        "strategy": args.strategy,
        "results": results,
    }
    print(json.dumps(payload, sort_keys=True), file=out)
    if args.stats:
        print(json.dumps(stats, sort_keys=True), file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    try:
        return _main(argv, out)
    except BrokenPipeError:
        # Output piped into e.g. `head` that stopped reading: truncation
        # is the caller's intent, not a failure.  Point stdout at
        # /dev/null so the interpreter's exit-time flush stays quiet.
        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
        except (OSError, ValueError):
            pass
        return 0


def _main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "batch":
        return batch_main(argv[1:], out)
    if argv and argv[0] == "store":
        return store_main(argv[1:], out)
    if argv and argv[0] == "plan":
        return plan_main(argv[1:], out)
    if argv and argv[0] == "serve":
        return serve_main(argv[1:], out)
    if argv and argv[0] == "client":
        return client_main(argv[1:], out)
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_strategies:
        for name, summary in registry.describe_strategies():
            print(f"{name:14s} {summary}", file=out)
        return 0

    if args.query is None:
        parser.error("query is required unless --list-strategies is given")

    if args.xmark is not None:
        generator = XMarkGenerator(scale=args.xmark, seed=args.seed)
        # Streaming array build unless the encoding needs a document view.
        doc = generator.document() if args.attributes else generator.tree()
    else:
        # The raw text goes straight to the engine: scanner events feed
        # the array builder, with no intermediate XMLNode tree.
        if args.file:
            with open(args.file, "r", encoding="utf-8") as f:
                doc = f.read()
        else:
            doc = sys.stdin.read()

    try:
        engine = Engine(
            doc, strategy=args.strategy, encode_attributes=args.attributes
        )
    except ValueError as exc:
        _report_error(exc)
        return 1

    try:
        if args.explain:
            print(engine.explain(args.query), file=out)
            return 0
        plan = engine.prepare(args.query)
        result = plan.execute()
    except ValueError as exc:
        _report_error(exc)
        return 1

    ids = list(result.ids)
    if args.count:
        print(len(ids), file=out)
    elif args.labels:
        for v, label in zip(ids, engine.labels_of(ids)):
            print(f"{v}\t{label}", file=out)
    else:
        print(" ".join(map(str, ids)), file=out)

    if args.stats:
        snapshot = dict(
            result.stats.snapshot(),
            query=args.query,
            strategy=plan.strategy.name,
            nodes=len(engine.tree),
            caches=engine.cache_info(),
        )
        print(json.dumps(snapshot, sort_keys=True), file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
