"""Command-line interface.

Examples::

    python -m repro.cli '//a//b' document.xml
    python -m repro.cli '//keyword' --xmark 0.5 --stats
    cat doc.xml | python -m repro.cli '/site/regions' --strategy hybrid
    python -m repro.cli '//a[b]' doc.xml --explain
    python -m repro.cli --list-strategies
    python -m repro.cli batch --queries queries.txt --jobs 4 --xmark 0.5
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.engine import registry
from repro.engine.api import Engine
from repro.tree.parser import parse_xml
from repro.xmark.generator import XMarkGenerator


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "XPath evaluation via selecting tree automata "
            "(reproduction of Maneth & Nguyen, VLDB 2010)"
        ),
    )
    parser.add_argument(
        "query",
        nargs="?",
        help="an XPath query in the forward Core fragment",
    )
    parser.add_argument(
        "file",
        nargs="?",
        help="XML document (default: stdin, unless --xmark is given)",
    )
    parser.add_argument(
        "--xmark",
        type=float,
        metavar="SCALE",
        help="query a generated XMark document of the given scale instead of a file",
    )
    parser.add_argument(
        "--strategy",
        choices=registry.strategy_names(),
        default="optimized",
        help="evaluation strategy (default: optimized)",
    )
    parser.add_argument(
        "--list-strategies",
        action="store_true",
        help="list the registered evaluation strategies and exit",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="emit per-query evaluation statistics as JSON on stderr",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the compiled automaton and plan instead of evaluating",
    )
    parser.add_argument(
        "--count", action="store_true", help="print only the number of results"
    )
    parser.add_argument(
        "--labels", action="store_true", help="print element names next to node ids"
    )
    parser.add_argument(
        "--attributes",
        action="store_true",
        help="encode attributes as @name children (enables the attribute axis)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="seed for --xmark (default 42)"
    )
    return parser


def build_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description=(
            "run a batch of queries over one document on a sharded "
            "worker pool (repro.engine.parallel.QueryService)"
        ),
    )
    parser.add_argument(
        "file",
        nargs="?",
        help="XML document (default: stdin, unless --xmark is given)",
    )
    parser.add_argument(
        "--queries",
        required=True,
        metavar="FILE",
        help=(
            "query file: one query per line, optionally 'name<TAB>query'; "
            "blank lines and #-comments are skipped"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker count (default: the machine's CPU count)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="target shard count per document (default: 2 * jobs)",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="worker pool flavour (default: thread)",
    )
    parser.add_argument(
        "--xmark",
        type=float,
        metavar="SCALE",
        help="query a generated XMark document instead of a file",
    )
    parser.add_argument(
        "--strategy",
        choices=registry.strategy_names(),
        default="optimized",
        help="evaluation strategy (default: optimized)",
    )
    parser.add_argument(
        "--count", action="store_true", help="emit result counts, not id lists"
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="emit aggregated per-query counters as JSON on stderr",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="seed for --xmark (default 42)"
    )
    return parser


def _read_queries(path: str) -> List[tuple]:
    """Parse a batch query file into (name, query) pairs.

    Raises ``ValueError`` on duplicate names -- silently overwriting a
    result under a reused key would drop a query from the report.
    """
    out: List[tuple] = []
    seen = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            name, sep, rest = line.partition("\t")
            if sep and rest.strip():
                name, query = name.strip(), rest.strip()
            else:
                name, query = f"q{lineno}", line
            if name in seen:
                raise ValueError(
                    f"duplicate query name {name!r} on line {lineno} of "
                    f"{path} (first used on line {seen[name]})"
                )
            seen[name] = lineno
            out.append((name, query))
    return out


def batch_main(argv: List[str], out) -> int:
    from repro.engine.workspace import Workspace

    parser = build_batch_parser()
    args = parser.parse_args(argv)
    if args.file and args.xmark is not None:
        parser.error("give either a document file or --xmark, not both")
    try:
        named = _read_queries(args.queries)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not named:
        print(f"error: no queries in {args.queries}", file=sys.stderr)
        return 1

    if args.xmark is not None:
        doc = XMarkGenerator(scale=args.xmark, seed=args.seed).document()
    else:
        text = (
            open(args.file, "r", encoding="utf-8").read()
            if args.file
            else sys.stdin.read()
        )
        try:
            doc = parse_xml(text)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    workspace = Workspace(strategy=args.strategy)
    workspace.add("doc", doc)
    try:
        service = workspace.service(
            jobs=args.jobs, executor=args.executor, shards=args.shards
        )
        results = {}
        stats = {}
        for name, query in named:
            result = service.execute(query, "doc")
            results[name] = (
                len(result.ids) if args.count else list(result.ids)
            )
            stats[name] = dict(result.stats.snapshot(), query=query)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        workspace.close()
    payload = {
        "document": args.file or ("xmark" if args.xmark is not None else "stdin"),
        "jobs": service.jobs,
        "shards": len(service.doc_shards("doc")),
        "executor": args.executor,
        "strategy": args.strategy,
        "results": results,
    }
    print(json.dumps(payload, sort_keys=True), file=out)
    if args.stats:
        print(json.dumps(stats, sort_keys=True), file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "batch":
        return batch_main(argv[1:], out)
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_strategies:
        for name, summary in registry.describe_strategies():
            print(f"{name:14s} {summary}", file=out)
        return 0

    if args.query is None:
        parser.error("query is required unless --list-strategies is given")

    if args.xmark is not None:
        doc = XMarkGenerator(scale=args.xmark, seed=args.seed).document()
    else:
        if args.file:
            with open(args.file, "r", encoding="utf-8") as f:
                text = f.read()
        else:
            text = sys.stdin.read()
        try:
            doc = parse_xml(text)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    try:
        engine = Engine(
            doc, strategy=args.strategy, encode_attributes=args.attributes
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    try:
        if args.explain:
            print(engine.explain(args.query), file=out)
            return 0
        plan = engine.prepare(args.query)
        result = plan.execute()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    ids = list(result.ids)
    if args.count:
        print(len(ids), file=out)
    elif args.labels:
        for v, label in zip(ids, engine.labels_of(ids)):
            print(f"{v}\t{label}", file=out)
    else:
        print(" ".join(map(str, ids)), file=out)

    if args.stats:
        snapshot = dict(
            result.stats.snapshot(),
            query=args.query,
            strategy=plan.strategy.name,
            nodes=len(engine.tree),
        )
        print(json.dumps(snapshot, sort_keys=True), file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
