"""Command-line interface.

Examples::

    python -m repro.cli '//a//b' document.xml
    python -m repro.cli '//keyword' --xmark 0.5 --stats
    cat doc.xml | python -m repro.cli '/site/regions' --strategy hybrid
    python -m repro.cli '//a[b]' doc.xml --explain
    python -m repro.cli --list-strategies
    python -m repro.cli plan explain '//listitem//keyword' --xmark 0.5
    python -m repro.cli batch --queries queries.txt --jobs 4 --xmark 0.5
    python -m repro.cli store build /var/xml/auctions --xmark 1.0
    python -m repro.cli store ls /var/xml/auctions
    python -m repro.cli store query '//keyword' /var/xml/auctions --count
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.engine import registry
from repro.engine.api import Engine
from repro.tree.binary import BinaryTree
from repro.tree.parser import parse_xml
from repro.xmark.generator import XMarkGenerator


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "XPath evaluation via selecting tree automata "
            "(reproduction of Maneth & Nguyen, VLDB 2010)"
        ),
    )
    parser.add_argument(
        "query",
        nargs="?",
        help="an XPath query in the forward Core fragment",
    )
    parser.add_argument(
        "file",
        nargs="?",
        help="XML document (default: stdin, unless --xmark is given)",
    )
    parser.add_argument(
        "--xmark",
        type=float,
        metavar="SCALE",
        help="query a generated XMark document of the given scale instead of a file",
    )
    parser.add_argument(
        "--strategy",
        choices=registry.strategy_names(),
        default="auto",
        help="evaluation strategy (default: auto, the cost-based planner)",
    )
    parser.add_argument(
        "--list-strategies",
        action="store_true",
        help="list the registered evaluation strategies and exit",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="emit per-query evaluation statistics as JSON on stderr",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the compiled automaton and plan instead of evaluating",
    )
    parser.add_argument(
        "--count", action="store_true", help="print only the number of results"
    )
    parser.add_argument(
        "--labels", action="store_true", help="print element names next to node ids"
    )
    parser.add_argument(
        "--attributes",
        action="store_true",
        help="encode attributes as @name children (enables the attribute axis)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="seed for --xmark (default 42)"
    )
    return parser


def build_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description=(
            "run a batch of queries over one document on a sharded "
            "worker pool (repro.engine.parallel.QueryService)"
        ),
    )
    parser.add_argument(
        "file",
        nargs="?",
        help="XML document (default: stdin, unless --xmark is given)",
    )
    parser.add_argument(
        "--queries",
        required=True,
        metavar="FILE",
        help=(
            "query file: one query per line, optionally 'name<TAB>query'; "
            "blank lines and #-comments are skipped"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker count (default: the machine's CPU count)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="target shard count per document (default: 2 * jobs)",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="worker pool flavour (default: thread)",
    )
    parser.add_argument(
        "--xmark",
        type=float,
        metavar="SCALE",
        help="query a generated XMark document instead of a file",
    )
    parser.add_argument(
        "--strategy",
        choices=registry.strategy_names(),
        default="auto",
        help="evaluation strategy (default: auto, the cost-based planner)",
    )
    parser.add_argument(
        "--count", action="store_true", help="emit result counts, not id lists"
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="emit aggregated per-query counters as JSON on stderr",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="seed for --xmark (default 42)"
    )
    return parser


def build_store_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro store",
        description=(
            "build, inspect and query persistent compiled-document "
            "bundles (repro.store); a built bundle reopens zero-copy "
            "via mmap -- no XML re-parsing on any later open"
        ),
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    build = sub.add_parser(
        "build", help="compile a document into a bundle directory"
    )
    build.add_argument("out", help="bundle directory to create/overwrite")
    build.add_argument(
        "file",
        nargs="?",
        help="XML document (default: stdin, unless --xmark is given)",
    )
    build.add_argument(
        "--xmark",
        type=float,
        metavar="SCALE",
        help="compile a generated XMark document of the given scale",
    )
    build.add_argument(
        "--seed", type=int, default=42, help="seed for --xmark (default 42)"
    )
    build.add_argument(
        "--text-content",
        action="store_true",
        help="fill --xmark text elements with character data",
    )
    build.add_argument(
        "--attributes",
        action="store_true",
        help="encode attributes as @name children",
    )
    build.add_argument(
        "--text",
        action="store_true",
        help="encode character data as #text children",
    )
    build.add_argument(
        "--legacy-tree",
        action="store_true",
        help=(
            "materialize the XMLNode tree before encoding instead of "
            "streaming events into the arrays (memory/time baseline)"
        ),
    )

    ls = sub.add_parser(
        "ls", help="show the header(s) of a bundle or corpus directory"
    )
    ls.add_argument("path", help="a bundle, or a directory of bundles")

    query = sub.add_parser("query", help="run a query on a reopened bundle")
    query.add_argument("query", help="an XPath query")
    query.add_argument("path", help="the bundle directory")
    query.add_argument(
        "--strategy",
        choices=registry.strategy_names(),
        default="auto",
        help="evaluation strategy (default: auto, the cost-based planner)",
    )
    query.add_argument(
        "--count", action="store_true", help="print only the number of results"
    )
    query.add_argument(
        "--labels",
        action="store_true",
        help="print element names next to node ids",
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="emit per-query evaluation statistics as JSON on stderr",
    )
    query.add_argument(
        "--no-mmap",
        action="store_true",
        help="read the arrays into memory instead of mapping them",
    )
    return parser


def _bundle_summary(path: str, header: dict) -> dict:
    import os

    size = 0
    for entry in os.listdir(path):
        full = os.path.join(path, entry)
        if os.path.isfile(full):
            size += os.path.getsize(full)
    return {
        "path": path,
        "version": header["version"],
        "nodes": header["n"],
        "labels": len(header["labels"]),
        "encoded_attributes": header["encoded_attributes"],
        "encoded_text": header["encoded_text"],
        "created": header["created"],
        "bytes": size,
    }


def store_main(argv: List[str], out) -> int:
    import os

    from repro.store import (
        StoreError,
        open_document,
        read_header,
        bundle_names,
        is_bundle,
        save_document,
    )

    parser = build_store_parser()
    args = parser.parse_args(argv)

    if args.cmd == "build":
        if args.file and args.xmark is not None:
            parser.error("give either a document file or --xmark, not both")
        try:
            if args.xmark is not None:
                generator = XMarkGenerator(
                    scale=args.xmark,
                    seed=args.seed,
                    text_content=args.text_content,
                )
                source = {"kind": "xmark", "scale": args.xmark, "seed": args.seed}
                # The generator is an event source: save_document streams
                # it straight into the arrays (and reuses the BP bits).
                document = (
                    generator.document() if args.legacy_tree else generator
                )
                path = save_document(
                    document,
                    args.out,
                    encode_attributes=args.attributes,
                    encode_text=args.text,
                    source=source,
                )
            else:
                text = (
                    open(args.file, "r", encoding="utf-8").read()
                    if args.file
                    else sys.stdin.read()
                )
                source = {"kind": "xml", "file": args.file or "stdin"}
                document = parse_xml(text) if args.legacy_tree else text
                path = save_document(
                    document,
                    args.out,
                    encode_attributes=args.attributes,
                    encode_text=args.text,
                    source=source,
                )
        except (ValueError, StoreError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(
            json.dumps(
                _bundle_summary(path, read_header(path)), sort_keys=True
            ),
            file=out,
        )
        return 0

    if args.cmd == "ls":
        try:
            if is_bundle(args.path):
                bundles = [("", args.path)]
            else:
                bundles = [
                    (name, os.path.join(args.path, name))
                    for name in bundle_names(args.path)
                ]
            if not bundles:
                print(f"error: no bundles in {args.path!r}", file=sys.stderr)
                return 1
            listing = []
            for name, path in bundles:
                summary = _bundle_summary(path, read_header(path))
                if name:
                    summary["name"] = name
                listing.append(summary)
        except (StoreError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(listing, sort_keys=True), file=out)
        return 0

    # query
    try:
        stored = open_document(args.path, mmap=not args.no_mmap)
        engine = Engine(stored, strategy=args.strategy)
        plan = engine.prepare(args.query)
        result = plan.execute()
    except (ValueError, StoreError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    ids = list(result.ids)
    if args.count:
        print(len(ids), file=out)
    elif args.labels:
        for v, label in zip(ids, engine.labels_of(ids)):
            print(f"{v}\t{label}", file=out)
    else:
        print(" ".join(map(str, ids)), file=out)
    if args.stats:
        snapshot = dict(
            result.stats.snapshot(),
            query=args.query,
            strategy=plan.strategy.name,
            nodes=len(engine.tree),
            store=stored.path,
            caches=engine.cache_info(),
        )
        print(json.dumps(snapshot, sort_keys=True), file=sys.stderr)
    return 0


def build_plan_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro plan",
        description=(
            "inspect the cost-based planner: which strategy the 'auto' "
            "default picks for a query on a document, and why"
        ),
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    explain = sub.add_parser(
        "explain",
        help="show the chosen strategy, cost estimates, and features",
    )
    explain.add_argument("query", help="an XPath query")
    explain.add_argument(
        "file",
        nargs="?",
        help="XML document (default: stdin, unless --xmark is given)",
    )
    explain.add_argument(
        "--xmark",
        type=float,
        metavar="SCALE",
        help="plan against a generated XMark document instead of a file",
    )
    explain.add_argument(
        "--seed", type=int, default=42, help="seed for --xmark (default 42)"
    )
    explain.add_argument(
        "--attributes",
        action="store_true",
        help="encode attributes as @name children",
    )
    explain.add_argument(
        "--json",
        action="store_true",
        help="emit the planner verdict as JSON instead of text",
    )
    return parser


def plan_main(argv: List[str], out) -> int:
    from repro.engine.planner import plan_explain

    parser = build_plan_parser()
    args = parser.parse_args(argv)
    if args.file and args.xmark is not None:
        parser.error("give either a document file or --xmark, not both")
    try:
        if args.xmark is not None:
            generator = XMarkGenerator(scale=args.xmark, seed=args.seed)
            doc = (
                generator.document() if args.attributes else generator.tree()
            )
        elif args.file:
            with open(args.file, "r", encoding="utf-8") as f:
                doc = f.read()
        else:
            doc = sys.stdin.read()
        engine = Engine(
            doc, strategy="auto", encode_attributes=args.attributes
        )
        if args.json:
            print(
                json.dumps(plan_explain(engine, args.query), sort_keys=True),
                file=out,
            )
        else:
            print(engine.prepare(args.query).explain(), file=out)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _read_queries(path: str) -> List[tuple]:
    """Parse a batch query file into (name, query) pairs.

    Raises ``ValueError`` on duplicate names -- silently overwriting a
    result under a reused key would drop a query from the report.
    """
    out: List[tuple] = []
    seen = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            name, sep, rest = line.partition("\t")
            if sep and rest.strip():
                name, query = name.strip(), rest.strip()
            else:
                name, query = f"q{lineno}", line
            if name in seen:
                raise ValueError(
                    f"duplicate query name {name!r} on line {lineno} of "
                    f"{path} (first used on line {seen[name]})"
                )
            seen[name] = lineno
            out.append((name, query))
    return out


def batch_main(argv: List[str], out) -> int:
    from repro.engine.workspace import Workspace

    parser = build_batch_parser()
    args = parser.parse_args(argv)
    if args.file and args.xmark is not None:
        parser.error("give either a document file or --xmark, not both")
    try:
        named = _read_queries(args.queries)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not named:
        print(f"error: no queries in {args.queries}", file=sys.stderr)
        return 1

    if args.xmark is not None:
        doc = XMarkGenerator(scale=args.xmark, seed=args.seed).tree()
    else:
        text = (
            open(args.file, "r", encoding="utf-8").read()
            if args.file
            else sys.stdin.read()
        )
        try:
            # Streaming build: events append straight into the arrays.
            doc = BinaryTree.from_xml(text)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    workspace = Workspace(strategy=args.strategy)
    workspace.add("doc", doc)
    try:
        service = workspace.service(
            jobs=args.jobs, executor=args.executor, shards=args.shards
        )
        results = {}
        stats = {}
        for name, query in named:
            result = service.execute(query, "doc")
            results[name] = (
                len(result.ids) if args.count else list(result.ids)
            )
            stats[name] = dict(result.stats.snapshot(), query=query)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        workspace.close()
    payload = {
        "document": args.file or ("xmark" if args.xmark is not None else "stdin"),
        "jobs": service.jobs,
        "shards": len(service.doc_shards("doc")),
        "executor": args.executor,
        "strategy": args.strategy,
        "results": results,
    }
    print(json.dumps(payload, sort_keys=True), file=out)
    if args.stats:
        print(json.dumps(stats, sort_keys=True), file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "batch":
        return batch_main(argv[1:], out)
    if argv and argv[0] == "store":
        return store_main(argv[1:], out)
    if argv and argv[0] == "plan":
        return plan_main(argv[1:], out)
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_strategies:
        for name, summary in registry.describe_strategies():
            print(f"{name:14s} {summary}", file=out)
        return 0

    if args.query is None:
        parser.error("query is required unless --list-strategies is given")

    if args.xmark is not None:
        generator = XMarkGenerator(scale=args.xmark, seed=args.seed)
        # Streaming array build unless the encoding needs a document view.
        doc = generator.document() if args.attributes else generator.tree()
    else:
        # The raw text goes straight to the engine: scanner events feed
        # the array builder, with no intermediate XMLNode tree.
        if args.file:
            with open(args.file, "r", encoding="utf-8") as f:
                doc = f.read()
        else:
            doc = sys.stdin.read()

    try:
        engine = Engine(
            doc, strategy=args.strategy, encode_attributes=args.attributes
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    try:
        if args.explain:
            print(engine.explain(args.query), file=out)
            return 0
        plan = engine.prepare(args.query)
        result = plan.execute()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    ids = list(result.ids)
    if args.count:
        print(len(ids), file=out)
    elif args.labels:
        for v, label in zip(ids, engine.labels_of(ids)):
            print(f"{v}\t{label}", file=out)
    else:
        print(" ".join(map(str, ids)), file=out)

    if args.stats:
        snapshot = dict(
            result.stats.snapshot(),
            query=args.query,
            strategy=plan.strategy.name,
            nodes=len(engine.tree),
            caches=engine.cache_info(),
        )
        print(json.dumps(snapshot, sort_keys=True), file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
