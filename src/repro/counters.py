"""Shared instrumentation counters.

The paper's evaluation (Figure 3, Figure 5) is largely about *counting*:
selected nodes, nodes visited with and without jumping, memoization table
entries.  Every evaluator in this library threads an optional
:class:`EvalStats` through its run so the benchmarks can reproduce those
tables exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EvalStats:
    """Counters matching the rows of Figure 3 / Figure 5."""

    visited: int = 0
    """Nodes whose transitions were evaluated (Figure 3 lines 2/3)."""

    selected: int = 0
    """Nodes in the final answer (Figure 3 line 1)."""

    memo_entries: int = 0
    """Entries inserted into memoization tables (Figure 3 line 4)."""

    memo_hits: int = 0
    """Look-ups answered from the memo tables."""

    jumps: int = 0
    """Number of index jump operations (dt/ft/lt/rt) performed."""

    index_probes: int = 0
    """Binary-search probes inside the label index."""

    def visit(self, count: int = 1) -> None:
        self.visited += count

    def ratio_selected_visited(self) -> float:
        """Line (5) of Figure 3: selected / visited, in percent."""
        if self.visited == 0:
            return 0.0
        return 100.0 * self.selected / self.visited

    def merge(self, other: "EvalStats") -> None:
        self.visited += other.visited
        self.selected += other.selected
        self.memo_entries += other.memo_entries
        self.memo_hits += other.memo_hits
        self.jumps += other.jumps
        self.index_probes += other.index_probes

    def snapshot(self) -> dict:
        return {
            "visited": self.visited,
            "selected": self.selected,
            "memo_entries": self.memo_entries,
            "memo_hits": self.memo_hits,
            "jumps": self.jumps,
            "index_probes": self.index_probes,
        }
