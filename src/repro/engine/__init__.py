"""XPath evaluation engines (Sections 4.3-4.4, the Figure 4 series).

All engines share the stack machine of :mod:`repro.engine.core` and differ
only in which techniques are enabled:

==============  =======  ======  =====================
engine          jumping  memo    information propagation
==============  =======  ======  =====================
naive           no       no      no
jumping         yes      no      yes
memo            no       yes     no
optimized       yes      yes     yes
==============  =======  ======  =====================

(The paper's "Jumping Eval." series computes the top-down approximation
on the fly and pays the |Q| factor per visited node -- our jumping engine
does the same: no transition memoization, but the per-state-set jump plans
are cached, without which a Python implementation could not jump at all.)

:mod:`repro.engine.hybrid` implements the start-anywhere evaluation of
Section 4.4, :mod:`repro.engine.deterministic` the minimal-TDSTA pipeline
for predicate-free path queries (Section 3 end to end), and
:mod:`repro.engine.mixed` the forward-prefix + step-wise pipeline for
backward axes (Section 6).  Beyond the paper's engines,
:mod:`repro.engine.frontier` evaluates absolute forward paths
*set-at-a-time* over numpy node-id frontiers (the ``vectorized``
strategy), and :mod:`repro.engine.planner` is the cost-based ``auto``
planner that picks a strategy per query+document and adapts from
execution feedback.

Every engine doubles as a *strategy plugin*: it registers itself in
:mod:`repro.engine.registry`, declares which query fragment it supports,
and names its fallback.  :mod:`repro.engine.api` is the one-document
public interface on top (with :class:`~repro.engine.plan.PreparedQuery`
for parse/compile-once reuse), :mod:`repro.engine.workspace` the
multi-document batch interface, and :mod:`repro.engine.parallel` the
sharded worker-pool service that scales batches and broadcasts across
cores with results identical to serial execution.
"""

from repro.engine.api import Engine, evaluate
from repro.engine.core import run_asta
from repro.engine.hybrid import hybrid_evaluate
from repro.engine.parallel import QueryService, Shard, shard_document
from repro.engine.plan import CompiledQueryCache, ExecutionResult, PreparedQuery
from repro.engine.registry import (
    Strategy,
    StrategyBase,
    register_strategy,
    strategy_names,
)
from repro.engine.workspace import Workspace

__all__ = [
    "Engine",
    "evaluate",
    "run_asta",
    "hybrid_evaluate",
    "CompiledQueryCache",
    "ExecutionResult",
    "PreparedQuery",
    "Strategy",
    "StrategyBase",
    "register_strategy",
    "strategy_names",
    "Workspace",
    "QueryService",
    "Shard",
    "shard_document",
]
