"""XPath evaluation engines (Sections 4.3-4.4, the Figure 4 series).

All engines share the stack machine of :mod:`repro.engine.core` and differ
only in which techniques are enabled:

==============  =======  ======  =====================
engine          jumping  memo    information propagation
==============  =======  ======  =====================
naive           no       no      no
jumping         yes      no      yes
memo            no       yes     no
optimized       yes      yes     yes
==============  =======  ======  =====================

(The paper's "Jumping Eval." series computes the top-down approximation
on the fly and pays the |Q| factor per visited node -- our jumping engine
does the same: no transition memoization, but the per-state-set jump plans
are cached, without which a Python implementation could not jump at all.)

:mod:`repro.engine.hybrid` implements the start-anywhere evaluation of
Section 4.4, :mod:`repro.engine.deterministic` the minimal-TDSTA pipeline
for predicate-free path queries (Section 3 end to end), and
:mod:`repro.engine.api` the one-call public interface.
"""

from repro.engine.api import Engine, evaluate
from repro.engine.core import run_asta
from repro.engine.hybrid import hybrid_evaluate

__all__ = ["Engine", "evaluate", "run_asta", "hybrid_evaluate"]
