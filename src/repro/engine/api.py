"""One-call public API.

>>> from repro import parse_xml, Engine
>>> doc = parse_xml("<r><a><x/><b/></a><b/></r>")
>>> Engine(doc).select("//a/b")
[3]

:class:`Engine` owns the compiled-query cache and the tree index; repeated
queries against the same document reuse both.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.asta.automaton import ASTA
from repro.counters import EvalStats
from repro.engine import deterministic, hybrid, jumping, memo, naive, optimized
from repro.engine.core import run_asta
from repro.index.jumping import TreeIndex
from repro.tree.binary import BinaryTree
from repro.tree.document import XMLDocument
from repro.xpath.ast import Path
from repro.xpath.compiler import compile_xpath
from repro.xpath.parser import parse_xpath

_STRATEGIES = {
    "naive": naive.evaluate,
    "jumping": jumping.evaluate,
    "memo": memo.evaluate,
    "optimized": optimized.evaluate,
}


class Engine:
    """An XPath engine bound to one document.

    Parameters
    ----------
    document:
        An :class:`XMLDocument`, a :class:`BinaryTree`, or an XML string.
    strategy:
        One of ``naive | jumping | memo | optimized | hybrid |
        deterministic`` (default ``optimized``).  ``hybrid`` applies
        start-anywhere planning to descendant chains; ``deterministic``
        runs predicate-free path queries through the minimal-TDSTA
        pipeline of Section 3 (Algorithm B.1).  Both fall back to
        ``optimized`` for queries outside their fragment.
    """

    def __init__(
        self,
        document: Union[XMLDocument, BinaryTree, str],
        strategy: str = "optimized",
        encode_attributes: bool = False,
        encode_text: bool = False,
    ) -> None:
        if isinstance(document, str):
            from repro.tree.parser import parse_xml

            document = parse_xml(document)
        if isinstance(document, XMLDocument):
            tree = BinaryTree.from_document(
                document,
                encode_attributes=encode_attributes,
                encode_text=encode_text,
            )
        else:
            tree = document
        self.tree = tree
        self.index = TreeIndex(tree)
        self.set_strategy(strategy)
        self._compiled: Dict[str, ASTA] = {}
        self.last_stats: Optional[EvalStats] = None

    def set_strategy(self, strategy: str) -> None:
        extra = ("hybrid", "deterministic")
        if strategy not in _STRATEGIES and strategy not in extra:
            raise ValueError(
                f"unknown strategy {strategy!r}; choose from "
                f"{sorted(_STRATEGIES) + list(extra)}"
            )
        self.strategy = strategy

    def compile(self, query: Union[str, Path]) -> ASTA:
        """Compile (and cache) a query.

        On documents with encoded attribute/text labels, the ``*`` node
        test is resolved against the document's element-label inventory
        (see :func:`repro.xpath.compiler.compile_xpath`).
        """
        key = query if isinstance(query, str) else str(query)
        asta = self._compiled.get(key)
        if asta is None:
            asta = compile_xpath(query, wildcard_labels=self._wildcard_labels())
            self._compiled[key] = asta
        return asta

    def _wildcard_labels(self):
        encoded = any(l.startswith(("@", "#")) for l in self.tree.labels)
        if not encoded:
            return None  # Σ is exact for element-only documents
        return [l for l in self.tree.labels if not l.startswith(("@", "#"))]

    def select(self, query: Union[str, Path]) -> List[int]:
        """Node ids selected by ``query``, in document order."""
        return self.run(query)[1]

    def run(self, query: Union[str, Path]) -> Tuple[bool, List[int]]:
        """(accepted, selected ids); also records :attr:`last_stats`."""
        stats = EvalStats()
        path_obj = parse_xpath(query) if isinstance(query, str) else query
        if path_obj.has_backward_axes():
            # Backward axes are outside the forward theory (Section 6):
            # route through the mixed pipeline regardless of strategy.
            from repro.engine.mixed import mixed_evaluate

            result = mixed_evaluate(path_obj, self.index, stats)
            self.last_stats = stats
            return result
        if self.strategy == "hybrid":
            path = path_obj
            result = hybrid.hybrid_evaluate(path, self.index, stats)
        elif self.strategy == "deterministic":
            from repro.automata.pathdet import NotPathShaped

            path = parse_xpath(query) if isinstance(query, str) else query
            try:
                result = deterministic.evaluate(path, self.index, stats)
            except NotPathShaped:
                asta = self.compile(path)
                result = optimized.evaluate(asta, self.index, stats)
        else:
            asta = self.compile(query)
            result = _STRATEGIES[self.strategy](asta, self.index, stats)
        self.last_stats = stats
        return result

    def count(self, query: Union[str, Path]) -> int:
        """Number of selected nodes."""
        return len(self.select(query))

    def labels_of(self, ids: List[int]) -> List[str]:
        """Element names of a result list (convenience for examples)."""
        return [self.tree.label(v) for v in ids]

    def extract(self, query: Union[str, Path], indent: int = 0) -> List[str]:
        """Serialized XML subtrees of the selected nodes."""
        from repro.tree.serialize import subtree_to_xml

        return [
            subtree_to_xml(self.tree, v, indent=indent)
            for v in self.select(query)
        ]

    def explain(self, query: Union[str, Path]) -> str:
        """Describe the compiled automaton and (for hybrid) the plan."""
        path = parse_xpath(query) if isinstance(query, str) else query
        if path.has_backward_axes():
            from repro.engine.mixed import forward_prefix_length

            k = forward_prefix_length(path)
            lines = [
                "mixed pipeline (backward axes):",
                f"  forward segment: {k} step(s) on the optimized engine",
                f"  remainder: {len(path.steps) - k} step(s) step-at-a-time",
            ]
            if k:
                prefix = Path(path.absolute, path.steps[:k])
                lines.append(self.compile(prefix).describe())
            return "\n".join(lines)
        asta = self.compile(query)
        lines = [asta.describe()]
        if hybrid.is_hybrid_applicable(path):
            k = hybrid.plan_pivot(path, self.index)
            step = path.steps[k]
            lines.append(
                f"hybrid plan: pivot step {k + 1} ({step.test}, "
                f"count {self.index.count(step.test)})"
            )
        return "\n".join(lines)


def evaluate(
    document: Union[XMLDocument, BinaryTree, str],
    query: Union[str, Path],
    strategy: str = "optimized",
) -> List[int]:
    """One-shot convenience wrapper around :class:`Engine`."""
    return Engine(document, strategy).select(query)
