"""One-call public API.

>>> from repro import parse_xml, Engine
>>> doc = parse_xml("<r><a><x/><b/></a><b/></r>")
>>> Engine(doc).select("//a/b")
[3]

:class:`Engine` binds one document to a tree index, a compiled-query
cache, and a prepared-plan cache.  Strategy dispatch goes through the
plugin registry (:mod:`repro.engine.registry`): the engine asks the
registry to resolve the requested strategy against the parsed path, and
the resolved strategy's fallback chain -- not an if/elif ladder here --
decides what actually runs (backward axes end up on ``mixed``, non-chain
queries under ``hybrid`` on ``optimized``, and so on).

For query reuse and per-execution statistics use :meth:`Engine.prepare`;
for many documents sharing one compiled-query cache use
:class:`repro.engine.workspace.Workspace`.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple, Union

from repro.asta.automaton import ASTA
from repro.counters import EvalStats
from repro.engine import registry
from repro.engine.plan import CompiledQueryCache, ExecutionResult, PreparedQuery
from repro.index.jumping import TreeIndex
from repro.tree.binary import BinaryTree
from repro.tree.document import XMLDocument
from repro.xpath.ast import Path
from repro.xpath.parser import parse_xpath

#: Default LRU capacity of the per-engine prepared-plan cache.  A
#: long-lived service streaming distinct query strings past one document
#: would otherwise hold every plan (and its warmed tables) forever.
PLAN_CACHE_SIZE = int(os.environ.get("REPRO_PLAN_CACHE_SIZE", "256"))


class Engine:
    """An XPath engine bound to one document.

    Parameters
    ----------
    document:
        An :class:`XMLDocument`, a :class:`BinaryTree`, a prebuilt
        :class:`TreeIndex`, a reopened
        :class:`~repro.store.StoredDocument`, or an XML string.  A
        string is parsed *streaming* -- scanner events append directly
        into the binary tree's arrays
        (:mod:`repro.tree.builder`); no per-element ``XMLNode`` is
        allocated.  A stored document arrives with its index already
        compiled, so construction does no parsing at all.
    strategy:
        Any name registered in :mod:`repro.engine.registry` (built-ins:
        ``auto | naive | jumping | memo | optimized | hybrid |
        deterministic | mixed | vectorized``; default ``optimized``).
        Strategies that do not support a given query fall back along
        their declared chain -- ``hybrid`` applies start-anywhere
        planning to descendant chains and falls back to ``optimized``;
        ``deterministic`` runs predicate-free path queries through the
        minimal-TDSTA pipeline of Section 3 (Algorithm B.1);
        ``vectorized`` evaluates absolute forward paths set-at-a-time
        over numpy frontiers; ``auto`` is the cost-based planner that
        picks among them per query+document (the CLI's default); queries
        with backward axes always resolve to ``mixed`` (Section 6).
    cache:
        An optional shared :class:`CompiledQueryCache` (a
        :class:`~repro.engine.workspace.Workspace` passes one cache to
        all of its engines); by default each engine owns a private one.
    """

    def __init__(
        self,
        document: Union[XMLDocument, BinaryTree, TreeIndex, str],
        strategy: str = "optimized",
        encode_attributes: bool = False,
        encode_text: bool = False,
        cache: Optional[CompiledQueryCache] = None,
    ) -> None:
        # One shared dispatch with repro.store.save_document: XML text
        # and event sources stream through the array builder, stored
        # documents arrive with their compiled index, and encode flags
        # are rejected on already-encoded inputs.
        from repro.store.store import resolve_document

        self.index, _ = resolve_document(
            document, encode_attributes, encode_text
        )
        self.tree = self.index.tree
        self.cache = cache if cache is not None else CompiledQueryCache()
        self._plans: "OrderedDict[Tuple[str, str], PreparedQuery]" = (
            OrderedDict()
        )
        self._plan_hits = 0
        self._plan_misses = 0
        self._plan_evictions = 0
        self._plans_lock = threading.Lock()
        self._plans_generation = registry.generation()
        self.set_strategy(strategy)
        self.last_stats: Optional[EvalStats] = None

    def set_strategy(self, strategy: str) -> None:
        """Set the default strategy for subsequent queries (validated
        against the registry)."""
        registry.get_strategy(strategy)  # raises ValueError if unknown
        self.strategy = strategy

    def compile(
        self, query: Union[str, Path], *, parsed: Optional[Path] = None
    ) -> ASTA:
        """Compile (and cache) a query.

        On documents with encoded attribute/text labels, the ``*`` node
        test is resolved against the document's element-label inventory
        (see :func:`repro.xpath.compiler.compile_xpath`).
        """
        return self.cache.get(query, self._wildcard_labels(), parsed=parsed)

    def _wildcard_labels(self):
        encoded = any(l.startswith(("@", "#")) for l in self.tree.labels)
        if not encoded:
            return None  # Σ is exact for element-only documents
        return [l for l in self.tree.labels if not l.startswith(("@", "#"))]

    def prepare(
        self, query: Union[str, Path], strategy: Optional[str] = None
    ) -> PreparedQuery:
        """Parse, compile, and resolve ``query`` into a reusable plan.

        Plans are cached per ``(query, strategy)`` in an LRU bounded by
        :attr:`plan_cache_size`: re-preparing a query returns the same
        object while it stays cached (``execute()`` on it does zero
        re-parsing and zero re-compilation); a query evicted by
        ``plan_cache_size`` *distinct* newer ones is rebuilt -- and
        re-warms -- on its next prepare.  The plan cache is guarded by a
        lock so pool threads of a
        :class:`~repro.engine.parallel.QueryService` can prepare
        different queries on one shard engine concurrently without
        duplicating plans or racing the generation check.
        """
        name = strategy if strategy is not None else self.strategy
        with self._plans_lock:
            if self._plans_generation != registry.generation():
                # A strategy was (re/un)registered: cached resolutions and
                # strategy objects may be stale.
                self._plans.clear()
                self._plans_generation = registry.generation()
            key = (query if isinstance(query, str) else str(query), name)
            plan = self._plans.get(key)
            if plan is None:
                path = parse_xpath(query) if isinstance(query, str) else query
                resolved = registry.resolve(name, path)
                plan = PreparedQuery(self, query, path, resolved)
                self._plans[key] = plan
                self._plan_misses += 1
                while len(self._plans) > self.plan_cache_size:
                    self._plans.popitem(last=False)
                    self._plan_evictions += 1
            else:
                self._plans.move_to_end(key)
                self._plan_hits += 1
        return plan

    plan_cache_size: int = PLAN_CACHE_SIZE

    def refresh_planner(self, doc_stats: Optional[dict] = None) -> int:
        """Re-plan every cached ``auto`` plan against current statistics.

        The cost-based planner snapshots document statistics
        (``index.doc_stats``) at prepare time and, once a plan converges,
        freezes its delegate so executions bypass the planner entirely.
        When the underlying document's statistics change -- a daemon
        hot-reload swapping in a regenerated corpus, or a future
        in-place delta update -- frozen verdicts can go stale: a plan
        that froze on ``vectorized`` for a then-selective step keeps
        running it long after the step stopped being selective.

        ``doc_stats`` (optional) replaces :attr:`index.doc_stats` before
        re-planning; omit it to re-plan against whatever the index
        currently reports.  Returns the number of plans whose planner
        state was rebuilt (non-``auto`` plans are left untouched).
        """
        from repro.engine import planner as planner_mod

        if doc_stats is not None:
            self.index.doc_stats = dict(doc_stats)
        with self._plans_lock:
            plans = list(self._plans.values())
        return sum(1 for plan in plans if planner_mod.refresh_state(plan))

    def cache_info(self) -> dict:
        """Statistics of every bounded cache this engine touches.

        ``plans`` is the per-engine LRU of prepared plans, ``fused`` the
        label index's merged-union LRU, ``compiled`` the (possibly
        shared) compiled-automaton cache.  Surfaced by the CLI's
        ``--stats`` so a long-lived service can watch its memory-relevant
        caches stay bounded.
        """
        with self._plans_lock:
            plans = {
                "size": len(self._plans),
                "maxsize": self.plan_cache_size,
                "hits": self._plan_hits,
                "misses": self._plan_misses,
                "evictions": self._plan_evictions,
            }
        return {
            "plans": plans,
            "fused": self.index.labels.cache_info(),
            "compiled": self.cache.cache_info(),
        }

    def execute(self, query: Union[str, Path]) -> ExecutionResult:
        """Prepare (or reuse) a plan and execute it once."""
        return self.prepare(query).execute()

    def select(self, query: Union[str, Path]) -> List[int]:
        """Node ids selected by ``query``, in document order."""
        return self.run(query)[1]

    def run(self, query: Union[str, Path]) -> Tuple[bool, List[int]]:
        """(accepted, selected ids); also records :attr:`last_stats`.

        Legacy shape -- new code should prefer :meth:`execute`, whose
        :class:`ExecutionResult` carries its own immutable stats.
        """
        result = self.execute(query)
        self.last_stats = result.stats
        return result.accepted, list(result.ids)

    def count(self, query: Union[str, Path]) -> int:
        """Number of selected nodes."""
        return len(self.select(query))

    def labels_of(self, ids: List[int]) -> List[str]:
        """Element names of a result list (convenience for examples)."""
        return [self.tree.label(v) for v in ids]

    def extract(self, query: Union[str, Path], indent: int = 0) -> List[str]:
        """Serialized XML subtrees of the selected nodes."""
        from repro.tree.serialize import subtree_to_xml

        return [
            subtree_to_xml(self.tree, v, indent=indent)
            for v in self.select(query)
        ]

    def explain(self, query: Union[str, Path]) -> str:
        """Describe the resolved strategy, compiled automaton, and plan."""
        return self.prepare(query).explain()


def evaluate(
    document: Union[XMLDocument, BinaryTree, TreeIndex, str],
    query: Union[str, Path],
    strategy: str = "optimized",
) -> List[int]:
    """One-shot convenience wrapper around :class:`Engine`."""
    return Engine(document, strategy).select(query)
