"""The shared ASTA evaluation stack machine (Algorithm 4.1 + techniques).

One iterative bottom-up-with-top-down-preprocessing evaluator, with the
paper's three implementation techniques as independent switches:

- ``jumping``: restrict the traversal to the on-the-fly top-down
  approximation of relevant nodes (Definition 4.2 /
  :class:`~repro.asta.tda.TDAAnalysis`), replacing recursion into a child
  by recursion into the jumped-to nodes of its binary subtree;
- ``memo``: memoize the transition look-up (line 3 of Algorithm 4.1) and
  the formula evaluation (``eval_trans``) as templates keyed by
  ``(state set, label, Dom Γ1, Dom Γ2)``;
- ``ip`` (information propagation): after the first child returns,
  re-evaluate the pending formulas to narrow the state set sent into the
  second child -- this is what gives predicates their one-witness
  existential behaviour and re-enables jumping on the remaining siblings.

The machine is fully iterative (explicit work/value stacks): sibling
chains are right spines of the binary tree and would overflow Python's
recursion limit on any realistic document.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.asta.automaton import ASTA, ASTATransition
from repro.asta.formula import (
    Formula,
    down_states,
    partial_eval,
    pending_down2,
)
from repro.asta.semantics import (
    EMPTY_ROPE,
    ResultSet,
    concat,
    eval_transitions,
    leaf,
    root_answer,
)
from repro.asta.tda import TDAAnalysis
from repro.counters import EvalStats
from repro.index.jumping import OMEGA, TreeIndex
from repro.tree.binary import NIL

StateSet = FrozenSet[str]

# Work-stack frame tags.
_EVAL, _MID, _FINISH, _COMBINE, _LIT, _CHAIN = 0, 1, 2, 3, 4, 5

_EMPTY_SET: FrozenSet[str] = frozenset()


def run_asta(
    asta: ASTA,
    index: TreeIndex,
    *,
    jumping: bool = True,
    memo: bool = True,
    ip: bool = True,
    stats: Optional[EvalStats] = None,
) -> Tuple[bool, List[int]]:
    """Evaluate ``asta`` over ``index.tree``.

    Returns ``(accepted, selected node ids in document order)``.
    """
    tree = index.tree
    labels_arr = tree.labels
    label_of = tree.label_of
    left_arr, right_arr = tree.left, tree.right
    tda = TDAAnalysis(asta, tree) if jumping else None

    trans_memo: Dict[tuple, tuple] = {}
    ip_memo: Dict[tuple, FrozenSet[str]] = {}
    eval_memo: Dict[tuple, tuple] = {}

    marking = asta.is_marking

    def active_and_r1(states: StateSet, label: str) -> tuple:
        if memo:
            key = (states, label)
            hit = trans_memo.get(key)
            if hit is not None:
                if stats is not None:
                    stats.memo_hits += 1
                return hit
        active = asta.active(states, label)
        r1 = frozenset(
            q for t in active for i, q in down_states(t.formula) if i == 1
        )
        r2 = frozenset(
            q for t in active for i, q in down_states(t.formula) if i == 2
        )
        entry = (active, r1, r2)
        if memo:
            trans_memo[(states, label)] = entry
            if stats is not None:
                stats.memo_entries += 1
        return entry

    def narrowed_r2(
        states: StateSet, label: str, active, dom1: FrozenSet[str]
    ) -> FrozenSet[str]:
        if memo:
            key = (states, label, dom1)
            hit = ip_memo.get(key)
            if hit is not None:
                if stats is not None:
                    stats.memo_hits += 1
                return hit
        decided = set()
        for t in active:
            if partial_eval(t.formula, dom1) == 1:
                decided.add(t.q)
        r2: set = set()
        for t in active:
            pe = partial_eval(t.formula, dom1)
            if pe == 0:
                continue
            if marking(t.q):
                r2 |= _marks_down2(t.formula, dom1, marking)
                if pe == -1:
                    r2 |= pending_down2(t.formula, dom1)
                continue
            if pe == 1:
                continue
            if t.q in decided:
                continue  # truth settled elsewhere, no marks at stake
            r2 |= pending_down2(t.formula, dom1)
        out = frozenset(r2)
        if memo:
            ip_memo[(states, label, dom1)] = out
            if stats is not None:
                stats.memo_entries += 1
        return out

    def finish_gamma(
        states: StateSet,
        label: str,
        active,
        g1: ResultSet,
        g2: ResultSet,
        v: int,
        dom1: FrozenSet[str],
    ) -> ResultSet:
        if not memo:
            return eval_transitions(active, g1, g2, v)
        dom2 = _EMPTY_SET if not g2 else frozenset(g2)
        key = (states, label, dom1, dom2)
        template = eval_memo.get(key)
        if template is None:
            template = _make_template(active, dom1, dom2)
            eval_memo[key] = template
            if stats is not None:
                stats.memo_entries += 1
        elif stats is not None:
            stats.memo_hits += 1
        out: ResultSet = {}
        for q, selecting, sources in template:
            rope = leaf(v) if selecting else EMPTY_ROPE
            for side, q2 in sources:
                rope = concat(rope, (g1 if side == 1 else g2)[q2])
            prev = out.get(q)
            out[q] = rope if prev is None else concat(prev, rope)
        return out

    def child_frames(child: int, states: StateSet, work: list) -> None:
        """Push frames that leave exactly one Γ for this child on the
        value stack."""
        if child == NIL or not states:
            work.append((_LIT,))
            return
        if tda is None:
            work.append((_EVAL, child, states))
            return
        info = tda.info(states)
        label_rep = tda.atom_rep(labels_arr[label_of[child]])
        if info.jump_shape == "none" or info.per_atom[label_rep].skip_class == "ess":
            work.append((_EVAL, child, states))
            return
        ids = info.essential_ids
        if info.jump_shape == "both":
            if stats is not None:
                stats.jumps += 1
            first = index.dt(child, ids)
            if first == OMEGA:
                work.append((_LIT,))
                return
            # Lazy dt/ft chain: evaluate one target, merge, then decide
            # whether the chain may stop early (see SetInfo.early_stop).
            work.append((_CHAIN, child, states, first, ids, {}, info.early_stop))
            work.append((_EVAL, first, states))
            return
        if stats is not None:
            stats.jumps += 1
        hit = index.lt(child, ids) if info.jump_shape == "left" else index.rt(child, ids)
        if hit == OMEGA:
            work.append((_LIT,))
        else:
            work.append((_EVAL, hit, states))

    # ---- the machine ----------------------------------------------------------

    work: list = []
    values: List[ResultSet] = []
    top: StateSet = frozenset(asta.top)
    work.append((_EVAL, tree.root(), top))
    while work:
        frame = work.pop()
        tag = frame[0]
        if tag == _EVAL:
            _, v, states = frame
            if stats is not None:
                stats.visited += 1
            label = labels_arr[label_of[v]]
            active, r1, r2syn = active_and_r1(states, label)
            work.append((_MID, v, states, label, active, r2syn))
            child_frames(left_arr[v], r1, work)
        elif tag == _MID:
            _, v, states, label, active, r2syn = frame
            g1 = values.pop()
            dom1 = _EMPTY_SET if not g1 else frozenset(g1)
            if ip:
                r2 = narrowed_r2(states, label, active, dom1)
            else:
                r2 = r2syn
            work.append((_FINISH, v, states, label, active, g1, dom1))
            child_frames(right_arr[v], r2, work)
        elif tag == _FINISH:
            _, v, states, label, active, g1, dom1 = frame
            g2 = values.pop()
            values.append(finish_gamma(states, label, active, g1, g2, v, dom1))
        elif tag == _COMBINE:
            k = frame[1]
            merged: ResultSet = {}
            for g in values[-k:]:
                for q, rope in g.items():
                    prev = merged.get(q)
                    merged[q] = rope if prev is None else concat(prev, rope)
            del values[-k:]
            values.append(merged)
        elif tag == _CHAIN:
            _, anchor, states, last, ids, acc, early_stop = frame
            g = values.pop()
            if acc:
                # acc is owned exclusively by this chain: merge in place.
                merged = acc
                for q, rope in g.items():
                    prev = merged.get(q)
                    merged[q] = rope if prev is None else concat(prev, rope)
            else:
                merged = g
            if early_stop and len(merged) == len(states):
                # Every state already accepted and none is marking: later
                # targets cannot change the result (one-witness semantics).
                values.append(merged)
                continue
            if stats is not None:
                stats.jumps += 1
            nxt = index.ft(last, ids, anchor)
            if nxt == OMEGA:
                values.append(merged)
                continue
            work.append((_CHAIN, anchor, states, nxt, ids, merged, early_stop))
            work.append((_EVAL, nxt, states))
        else:  # _LIT
            values.append({})

    (gamma_root,) = values
    accepted, selected = root_answer(asta, gamma_root)
    if stats is not None:
        stats.selected = len(selected)
    return accepted, selected


def _marks_down2(f: Formula, dom1: FrozenSet[str], marking) -> set:
    """↓2 states that may carry marks through non-false, non-negated branches."""
    out: set = set()
    _marks_walk(f, dom1, marking, out)
    return out


def _marks_walk(f: Formula, dom1, marking, out: set) -> None:
    if partial_eval(f, dom1) == 0:
        return
    tag = f[0]
    if tag == "d":
        if f[1] == 2 and marking(f[2]):
            out.add(f[2])
    elif tag in ("&", "|"):
        _marks_walk(f[1], dom1, marking, out)
        _marks_walk(f[2], dom1, marking, out)
    # negation: marks never cross ¬ (Figure 7's "not" rule drops them)


def _make_template(active, dom1: FrozenSet[str], dom2: FrozenSet[str]) -> tuple:
    """Evaluate formulas once against the domains, record contributions."""
    rows = []
    for t in active:
        ok, sources = _formula_template(t.formula, dom1, dom2)
        if ok:
            rows.append((t.q, t.selecting, tuple(sources)))
    return tuple(rows)


def _formula_template(
    f: Formula, dom1: FrozenSet[str], dom2: FrozenSet[str]
) -> Tuple[bool, list]:
    """Figure 7's judgement with domains: (truth, contributing (side, q))."""
    tag = f[0]
    if tag == "T":
        return True, []
    if tag == "F":
        return False, []
    if tag == "d":
        side, q = f[1], f[2]
        if q in (dom1 if side == 1 else dom2):
            return True, [(side, q)]
        return False, []
    if tag == "!":
        b, _ = _formula_template(f[1], dom1, dom2)
        return (not b), []
    b1, s1 = _formula_template(f[1], dom1, dom2)
    if tag == "&":
        if not b1:
            return False, []
        b2, s2 = _formula_template(f[2], dom1, dom2)
        if not b2:
            return False, []
        return True, s1 + s2
    b2, s2 = _formula_template(f[2], dom1, dom2)
    if b1 and b2:
        return True, s1 + s2
    if b1:
        return True, s1
    if b2:
        return True, s2
    return False, []
