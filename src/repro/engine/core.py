"""The shared ASTA evaluation stack machine (Algorithm 4.1 + techniques).

One iterative bottom-up-with-top-down-preprocessing evaluator, with the
paper's three implementation techniques as independent switches:

- ``jumping``: restrict the traversal to the on-the-fly top-down
  approximation of relevant nodes (Definition 4.2 /
  :class:`~repro.asta.tda.TDAAnalysis`), replacing recursion into a child
  by recursion into the jumped-to nodes of its binary subtree;
- ``memo``: memoize the transition look-up (line 3 of Algorithm 4.1) and
  the formula evaluation (``eval_trans``) as templates keyed by
  ``(state set, label, Dom Γ1, Dom Γ2)``;
- ``ip`` (information propagation): after the first child returns,
  re-evaluate the pending formulas to narrow the state set sent into the
  second child -- this is what gives predicates their one-witness
  existential behaviour and re-enables jumping on the remaining siblings.

The machine is fully iterative (explicit work/value stacks): sibling
chains are right spines of the binary tree and would overflow Python's
recursion limit on any realistic document.

Two machines share the semantics:

- :func:`_run_interned` (``memo=True``) runs over the integer-keyed
  tables of :class:`~repro.engine.intern.RunTables`: state sets travel as
  dense sids, every memo is a flat int-tuple-keyed dict, leaves finish
  through a precomputed template without frames, and dt/ft chains walk
  the fused label array with one bisect per jump.  Pass ``tables=`` to
  reuse warmed tables across runs (prepared queries do this).
- :func:`_run_plain` (``memo=False``) pays the full per-node transition
  scan by design -- it is the "Naive"/"Jumping" series of Figure 4, and
  the oracle the interned machine is tested against.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.asta.automaton import ASTA
from repro.asta.formula import down_states, partial_eval, pending_down2
from repro.asta.semantics import (
    EMPTY_ROPE,
    ResultSet,
    concat,
    eval_transitions,
    root_answer,
)
from repro.asta.tda import TDAAnalysis
from repro.counters import EvalStats
from repro.engine.intern import (
    J_BOTH,
    J_LEFT,
    J_VISIT,
    RunTables,
    _formula_template,
    _make_template,
    _marks_down2,
    _marks_walk,
)
from repro.index.jumping import OMEGA, TreeIndex
from repro.tree.binary import NIL

StateSet = FrozenSet[str]

# Work-stack frame tags.
_EVAL, _MID, _FINISH, _LIT, _CHAIN, _FOLD = 0, 1, 2, 3, 4, 5

_EMPTY_SET: FrozenSet[str] = frozenset()

__all__ = [
    "run_asta",
    "_formula_template",
    "_make_template",
    "_marks_down2",
    "_marks_walk",
]


def run_asta(
    asta: ASTA,
    index: TreeIndex,
    *,
    jumping: bool = True,
    memo: bool = True,
    ip: bool = True,
    stats: Optional[EvalStats] = None,
    tables: Optional[RunTables] = None,
) -> Tuple[bool, List[int]]:
    """Evaluate ``asta`` over ``index.tree``.

    Returns ``(accepted, selected node ids in document order)``.  With
    ``memo=True`` an optional ``tables`` (a warmed
    :class:`~repro.engine.intern.RunTables` for the same automaton and
    index) carries memo entries across calls.
    """
    if memo:
        if (
            tables is None
            or tables.asta is not asta
            or tables.index is not index
            or (jumping and tables.tda is None)
        ):
            tables = RunTables(asta, index, jumping=jumping)
        return _run_interned(
            asta, index, tables, jumping=jumping, ip=ip, stats=stats
        )
    tda: Optional[TDAAnalysis] = None
    if jumping:
        if (
            tables is not None
            and tables.tda is not None
            and tables.asta is asta
            and tables.index is index
        ):
            tda = tables.tda
        else:
            tda = TDAAnalysis(asta, index.tree)
    return _run_plain(asta, index, tda=tda, ip=ip, stats=stats)


# ---------------------------------------------------------------------------
# The interned machine (memo=True)
# ---------------------------------------------------------------------------


def _run_interned(
    asta: ASTA,
    index: TreeIndex,
    tables: RunTables,
    *,
    jumping: bool,
    ip: bool,
    stats: Optional[EvalStats],
) -> Tuple[bool, List[int]]:
    """The integer-keyed machine.

    Every Γ travels as a ``(dict, dom_sid)`` pair: the interned id of its
    domain rides along, so memo keys are assembled from ints that are
    already in hand -- the machine never hashes a state set in steady
    state (template records carry their output domain, chain merges go
    through the memoized pairwise union).
    """
    tree = index.tree
    label_of = tree.label_of
    left_arr = tree.left
    right_arr = tree.right
    parent_arr = tree.parent
    xml_end = tree.xml_end
    n = tree.n

    trans_entry = tables.trans_entry
    narrow = tables.narrow
    template = tables.template
    jump_decision = tables.jump_decision
    union_sid = tables.union_sid
    trans_d = tables.trans
    ip_d = tables.ip
    tpl_d = tables.templates
    jump_d = tables.jump
    sweep_d = tables.sweep
    ip_bit = 1 if ip else 0
    LS = tables.label_shift
    SB = tables.SID_BITS

    entries_before = tables.entries()
    visited = 0
    jumps = 0
    memo_hits = 0

    work: list = []
    values: list = []
    work_append = work.append
    work_pop = work.pop
    values_append = values.append
    values_pop = values.pop

    # The helpers below either compute a Γ pair without any frames
    # (returning it) or push the frames that will eventually produce it
    # on the value stack (returning None).  Callers push their own
    # continuation frame *before* calling and pop it back off when the
    # child resolved immediately -- the helpers push nothing in that
    # case, so the continuation is still on top.

    def leaf_gamma(v: int, sid: int):
        """Γ of a binary leaf: the leaf template applied to ``v``."""
        nonlocal visited, memo_hits
        visited += 1
        lab = label_of[v]
        key1 = (sid << LS) | lab
        try:
            entry = trans_d[key1]
            memo_hits += 1
        except KeyError:
            entry = trans_entry(key1, sid, lab)
        g: ResultSet = {}
        for q, selecting in entry[3]:
            g[q] = ("v", v) if selecting else EMPTY_ROPE
        return (g, entry[5])

    def unwind(fold, gamma: ResultSet, dom_sid: int):
        """Apply the collected fold steps innermost-out: each step's Γ is
        its memoized template applied to its (already resolved) left Γ
        and the inner Γ.

        Runs of identical *diagonal* steps (no left domain, same state
        set and label, domain-preserving, every state feeding only
        itself) collapse into per-state rope chains -- the steady state
        of a ``//label`` sweep costs two tuple allocations per node
        instead of a Γ dict.
        """
        nonlocal memo_hits
        idx = len(fold) - 1
        while idx >= 0:
            v, key1, d1, g1d = fold[idx]
            ekey = (key1 << 32) | (d1 << SB) | dom_sid
            try:
                rows, out_sid, diag = tpl_d[ekey]
                memo_hits += 1
            except KeyError:
                rows, out_sid, diag = template(
                    ekey, trans_d[key1][0], d1, dom_sid
                )
            if diag is not None and d1 == 0 and out_sid == dom_sid:
                start = idx
                while (
                    start > 0
                    and fold[start - 1][1] == key1
                    and fold[start - 1][2] == 0
                ):
                    start -= 1
                if start < idx:
                    out: ResultSet = {}
                    for q, selects, carries in diag:
                        if carries:
                            rope = gamma[q]
                            if selects:
                                j = idx
                                while j >= start:
                                    vv = fold[j][0]
                                    rope = (
                                        ("+", ("v", vv), rope)
                                        if rope
                                        else ("v", vv)
                                    )
                                    j -= 1
                        else:
                            # Nothing carried: only the outermost (last
                            # applied) step's own contribution survives.
                            rope = (
                                ("v", fold[start][0])
                                if selects
                                else EMPTY_ROPE
                            )
                        out[q] = rope
                    gamma = out
                    memo_hits += idx - start  # the collapsed look-ups
                    idx = start - 1
                    continue
            out = {}
            for q, selecting, sources in rows:
                rope = ("v", v) if selecting else EMPTY_ROPE
                for side, q2 in sources:
                    r = g1d[q2] if side == 1 else gamma[q2]
                    if r:
                        rope = ("+", rope, r) if rope else r
                prev = out.get(q)
                if prev is None:
                    out[q] = rope
                elif rope:
                    out[q] = ("+", prev, rope) if prev else rope
            gamma = out
            dom_sid = out_sid
            idx -= 1
        return (gamma, dom_sid)

    def pure_resolve(child: int, csid: int):
        """Γ pair of a child context *without touching the work stack*:
        trivially-empty children, binary leaves, and sweepable chains
        resolve; anything that would need frames returns None (the
        caller falls back, nothing has been pushed or mutated)."""
        nonlocal visited, jumps, memo_hits
        if child < 0 or csid == 0:
            return ({}, 0)
        if jumping:
            clab = label_of[child]
            key1 = (csid << LS) | clab
            try:
                dec = jump_d[key1]
            except KeyError:
                dec = jump_decision(key1, csid, clab)
            kind = dec[0]
            if kind != J_VISIT:
                if kind == J_BOTH:
                    lst, size = dec[1], dec[2]
                    p = parent_arr[child]
                    hi = n if p < 0 else xml_end[p]
                    i = bisect_left(lst, child + 1)
                    if i == size or lst[i] >= hi:
                        jumps += 1
                        return ({}, 0)
                    res = sweep_try(i, hi, csid, lst, size)
                    if res is None:
                        # Abandoned: the generic fallback re-resolves (and
                        # re-counts) this jump, so do not count it here.
                        return None
                    flags, rope, D, count = res
                    visited += count
                    jumps += count + 1
                    memo_hits += count
                    return (
                        {q: (rope if a else EMPTY_ROPE) for q, a in flags},
                        D,
                    )
                labset = dec[1]
                step = left_arr if kind == J_LEFT else right_arr
                cur = step[child]
                while cur >= 0:
                    if label_of[cur] in labset:
                        child = cur
                        break
                    cur = step[cur]
                else:
                    jumps += 1
                    return ({}, 0)
                jumps += 1
        if left_arr[child] < 0 and right_arr[child] < 0:
            return leaf_gamma(child, csid)
        return None

    def fold_run(t: int, sid: int):
        """Evaluate internal node ``t`` as an iterative right fold.

        The dominant traversal shape under jumping is a right spine:
        each node's left child resolves without frames (NIL, empty down
        states, or a sweepable chain) and its right context resolves to
        at most one jump target, whose Γ feeds straight into the node's
        template.  This loop collects those steps -- each carrying its
        resolved left Γ -- without any frames, then :func:`unwind`
        applies the templates backwards.  The first step that needs the
        general machine suspends: the collected prefix waits behind a
        _FOLD frame and the rest evaluates normally.
        """
        nonlocal visited, jumps, memo_hits
        fold: list = []
        while True:
            lab = label_of[t]
            key1 = (sid << LS) | lab
            try:
                entry = trans_d[key1]
                memo_hits += 1
            except KeyError:
                entry = trans_entry(key1, sid, lab)
            lc = left_arr[t]
            if lc >= 0 and entry[1] != 0:
                g1p = pure_resolve(lc, entry[1])
                if g1p is None:
                    # The left child needs frames: generic evaluation.
                    if fold:
                        work_append((_FOLD, fold))
                    work_append((_EVAL, t, sid))
                    return None
                g1d, d1 = g1p
            else:
                g1d, d1 = None, 0
            visited += 1
            rc = right_arr[t]
            if d1:
                if ip:
                    ikey = (key1 << SB) | d1
                    try:
                        r2n = ip_d[ikey]
                        memo_hits += 1
                    except KeyError:
                        r2n = narrow(ikey, entry[0], d1)
                else:
                    r2n = entry[2]
            else:
                r2n = entry[4] if ip else entry[2]
            if rc >= 0 and r2n != 0:
                if jumping:
                    clab = label_of[rc]
                    dkey = (r2n << LS) | clab
                    try:
                        dec = jump_d[dkey]
                    except KeyError:
                        dec = jump_decision(dkey, r2n, clab)
                    kind = dec[0]
                    if kind == J_VISIT:
                        fold.append((t, key1, d1, g1d))
                        t, sid = rc, r2n
                        continue
                    if kind == J_BOTH:
                        jumps += 1
                        lst, size = dec[1], dec[2]
                        p = parent_arr[rc]
                        hi = n if p < 0 else xml_end[p]
                        i = bisect_left(lst, rc + 1)
                        if i < size and lst[i] < hi:
                            res = sweep_try(i, hi, r2n, lst, size)
                            if res is not None:
                                # The whole right context linearized:
                                # unwind the fold over the swept Γ.
                                flags2, rope2, D2, count = res
                                visited += count
                                jumps += count
                                memo_hits += count
                                g2 = {
                                    q2: (rope2 if a2 else EMPTY_ROPE)
                                    for q2, a2 in flags2
                                }
                                fold.append((t, key1, d1, g1d))
                                return unwind(fold, g2, D2)
                            t2 = lst[i]
                            # The advance past t2 is static: single target?
                            jumps += 1
                            p2 = parent_arr[t2]
                            lo = n if p2 < 0 else xml_end[p2]
                            ni = i + 1
                            if ni < size:
                                if lst[ni] < lo:
                                    ni = bisect_left(lst, lo, ni + 1)
                                if ni < size and lst[ni] >= hi:
                                    ni = size
                            if ni < size:
                                # Multi-target chain: needs merge frames.
                                fold.append((t, key1, d1, g1d))
                                work_append((_FOLD, fold))
                                work_append(
                                    (_CHAIN, hi, r2n, ni, dec, None, 0)
                                )
                                work_append((_EVAL, t2, r2n))
                                return None
                            fold.append((t, key1, d1, g1d))
                            t, sid = t2, r2n
                            continue
                    else:  # spine jump
                        jumps += 1
                        labset = dec[1]
                        step = left_arr if kind == J_LEFT else right_arr
                        cur = step[rc]
                        while cur >= 0:
                            if label_of[cur] in labset:
                                break
                            cur = step[cur]
                        if cur >= 0:
                            fold.append((t, key1, d1, g1d))
                            t, sid = cur, r2n
                            continue
                else:
                    fold.append((t, key1, d1, g1d))
                    t, sid = rc, r2n
                    continue
            # Terminal step: the right context contributes nothing.
            if d1 == 0:
                gamma: ResultSet = {}
                for q, selecting in entry[3]:
                    gamma[q] = ("v", t) if selecting else EMPTY_ROPE
                dsid = entry[5]
            else:
                ekey = (key1 << 32) | (d1 << SB)
                try:
                    rows, dsid, _diag = tpl_d[ekey]
                    memo_hits += 1
                except KeyError:
                    rows, dsid, _diag = template(ekey, entry[0], d1, 0)
                gamma = {}
                for q, selecting, sources in rows:
                    rope = ("v", t) if selecting else EMPTY_ROPE
                    for _side, q2 in sources:
                        r = g1d[q2]
                        if r:
                            rope = ("+", rope, r) if rope else r
                    prev = gamma.get(q)
                    if prev is None:
                        gamma[q] = rope
                    elif rope:
                        gamma[q] = ("+", prev, rope) if prev else rope
            return unwind(fold, gamma, dsid) if fold else (gamma, dsid)

    def build_sweep(skey: int, csid: int, lab: int):
        """Decide (once per state set, label, and ip flag) whether nodes
        of this kind linearize inside a sweep.

        The chain's state set may *decay once*: a node's narrowed right
        context either re-enters the same set (fixpoint) or a second set
        that is itself a fixpoint -- the one-witness narrowing of
        Q12-style predicate queries.  Requirements, per level: the left
        context contributes nothing (``r1 = ∅``) or re-enters that
        level's set, and all templates (child domains ∅ or the level's
        output domain) are *transparent* -- every source its own
        ↓1/↓2 input, domain preserved, consistent select flags; states
        only present in the first level must not select (the walk cannot
        tell levels apart).  Then a node's Γ is exactly 'own selection +
        everything below and to the right', so the whole region is the
        union of selections over the walked nodes.
        """
        try:
            entry = trans_d[skey]
        except KeyError:
            entry = trans_entry(skey, csid, lab)
        spec: object = False
        D1 = entry[5]
        r1_1 = entry[1]
        csid2 = entry[4] if ip else entry[2]

        def transparent(skey_t, active_t, D_t, dom1, dom2):
            """Per-state select flags when no template row mixes states
            (each state sources only its own inputs), else None."""
            ekey = (skey_t << 32) | (dom1 << SB) | dom2
            try:
                rec = tpl_d[ekey]
            except KeyError:
                rec = template(ekey, active_t, dom1, dom2)
            rows, out_sid, _diag = rec
            if out_sid != D_t:
                return None
            flags: dict = {}
            for q, selecting, sources in rows:
                flags[q] = flags.get(q, False) or selecting
                for _side, q2 in sources:
                    if q2 != q:
                        return None
            return tuple(sorted(flags.items()))

        while D1 != 0:  # single-pass block (break = not sweepable)
            if csid2 == csid:
                entry2, skey2, D2, r1_2 = entry, skey, D1, r1_1
            else:
                skey2 = (csid2 << LS) | lab
                try:
                    entry2 = trans_d[skey2]
                except KeyError:
                    entry2 = trans_entry(skey2, csid2, lab)
                D2 = entry2[5]
                r1_2 = entry2[1]
                r2n2 = entry2[4] if ip else entry2[2]
                if r2n2 != csid2 or D2 == 0:
                    break  # second level is not a fixpoint
            skip1, skip2 = r1_1 == 0, r1_2 == 0
            if skip1 != skip2:
                break
            if not skip1 and (r1_1 not in (csid, csid2) or r1_2 != csid2):
                break
            shapes2 = [
                transparent(skey2, entry2[0], D2, d1, d2)
                for d1 in (0, D2)
                for d2 in (0, D2)
            ]
            if shapes2[0] is None or any(s != shapes2[0] for s in shapes2):
                break
            flags2 = dict(shapes2[0])
            if csid2 == csid:
                flags1 = flags2
            else:
                dom1s = (0, D1) if r1_1 == csid else (0, D2)
                shapes1 = [
                    transparent(skey, entry[0], D1, d1, d2)
                    for d1 in dom1s
                    for d2 in (0, D2)
                ]
                if shapes1[0] is None or any(s != shapes1[0] for s in shapes1):
                    break
                flags1 = dict(shapes1[0])
                if (
                    any(q not in flags1 for q in flags2)
                    or any(
                        flags1[q] != flags2[q]
                        for q in flags1
                        if q in flags2
                    )
                    or any(flags1[q] for q in flags1 if q not in flags2)
                ):
                    break
            spec = (
                tuple(sorted(flags1.items())),
                any(flags1.values()),
                skip1,
                D1,
                csid2,
            )
            break
        sweep_d[(skey << 1) | ip_bit] = spec
        return spec

    def sweep_try(i: int, hi: int, csid: int, lst, size: int):
        """Walk the fused array linearly over a sweepable range.

        Returns ``(flags, rope, dom_sid, count)`` when every entry in
        ``[i, first >= hi)`` passes the per-node checks -- the chain's Γ
        is then the union of the swept selections, regardless of how the
        per-level dt/ft chains nest (transparent templates compose
        per-state, and rope order is irrelevant).  Returns None on the
        first non-conforming node; nothing has been mutated, so the
        caller falls back to the generic chain.
        """
        shift = csid << LS
        k = i
        w = lst[k]
        rope = EMPTY_ROPE
        count = 0
        flags = None
        D = -1
        csid2 = csid
        shift2 = shift
        while True:
            skey = shift | label_of[w]
            try:
                spec = sweep_d[(skey << 1) | ip_bit]
            except KeyError:
                spec = build_sweep(skey, csid, label_of[w])
            if not spec:
                return None
            if flags is None:
                flags, _a, _r1z, D, csid2 = spec
                shift2 = csid2 << LS
            elif spec[0] != flags or spec[3] != D or spec[4] != csid2:
                return None
            skip_to = w + 1
            lc = left_arr[w]
            if lc >= 0:
                if spec[2]:
                    # r1 = ∅: the left subtree is never evaluated, so its
                    # fused entries are not part of the run -- skip them.
                    skip_to = xml_end[w]
                else:
                    # The same (or decayed) set descends: nested entries
                    # are walked; the left label must stay inside the
                    # fused region under both levels.
                    clab = label_of[lc]
                    lkey = shift | clab
                    try:
                        dec1 = jump_d[lkey]
                    except KeyError:
                        dec1 = jump_decision(lkey, csid, clab)
                    if csid2 != csid:
                        lkey2 = shift2 | clab
                        try:
                            dec1b = jump_d[lkey2]
                        except KeyError:
                            dec1b = jump_decision(lkey2, csid2, clab)
                    else:
                        dec1b = dec1
                    k1 = dec1[0]
                    if k1 != dec1b[0]:
                        return None
                    if k1 == J_BOTH:
                        if dec1[1] is not lst or dec1b[1] is not lst:
                            return None
                    elif k1 == J_VISIT:
                        if k + 1 >= size or lst[k + 1] != lc:
                            return None
                    else:
                        return None
            rc = right_arr[w]
            if rc >= 0:
                # Both levels send the right context through csid2.
                clab = label_of[rc]
                rkey = shift2 | clab
                try:
                    dec2 = jump_d[rkey]
                except KeyError:
                    dec2 = jump_decision(rkey, csid2, clab)
                k2 = dec2[0]
                if k2 == J_BOTH:
                    if dec2[1] is not lst:
                        return None
                elif k2 == J_VISIT:
                    # rc itself is the continuation: the walk covers it
                    # only if it appears in the fused array (it is w's
                    # subtree end, so it follows any nested entries).
                    if k + 1 >= size or lst[k + 1] != rc:
                        j = bisect_left(lst, rc, k + 1)
                        if j == size or lst[j] != rc:
                            return None
                else:
                    return None
            if spec[1]:
                rope = ("+", rope, ("v", w)) if rope else ("v", w)
            count += 1
            k += 1
            if k == size:
                break
            w = lst[k]
            if w < skip_to:
                k = bisect_left(lst, skip_to, k + 1)
                if k == size:
                    break
                w = lst[k]
            if w >= hi:
                break
        return (flags, rope, D, count)

    def chain_run(merged: ResultSet, msid: int, i: int, hi: int, csid: int, dec):
        """Evaluate the dt/ft chain from fused index ``i``; leaf targets
        and foldable internal targets merge in place, anything else
        suspends into frames.

        A chain whose whole range is sweepable short-circuits through
        :func:`sweep_try` -- one linear walk of the fused array.

        The advance from a target is static (``bend`` does not depend on
        the target's evaluation), so it is computed up front; consecutive
        targets are usually adjacent in the fused array, so the advance
        first tries index ``i + 1`` and only bisects the remaining suffix
        when the next entry is still inside the current target's subtree.
        """
        nonlocal visited, jumps, memo_hits
        lst, size, early_stop, nstates = dec[1], dec[2], dec[3], dec[4]
        res = sweep_try(i, hi, csid, lst, size)
        if res is not None:
            flags, rope, D, count = res
            visited += count
            jumps += count
            memo_hits += count
            for q, a in flags:
                r = rope if a else EMPTY_ROPE
                prev = merged.get(q)
                if prev is None:
                    merged[q] = r
                elif r:
                    merged[q] = ("+", prev, r) if prev else r
            return (merged, union_sid(msid, D))
        target = lst[i]
        while True:
            # Advance first: where does the chain go after this target?
            jumps += 1
            p = parent_arr[target]
            lo = n if p < 0 else xml_end[p]
            ni = i + 1
            if ni < size:
                if lst[ni] < lo:
                    ni = bisect_left(lst, lo, ni + 1)
                if ni < size and lst[ni] >= hi:
                    ni = size
            if left_arr[target] < 0 and right_arr[target] < 0:
                visited += 1
                lab = label_of[target]
                key1 = (csid << LS) | lab
                try:
                    entry = trans_d[key1]
                    memo_hits += 1
                except KeyError:
                    entry = trans_entry(key1, csid, lab)
                for q, selecting in entry[3]:
                    rope = ("v", target) if selecting else EMPTY_ROPE
                    prev = merged.get(q)
                    if prev is None:
                        merged[q] = rope
                    elif rope:
                        merged[q] = ("+", prev, rope) if prev else rope
                msid = union_sid(msid, entry[5])
            else:
                if ni == size and not merged:
                    # Last target of a chain that merged nothing yet: its
                    # Γ is the chain's Γ, no merge frame needed.
                    return fold_run(target, csid)
                work_append((_CHAIN, hi, csid, ni, dec, merged, msid))
                g = fold_run(target, csid)
                if g is None:
                    return None
                work_pop()  # the _CHAIN just pushed; the fold pushed nothing
                gd, gsid = g
                if merged:
                    for q, rope in gd.items():
                        prev = merged.get(q)
                        if prev is None:
                            merged[q] = rope
                        elif rope:
                            merged[q] = ("+", prev, rope) if prev else rope
                    msid = union_sid(msid, gsid)
                else:
                    merged = gd
                    msid = gsid
            if ni == size:
                return (merged, msid)
            if early_stop and len(merged) == nstates:
                # Every state already accepted and none is marking: later
                # targets cannot change the result (one-witness
                # existential semantics).
                return (merged, msid)
            i = ni
            target = lst[i]

    def resolve_child(child: int, csid: int):
        """Γ pair of a child context, or None after pushing its frames."""
        nonlocal jumps
        if child < 0 or csid == 0:
            return ({}, 0)
        if jumping:
            clab = label_of[child]
            key1 = (csid << LS) | clab
            try:
                dec = jump_d[key1]
            except KeyError:
                dec = jump_decision(key1, csid, clab)
            kind = dec[0]
            if kind != J_VISIT:
                if kind == J_BOTH:
                    jumps += 1
                    lst, size = dec[1], dec[2]
                    p = parent_arr[child]
                    hi = n if p < 0 else xml_end[p]
                    i = bisect_left(lst, child + 1)
                    if i == size or lst[i] >= hi:
                        return ({}, 0)
                    return chain_run({}, 0, i, hi, csid, dec)
                jumps += 1
                labset = dec[1]
                step = left_arr if kind == J_LEFT else right_arr
                cur = step[child]
                while cur >= 0:
                    if label_of[cur] in labset:
                        child = cur
                        break
                    cur = step[cur]
                else:
                    return ({}, 0)
        if left_arr[child] < 0 and right_arr[child] < 0:
            return leaf_gamma(child, csid)
        return fold_run(child, csid)

    work_append((_EVAL, tree.root(), tables.top_sid))
    # The per-node pipeline (left child -> ip narrowing -> right child ->
    # template finish) is deliberately unrolled into the _EVAL/_MID/_FINISH
    # handlers below: the pipeline suspends into a frame wherever a child
    # needs real evaluation and the later handlers re-enter it mid-way, so
    # the shared tail blocks repeat rather than being factored into
    # functions (two calls per visited node is measurable here).
    while work:
        frame = work_pop()
        tag = frame[0]
        if tag == _EVAL:
            v, sid = frame[1], frame[2]
            visited += 1
            lab = label_of[v]
            key1 = (sid << LS) | lab
            try:
                entry = trans_d[key1]
                memo_hits += 1
            except KeyError:
                entry = trans_entry(key1, sid, lab)
            lc = left_arr[v]
            rc = right_arr[v]
            if lc < 0 and rc < 0:
                # Leaf reached as the root (children resolve elsewhere).
                g: ResultSet = {}
                for q, selecting in entry[3]:
                    g[q] = ("v", v) if selecting else EMPTY_ROPE
                values_append((g, entry[5]))
                continue
            active, r1_sid, r2_sid, r2n0 = (
                entry[0],
                entry[1],
                entry[2],
                entry[4],
            )
            if lc < 0 or r1_sid == 0:
                g1d: ResultSet = {}
                dom1_sid = 0
            else:
                work_append((_MID, v, key1, active, r2_sid, r2n0))
                g1 = resolve_child(lc, r1_sid)
                if g1 is None:
                    continue
                work_pop()  # the _MID just pushed; the child pushed nothing
                g1d, dom1_sid = g1
        elif tag == _MID:
            _, v, key1, active, r2_sid, r2n0 = frame
            rc = right_arr[v]
            g1d, dom1_sid = values_pop()
        elif tag == _FINISH:
            _, v, key1, active, g1d, dom1_sid = frame
            g2d, dom2_sid = values_pop()
            ekey = (key1 << 32) | (dom1_sid << SB) | dom2_sid
            try:
                tpl = tpl_d[ekey]
                memo_hits += 1
            except KeyError:
                tpl = template(ekey, active, dom1_sid, dom2_sid)
            out: ResultSet = {}
            for q, selecting, sources in tpl[0]:
                rope = ("v", v) if selecting else EMPTY_ROPE
                for side, q2 in sources:
                    r = g1d[q2] if side == 1 else g2d[q2]
                    if r:
                        rope = ("+", rope, r) if rope else r
                prev = out.get(q)
                if prev is None:
                    out[q] = rope
                elif rope:
                    out[q] = ("+", prev, rope) if prev else rope
            values_append((out, tpl[1]))
            continue
        elif tag == _FOLD:
            gd, gsid = values_pop()
            values_append(unwind(frame[1], gd, gsid))
            continue
        else:  # _CHAIN (carries the precomputed next fused index)
            _, hi, csid, ni, dec, merged, msid = frame
            gd, gsid = values_pop()
            if merged:
                for q, rope in gd.items():
                    prev = merged.get(q)
                    if prev is None:
                        merged[q] = rope
                    elif rope:
                        merged[q] = ("+", prev, rope) if prev else rope
                msid = union_sid(msid, gsid)
            else:
                merged = gd  # gd is exclusively owned: adopt, don't copy
                msid = gsid
            if ni == dec[2] or (dec[3] and len(merged) == dec[4]):
                values_append((merged, msid))
                continue
            g = chain_run(merged, msid, ni, hi, csid, dec)
            if g is not None:
                values_append(g)
            continue

        # -- between the children (entered from _EVAL or _MID) --------------
        if dom1_sid:
            if ip:
                ikey = (key1 << SB) | dom1_sid
                try:
                    r2n = ip_d[ikey]
                    memo_hits += 1
                except KeyError:
                    r2n = narrow(ikey, active, dom1_sid)
            else:
                r2n = r2_sid
        else:
            r2n = r2n0 if ip else r2_sid
        if rc < 0 or r2n == 0:
            g2d: ResultSet = {}
            dom2_sid = 0
        else:
            work_append((_FINISH, v, key1, active, g1d, dom1_sid))
            g2 = resolve_child(rc, r2n)
            if g2 is None:
                continue
            work_pop()  # the _FINISH just pushed; the child pushed nothing
            g2d, dom2_sid = g2

        # -- template finish (same block as the _FINISH handler) ------------
        ekey = (key1 << 32) | (dom1_sid << SB) | dom2_sid
        try:
            tpl = tpl_d[ekey]
            memo_hits += 1
        except KeyError:
            tpl = template(ekey, active, dom1_sid, dom2_sid)
        out = {}
        for q, selecting, sources in tpl[0]:
            rope = ("v", v) if selecting else EMPTY_ROPE
            for side, q2 in sources:
                r = g1d[q2] if side == 1 else g2d[q2]
                if r:
                    rope = ("+", rope, r) if rope else r
            prev = out.get(q)
            if prev is None:
                out[q] = rope
            elif rope:
                out[q] = ("+", prev, rope) if prev else rope
        values_append((out, tpl[1]))

    ((gamma_root, _root_sid),) = values
    accepted, selected = root_answer(asta, gamma_root)
    if stats is not None:
        stats.visited += visited
        stats.jumps += jumps
        stats.memo_hits += memo_hits
        stats.memo_entries += tables.entries() - entries_before
        stats.selected = len(selected)
    return accepted, selected




# ---------------------------------------------------------------------------
# The plain machine (memo=False): full per-node transition scan
# ---------------------------------------------------------------------------


def _run_plain(
    asta: ASTA,
    index: TreeIndex,
    *,
    tda: Optional[TDAAnalysis],
    ip: bool,
    stats: Optional[EvalStats],
) -> Tuple[bool, List[int]]:
    tree = index.tree
    labels_arr = tree.labels
    label_of = tree.label_of
    left_arr, right_arr = tree.left, tree.right

    marking = asta.is_marking

    def active_and_r1(states: StateSet, label: str) -> tuple:
        active = asta.active(states, label)
        r1 = frozenset(
            q for t in active for i, q in down_states(t.formula) if i == 1
        )
        r2 = frozenset(
            q for t in active for i, q in down_states(t.formula) if i == 2
        )
        return active, r1, r2

    def narrowed_r2(active, dom1: FrozenSet[str]) -> FrozenSet[str]:
        decided = set()
        for t in active:
            if partial_eval(t.formula, dom1) == 1:
                decided.add(t.q)
        r2: set = set()
        for t in active:
            pe = partial_eval(t.formula, dom1)
            if pe == 0:
                continue
            if marking(t.q):
                r2 |= _marks_down2(t.formula, dom1, marking)
                if pe == -1:
                    r2 |= pending_down2(t.formula, dom1)
                continue
            if pe == 1:
                continue
            if t.q in decided:
                continue  # truth settled elsewhere, no marks at stake
            r2 |= pending_down2(t.formula, dom1)
        return frozenset(r2)

    def child_frames(child: int, states: StateSet, work: list) -> None:
        """Push frames that leave exactly one Γ for this child on the
        value stack."""
        if child == NIL or not states:
            work.append((_LIT,))
            return
        if tda is None:
            work.append((_EVAL, child, states))
            return
        info = tda.info(states)
        label_rep = tda.atom_rep(labels_arr[label_of[child]])
        if info.jump_shape == "none" or info.per_atom[label_rep].skip_class == "ess":
            work.append((_EVAL, child, states))
            return
        ids = info.essential_ids
        if info.jump_shape == "both":
            if stats is not None:
                stats.jumps += 1
            fused = info.fused
            if fused is None:
                fused = info.fused = index.fused(ids)
            first = fused.first_at_or_after(child + 1, tree.bend(child))
            if first < 0:
                work.append((_LIT,))
                return
            # Lazy dt/ft chain: evaluate one target, merge, then decide
            # whether the chain may stop early (see SetInfo.early_stop).
            work.append((_CHAIN, child, states, first, fused, {}, info.early_stop))
            work.append((_EVAL, first, states))
            return
        if stats is not None:
            stats.jumps += 1
        hit = index.lt(child, ids) if info.jump_shape == "left" else index.rt(child, ids)
        if hit == OMEGA:
            work.append((_LIT,))
        else:
            work.append((_EVAL, hit, states))

    # ---- the machine ------------------------------------------------------

    work: list = []
    values: List[ResultSet] = []
    top: StateSet = frozenset(asta.top)
    work.append((_EVAL, tree.root(), top))
    while work:
        frame = work.pop()
        tag = frame[0]
        if tag == _EVAL:
            _, v, states = frame
            if stats is not None:
                stats.visited += 1
            label = labels_arr[label_of[v]]
            active, r1, r2syn = active_and_r1(states, label)
            work.append((_MID, v, states, label, active, r2syn))
            child_frames(left_arr[v], r1, work)
        elif tag == _MID:
            _, v, states, label, active, r2syn = frame
            g1 = values.pop()
            dom1 = _EMPTY_SET if not g1 else frozenset(g1)
            if ip:
                r2 = narrowed_r2(active, dom1)
            else:
                r2 = r2syn
            work.append((_FINISH, v, active, g1))
            child_frames(right_arr[v], r2, work)
        elif tag == _FINISH:
            _, v, active, g1 = frame
            g2 = values.pop()
            values.append(eval_transitions(active, g1, g2, v))
        elif tag == _CHAIN:
            _, anchor, states, last, fused, acc, early_stop = frame
            g = values.pop()
            if acc:
                # acc is owned exclusively by this chain: merge in place.
                merged = acc
                for q, rope in g.items():
                    prev = merged.get(q)
                    merged[q] = rope if prev is None else concat(prev, rope)
            else:
                merged = g
            if early_stop and len(merged) == len(states):
                # Every state already accepted and none is marking: later
                # targets cannot change the result (one-witness semantics).
                values.append(merged)
                continue
            if stats is not None:
                stats.jumps += 1
            nxt = fused.first_at_or_after(tree.bend(last), tree.bend(anchor))
            if nxt < 0:
                values.append(merged)
                continue
            work.append((_CHAIN, anchor, states, nxt, fused, merged, early_stop))
            work.append((_EVAL, nxt, states))
        else:  # _LIT
            values.append({})

    (gamma_root,) = values
    accepted, selected = root_answer(asta, gamma_root)
    if stats is not None:
        stats.selected = len(selected)
    return accepted, selected
