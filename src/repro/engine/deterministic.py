"""Deterministic evaluation for path queries (Section 3 end to end).

Pipeline: XPath -> ASTA -> exact TDSTA (subset construction) -> *minimal*
TDSTA (Appendix A.2) -> jumping run restricted to relevant nodes
(Algorithm B.1) -> selected nodes read off the partial run.

This is the Intro's "extreme |Q|-optimization" with the paper's
relevant-node machinery on top: minimization is what makes the relevant
nodes well-defined (Section 3), and Theorem 3.1 guarantees the run maps
exactly the relevant nodes.  Only predicate-free location paths qualify;
:func:`evaluate` raises :class:`~repro.automata.pathdet.NotPathShaped`
otherwise (the Engine facade falls back to the optimized ASTA engine).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.automata.minimize import minimize_tdsta
from repro.automata.pathdet import NotPathShaped, path_tdsta
from repro.automata.sta import STA
from repro.automata.topdown import topdown_jump
from repro.counters import EvalStats
from repro.engine.registry import StrategyBase, register_strategy
from repro.index.jumping import TreeIndex
from repro.xpath.ast import Path
from repro.xpath.compiler import compile_xpath
from repro.xpath.parser import parse_xpath

_tdsta_cache: Dict[Tuple[str, Optional[Tuple[str, ...]]], STA] = {}


def compile_tdsta(
    query: Union[str, Path], wildcard_labels: Optional[List[str]] = None
) -> STA:
    """Minimal complete TDSTA for a predicate-free path query (cached).

    Like the shared :class:`~repro.engine.plan.CompiledQueryCache`, the
    cache key includes the wildcard label inventory: on documents with
    encoded ``@attribute``/``#text`` labels the ``*`` test must compile
    against the element labels only, not match every label.
    """
    inventory = (
        None
        if wildcard_labels is None
        else tuple(sorted(set(wildcard_labels)))
    )
    key = (query if isinstance(query, str) else str(query), inventory)
    sta = _tdsta_cache.get(key)
    if sta is None:
        asta = compile_xpath(query, wildcard_labels=wildcard_labels)
        sta = minimize_tdsta(path_tdsta(asta))
        _tdsta_cache[key] = sta
    return sta


def run_tdsta(
    sta: STA, index: TreeIndex, stats: Optional[EvalStats] = None
) -> Tuple[bool, List[int]]:
    """Jumping run of a compiled minimal TDSTA; (accepted, selected ids)."""
    run = topdown_jump(sta, index, stats)
    tree = index.tree
    selected = sorted(
        v for v, q in run.items() if sta.selects(q, tree.label(v))
    )
    if stats is not None:
        stats.selected = len(selected)
    # For predicate-free path queries the ASTA accepts a tree iff a full
    # match exists, i.e. iff something is selected.
    return bool(selected), selected


def evaluate(
    query: Union[str, Path],
    index: TreeIndex,
    stats: Optional[EvalStats] = None,
    wildcard_labels: Optional[List[str]] = None,
) -> Tuple[bool, List[int]]:
    """(accepted, selected ids) via the minimal-TDSTA jumping run.

    On documents with encoded ``@attribute``/``#text`` labels pass the
    element-label inventory as ``wildcard_labels`` (as
    :class:`~repro.engine.api.Engine` does), or ``*`` tests will match
    the encoded labels too.
    """
    return run_tdsta(compile_tdsta(query, wildcard_labels), index, stats)


def evaluate_bottomup_filter(
    query: Union[str, Path],
    index: TreeIndex,
    stats: Optional[EvalStats] = None,
) -> Tuple[bool, List[int]]:
    """Bottom-up deterministic evaluation of ``//target[.//witness]``.

    The query class where the paper proves top-down determinism is
    impossible (Example A.1): a 3-state BDSTA evaluated with the
    subtree-skipping bottom-up run of Algorithm B.2.  Raises
    :class:`NotPathShaped` for other queries.
    """
    from repro.automata.bottomup import bottomup_jump, selected_by_run
    from repro.automata.pathdet import filter_bdsta, match_filter_query
    from repro.xpath.parser import parse_xpath

    path = parse_xpath(query) if isinstance(query, str) else query
    matched = match_filter_query(path)
    if matched is None:
        raise NotPathShaped("expected a //target[.//witness] query")
    target, witness = matched
    sta = filter_bdsta(target, witness)
    run = bottomup_jump(sta, index, stats)
    if run is None:
        return False, []
    tree = index.tree
    selected = sorted(
        v for v, q in run.items() if sta.selects(q, tree.label(v))
    )
    if stats is not None:
        stats.selected = len(selected)
    return bool(selected), selected


@register_strategy
class DeterministicStrategy(StrategyBase):
    """Minimal-TDSTA pipeline for predicate-free path queries (Section 3)."""

    name = "deterministic"
    fallback = "optimized"  # which in turn chains to mixed for backward axes

    def supports(self, path: Path) -> bool:
        # Path-shapedness is decided by the compiled automaton, so the
        # capability check compiles it -- the result lands in the global
        # TDSTA cache, making the later prepare() a lookup.
        if path.has_backward_axes():
            return False
        try:
            compile_tdsta(path)
        except NotPathShaped:
            return False
        return True

    def prepare(self, plan) -> None:
        # Compile against the engine's wildcard inventory (encoded
        # documents restrict '*' to element labels); path-shapedness is
        # label-set-independent, so the supports() check above stands.
        plan.artifacts["tdsta"] = compile_tdsta(
            plan.path, plan.engine._wildcard_labels()
        )

    def execute(self, plan, index, stats):
        return run_tdsta(plan.artifacts["tdsta"], index, stats)
