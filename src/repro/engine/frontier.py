"""Set-at-a-time vectorized evaluation: whole frontiers per step.

Every other strategy in this library -- including the PR 2 interned hot
path -- advances *one node per Python-level step*.  This module is the
column-store counterpart: the run state is a sorted ``np.int64`` array of
node ids (the *frontier*), and each location step of the query moves the
whole frontier at once:

- child / attribute transitions are one vectorized membership test of
  ``parent[candidates]`` against the frontier
  (:func:`numpy.searchsorted` over the sorted frontier);
- descendant transitions are subtree-interval arithmetic: the frontier
  is staircase-pruned to disjoint top-most ``[v, xml_end[v])`` ranges
  and every candidate is located in (at most) one range with a single
  batched binary search;
- following-sibling transitions reduce to a per-parent minimum over the
  frontier plus one membership probe per candidate;
- predicates become boolean masks over the frontier, computed *back to
  front*: for an existence path ``p1/p2/.../pk`` the match sets
  ``M_k ... M_1`` (nodes from which the path suffix matches) are built
  with the same three vectorized primitives, so a predicate costs a few
  array passes instead of a per-node automaton run.

Candidate arrays come straight from the
:class:`~repro.index.labels.LabelIndex`: per-label sorted id arrays for
named tests, and :meth:`LabelIndex.fused` merged unions for wildcard /
``node()`` / multi-label tests (the same cached unions the tda jump
machinery uses).  Because node ids are document order and every mask
selects a subset of a sorted duplicate-free candidate array, results are
produced sorted and duplicate-free -- byte-identical to the reference
oracle with no sort and no dedup pass.

Counters are *redefined* for this strategy (see ``EvalStats``): a node
is "visited" when its array element is touched by a vectorized pass, a
"jump" is one batched index operation (a searchsorted / membership
pass over a whole frontier), and ``index_probes`` counts the probe
elements of those batches.  Totals stay comparable to the node-at-a-time
engines -- the same relevant elements are touched, just many per
operation instead of one.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.counters import EvalStats
from repro.engine.registry import StrategyBase, register_strategy
from repro.index.jumping import TreeIndex
from repro.xpath.ast import (
    Axis,
    Path,
    Pred,
    PredAnd,
    PredNot,
    PredOr,
    PredPath,
    Step,
)

_EMPTY = np.empty(0, dtype=np.int64)


def is_vectorizable(path: Path) -> bool:
    """The fragment this evaluator covers natively: absolute forward
    paths (backward axes route through the mixed pipeline, relative
    top-level paths through the automaton engines)."""
    return path.absolute and bool(path.steps) and not path.has_backward_axes()


def evaluate(
    query: "str | Path",
    index: TreeIndex,
    stats: Optional[EvalStats] = None,
) -> Tuple[bool, List[int]]:
    """Evaluate set-at-a-time; returns ``(accepted, selected ids)``."""
    if isinstance(query, str):
        from repro.xpath.parser import parse_xpath

        path = parse_xpath(query)
    else:
        path = query
    if not is_vectorizable(path):
        raise ValueError(
            f"query {str(path)!r} is outside the vectorized fragment "
            "(absolute forward paths only)"
        )
    frontier = _eval_steps(index, path.steps, None, stats)
    ids = frontier.tolist()
    if stats is not None:
        stats.selected += len(ids)
    return bool(ids), ids


# -- the frontier loop -------------------------------------------------------


def _eval_steps(
    index: TreeIndex,
    steps: tuple,
    frontier: Optional[np.ndarray],
    stats: Optional[EvalStats],
) -> np.ndarray:
    """Run location steps over a frontier (``None`` = the document node)."""
    for step in steps:
        frontier = _eval_step(index, step, frontier, stats)
        if frontier.size == 0:
            return _EMPTY
    return frontier if frontier is not None else _EMPTY


def _eval_step(
    index: TreeIndex,
    step: Step,
    frontier: Optional[np.ndarray],
    stats: Optional[EvalStats],
) -> np.ndarray:
    cand = _candidates(index, step.axis, step.test)
    if stats is not None:
        stats.visited += int(cand.size)
        stats.jumps += 1
    if cand.size == 0:
        return _EMPTY
    if frontier is None:
        # The implicit document node: its only child is the root, its
        # descendants are every node; it has no siblings or attributes.
        if step.axis is Axis.CHILD:
            out = cand[:1] if cand.size and cand[0] == 0 else _EMPTY
        elif step.axis is Axis.DESCENDANT:
            out = cand
        else:
            out = _EMPTY
    elif step.axis in (Axis.CHILD, Axis.ATTRIBUTE):
        parents = index.parent_array()[cand]
        out = cand[_in_sorted(parents, frontier, stats)]
    elif step.axis is Axis.DESCENDANT:
        out = cand[_descendant_mask(index, cand, frontier, stats)]
    elif step.axis is Axis.FOLLOWING_SIBLING:
        out = cand[_following_sibling_mask(index, cand, frontier, stats)]
    else:  # pragma: no cover - supports() excludes backward axes
        raise AssertionError(step.axis)
    if step.predicate is not None and out.size:
        out = out[_pred_mask(index, step.predicate, out, stats)]
    return out


def test_label_names(labels: List[str], axis: Axis, test: str) -> List[str]:
    """The element names a node test can match, resolved against one
    document's label inventory (the single place these semantics live --
    the planner prices steps through the same resolution)."""
    if axis is Axis.ATTRIBUTE:
        if test in ("*", "node()"):
            return [l for l in labels if l.startswith("@")]
        return ["@" + test]
    if test == "node()":
        return list(labels)
    if test == "*":
        return [l for l in labels if not l.startswith(("@", "#"))]
    if test == "text()":
        return ["#text"]
    return [test]


def _candidates(index: TreeIndex, axis: Axis, test: str) -> np.ndarray:
    """Sorted ids of every node the step's node test can match.

    Named tests hit the per-label array directly (no lock, no LRU slot
    -- trivial single-label wrappers would otherwise compete with the
    genuinely expensive merged unions for the bounded fused cache);
    wildcard / multi-label tests go through the cached merged union.
    """
    names = test_label_names(index.tree.labels, axis, test)
    label_ids = index.label_ids(names)
    if not label_ids:
        return _EMPTY
    if len(label_ids) == 1:
        return index.labels.nodes_array(index.tree.labels[label_ids[0]])
    return index.fused(label_ids).arr


# -- vectorized axis primitives ---------------------------------------------


def _in_sorted(
    values: np.ndarray,
    sorted_arr: np.ndarray,
    stats: Optional[EvalStats],
) -> np.ndarray:
    """Membership mask of ``values`` in a sorted duplicate-free array."""
    if stats is not None:
        stats.jumps += 1
        stats.index_probes += int(values.size)
    if sorted_arr.size == 0:
        return np.zeros(values.size, dtype=bool)
    pos = np.searchsorted(sorted_arr, values)
    clipped = np.minimum(pos, sorted_arr.size - 1)
    return (pos < sorted_arr.size) & (sorted_arr[clipped] == values)


def _staircase(
    index: TreeIndex, frontier: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Prune the frontier to top-most nodes: disjoint subtree ranges.

    Nested context subtrees are redundant for the descendant axis; the
    running maximum of ``xml_end`` drops them in one pass (subtree
    ranges either nest or are disjoint, so the survivors are pairwise
    disjoint and every candidate lies in at most one of them).
    """
    ends = index.xml_end_array()[frontier]
    if frontier.size <= 1:
        return frontier, ends
    keep = np.empty(frontier.size, dtype=bool)
    keep[0] = True
    np.greater_equal(
        frontier[1:], np.maximum.accumulate(ends)[:-1], out=keep[1:]
    )
    return frontier[keep], ends[keep]


def _descendant_mask(
    index: TreeIndex,
    cand: np.ndarray,
    frontier: np.ndarray,
    stats: Optional[EvalStats],
) -> np.ndarray:
    """Which candidates are strict XML descendants of a frontier node."""
    ctx, ctx_end = _staircase(index, frontier)
    if stats is not None:
        stats.jumps += 1
        stats.index_probes += int(cand.size)
    j = np.searchsorted(ctx, cand, side="right") - 1
    clipped = np.maximum(j, 0)
    return (j >= 0) & (cand > ctx[clipped]) & (cand < ctx_end[clipped])


def _following_sibling_mask(
    index: TreeIndex,
    cand: np.ndarray,
    frontier: np.ndarray,
    stats: Optional[EvalStats],
) -> np.ndarray:
    """Which candidates follow a frontier node among its siblings.

    ``c`` qualifies iff some frontier node shares ``parent[c]`` and
    precedes ``c`` -- i.e. ``c`` exceeds the *minimum* frontier id under
    its parent.  The frontier is ascending, so ``np.unique``'s
    first-occurrence indexes are exactly those minima.
    """
    parent = index.parent_array()
    fp = parent[frontier]
    uniq, first = np.unique(fp, return_index=True)
    mins = frontier[first]
    pc = parent[cand]
    if stats is not None:
        stats.jumps += 1
        stats.index_probes += int(cand.size)
    pos = np.searchsorted(uniq, pc)
    clipped = np.minimum(pos, uniq.size - 1)
    found = (pos < uniq.size) & (uniq[clipped] == pc)
    return found & (cand > mins[clipped])


# -- predicates as masks -----------------------------------------------------


def _pred_mask(
    index: TreeIndex,
    pred: Pred,
    nodes: np.ndarray,
    stats: Optional[EvalStats],
) -> np.ndarray:
    """Boolean mask over ``nodes``: which satisfy the predicate."""
    if isinstance(pred, PredAnd):
        left = _pred_mask(index, pred.left, nodes, stats)
        return left & _pred_mask(index, pred.right, nodes, stats)
    if isinstance(pred, PredOr):
        left = _pred_mask(index, pred.left, nodes, stats)
        return left | _pred_mask(index, pred.right, nodes, stats)
    if isinstance(pred, PredNot):
        return ~_pred_mask(index, pred.inner, nodes, stats)
    if isinstance(pred, PredPath):
        path = pred.path
        if path.absolute:
            result = _eval_steps(index, path.steps, None, stats)
            return np.full(nodes.size, bool(result.size), dtype=bool)
        if not path.steps:
            return np.ones(nodes.size, dtype=bool)  # '.' always exists
        matches = _match_set(index, path.steps, stats)
        return _has_successor_mask(
            index, path.steps[0].axis, nodes, matches, stats
        )
    raise AssertionError(pred)


def _match_set(
    index: TreeIndex, steps: tuple, stats: Optional[EvalStats]
) -> np.ndarray:
    """Nodes matching ``steps[0]`` from which ``steps[1:]`` matches.

    Built back to front: ``M_k`` is the last step's test+predicate set,
    and ``M_i`` keeps the nodes of step ``i``'s set with a step-``i+1``
    successor in ``M_{i+1}``.  Existence of the whole relative path from
    a context node is then one successor probe against ``M_1``.
    """
    matches: Optional[np.ndarray] = None
    for i in range(len(steps) - 1, -1, -1):
        step = steps[i]
        cand = _candidates(index, step.axis, step.test)
        if stats is not None:
            stats.visited += int(cand.size)
            stats.jumps += 1
        if step.predicate is not None and cand.size:
            cand = cand[_pred_mask(index, step.predicate, cand, stats)]
        if matches is not None and cand.size:
            cand = cand[
                _has_successor_mask(
                    index, steps[i + 1].axis, cand, matches, stats
                )
            ]
        matches = cand
        if matches.size == 0:
            return _EMPTY
    return matches


def _has_successor_mask(
    index: TreeIndex,
    axis: Axis,
    nodes: np.ndarray,
    targets: np.ndarray,
    stats: Optional[EvalStats],
) -> np.ndarray:
    """Which of ``nodes`` have an ``axis``-successor inside ``targets``."""
    if targets.size == 0:
        return np.zeros(nodes.size, dtype=bool)
    parent = index.parent_array()
    if axis in (Axis.CHILD, Axis.ATTRIBUTE):
        parents = parent[targets]
        parents = np.unique(parents[parents >= 0])
        return _in_sorted(nodes, parents, stats)
    if axis is Axis.DESCENDANT:
        if stats is not None:
            stats.jumps += 1
            stats.index_probes += int(nodes.size)
        lo = np.searchsorted(targets, nodes, side="right")
        hi = np.searchsorted(
            targets, index.xml_end_array()[nodes], side="left"
        )
        return hi > lo
    if axis is Axis.FOLLOWING_SIBLING:
        # Per-parent *maximum* of the target set: reverse the ascending
        # array so unique's first occurrences are the maxima.
        tp = parent[targets][::-1]
        uniq, first = np.unique(tp, return_index=True)
        maxs = targets[::-1][first]
        if stats is not None:
            stats.jumps += 1
            stats.index_probes += int(nodes.size)
        pn = parent[nodes]
        pos = np.searchsorted(uniq, pn)
        clipped = np.minimum(pos, uniq.size - 1)
        found = (pos < uniq.size) & (uniq[clipped] == pn)
        return found & (maxs[clipped] > nodes)
    raise AssertionError(axis)  # pragma: no cover - forward fragment only


@register_strategy
class VectorizedStrategy(StrategyBase):
    """Set-at-a-time frontier evaluation over numpy node-id arrays."""

    name = "vectorized"
    fallback = "optimized"  # relative / backward queries keep working
    needs_asta = False
    parallel_safe = True

    def supports(self, path: Path) -> bool:
        return is_vectorizable(path)

    def execute(self, plan, index, stats):
        return evaluate(plan.path, index, stats)
