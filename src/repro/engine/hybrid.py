"""Hybrid (start-anywhere) evaluation (Section 4.4, Figure 5).

For a pure descendant chain ``//l1//l2//...//ln`` the evaluator:

1. reads the O(1) global label counts and picks the pivot step ``lk``
   with the fewest occurrences;
2. jumps directly to all ``lk``-labelled nodes;
3. checks the prefix ``//l1//...//l(k-1)`` *upwards* with parent moves
   (greedy nearest-ancestor matching -- exact for existence, and what the
   paper's implementation does since its index has no ancestor jumps);
4. collects the suffix ``//l(k+1)//...//ln`` *downwards* with staircase-
   pruned label-range scans.

Configurations A/B of Figure 5 (rare pivot) make this dramatically
cheaper than the regular top-down+bottom-up run; configuration D is its
worst case (pivot barely rarer than the top label).  For queries outside
the descendant-chain fragment, :func:`hybrid_evaluate` falls back to the
optimized engine.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.counters import EvalStats
from repro.engine import optimized
from repro.engine.registry import StrategyBase, register_strategy
from repro.index.jumping import TreeIndex
from repro.xpath.ast import Axis, Path
from repro.xpath.compiler import compile_xpath
from repro.xpath.parser import parse_xpath


def is_hybrid_applicable(path: Path) -> bool:
    """True for absolute descendant chains, optionally with one final
    forward predicate (the analogue of the paper's text predicates, which
    its hybrid strategy was designed for)."""
    if not path.absolute or not path.steps:
        return False
    for step in path.steps[:-1]:
        if step.axis is not Axis.DESCENDANT or step.predicate is not None:
            return False
        if step.test_matches_any():
            return False
    last = path.steps[-1]
    if last.axis is not Axis.DESCENDANT or last.test_matches_any():
        return False
    if last.predicate is not None and _pred_backward(last.predicate):
        return False
    return True


def _pred_backward(pred) -> bool:
    from repro.engine.mixed import _pred_has_backward

    return _pred_has_backward(pred)


def plan_pivot(path: Path, index: TreeIndex) -> int:
    """Index of the rarest step label (the start-anywhere pivot)."""
    counts = [index.count(s.test) for s in path.steps]
    best = 0
    for i, c in enumerate(counts):
        if c < counts[best]:
            best = i
    return best


def hybrid_evaluate(
    query: "str | Path",
    index: TreeIndex,
    stats: Optional[EvalStats] = None,
) -> Tuple[bool, List[int]]:
    """Evaluate with the start-anywhere strategy; returns (accepted, ids)."""
    path = parse_xpath(query) if isinstance(query, str) else query
    if not is_hybrid_applicable(path):
        asta = compile_xpath(path)
        return optimized.evaluate(asta, index, stats)
    tree = index.tree
    labels = [s.test for s in path.steps]
    k = plan_pivot(path, index)

    starts = index.labels.nodes(labels[k])
    if stats is not None:
        stats.visited += len(starts)

    if k == 0:
        verified = starts
    else:
        prefix_ids = [tree.label_id(name) for name in labels[:k]]
        if any(lab is None for lab in prefix_ids):
            verified = []  # a prefix label absent from the document
        else:
            verified = _verify_prefix_batch(index, prefix_ids, starts, stats)

    selected = _collect_suffix(index, labels[k + 1 :], verified, stats)
    predicate = path.steps[-1].predicate
    if predicate is not None:
        from repro.baselines.stepwise import _eval_pred

        selected = [
            v for v in selected if _eval_pred(index, predicate, v, stats)
        ]
    if stats is not None:
        stats.selected = len(selected)
    return bool(selected), selected


def _verify_prefix_batch(
    index: TreeIndex,
    prefix_ids: List[int],
    starts: List[int],
    stats: Optional[EvalStats],
) -> List[int]:
    """Greedy upward prefix check for all pivots at once.

    One vectorized parent-step per tree level: every still-undecided
    pivot climbs one ancestor and compares its label id against the
    prefix position it currently awaits -- O(height) numpy passes
    instead of O(|pivots| * height) interpreted steps.
    """
    if not starts:
        return []
    parent = index.parent_array()
    label_of = index.label_of_array()
    pids = np.asarray(prefix_ids, dtype=np.int64)
    cur = parent[np.asarray(starts, dtype=np.int64)]
    j = np.full(len(starts), len(prefix_ids) - 1, dtype=np.int64)
    alive = cur >= 0
    walked = 0
    while True:
        idx = np.flatnonzero(alive)
        if idx.size == 0:
            break
        walked += int(idx.size)
        nodes = cur[idx]
        match = label_of[nodes] == pids[j[idx]]
        j[idx] -= match
        cur[idx] = parent[nodes]
        alive[idx] = (cur[idx] >= 0) & (j[idx] >= 0)
    if stats is not None:
        stats.visited += walked
    ok = j < 0
    return [v for v, good in zip(starts, ok) if good]


def _collect_suffix(
    index: TreeIndex,
    suffix: List[str],
    current: List[int],
    stats: Optional[EvalStats],
) -> List[int]:
    """Descend //l(k+1)//...//ln from the verified pivots.

    Per level, the context is staircase-pruned to top-most nodes (nested
    subtree ranges are redundant for the descendant axis), then all
    context ranges are sliced out of the next label's sorted node array
    in one vectorized ``np.searchsorted`` pass.
    """
    if not suffix:
        # Pure bottom-up run: the pivots themselves are the answer, but
        # nested duplicates must be kept (each was verified separately) --
        # they are already distinct and sorted.
        return list(current)
    xml_end = index.xml_end_array()
    out = np.asarray(current, dtype=np.int64)
    for label in suffix:
        if out.size == 0:
            break
        arr = index.labels.nodes_array(label)
        if arr.size == 0:
            out = arr
            break
        ends = xml_end[out]
        # Staircase prune: drop contexts nested in an earlier subtree
        # (their ranges are sub-ranges; skipped ends never exceed the
        # enclosing end, so the running maximum matches the kept chain).
        keep = np.empty(out.size, dtype=bool)
        keep[0] = True
        if out.size > 1:
            keep[1:] = out[1:] >= np.maximum.accumulate(ends)[:-1]
        ctx = out[keep]
        ctx_end = ends[keep]
        lo = np.searchsorted(arr, ctx, side="right")
        hi = np.searchsorted(arr, ctx_end, side="left")
        counts = hi - lo
        total = int(counts.sum())
        if stats is not None:
            stats.visited += total
            stats.index_probes += int(ctx.size)
        if total == 0:
            out = arr[:0]
            break
        offsets = np.cumsum(counts) - counts
        positions = np.repeat(lo - offsets, counts) + np.arange(total)
        out = arr[positions]
    return [int(v) for v in out]


@register_strategy
class HybridStrategy(StrategyBase):
    """Start-anywhere evaluation for descendant chains (Section 4.4)."""

    name = "hybrid"
    fallback = "optimized"  # non-chain queries run the full ASTA machinery

    def supports(self, path: Path) -> bool:
        return is_hybrid_applicable(path)

    def execute(self, plan, index, stats):
        return hybrid_evaluate(plan.path, index, stats)
