"""Hybrid (start-anywhere) evaluation (Section 4.4, Figure 5).

For a pure descendant chain ``//l1//l2//...//ln`` the evaluator:

1. reads the O(1) global label counts and picks the pivot step ``lk``
   with the fewest occurrences;
2. jumps directly to all ``lk``-labelled nodes;
3. checks the prefix ``//l1//...//l(k-1)`` *upwards* with parent moves
   (greedy nearest-ancestor matching -- exact for existence, and what the
   paper's implementation does since its index has no ancestor jumps);
4. collects the suffix ``//l(k+1)//...//ln`` *downwards* with staircase-
   pruned label-range scans.

Configurations A/B of Figure 5 (rare pivot) make this dramatically
cheaper than the regular top-down+bottom-up run; configuration D is its
worst case (pivot barely rarer than the top label).  For queries outside
the descendant-chain fragment, :func:`hybrid_evaluate` falls back to the
optimized engine.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Optional, Tuple

from repro.counters import EvalStats
from repro.engine import optimized
from repro.engine.registry import StrategyBase, register_strategy
from repro.index.jumping import TreeIndex
from repro.tree.binary import NIL
from repro.xpath.ast import Axis, Path
from repro.xpath.compiler import compile_xpath
from repro.xpath.parser import parse_xpath


def is_hybrid_applicable(path: Path) -> bool:
    """True for absolute descendant chains, optionally with one final
    forward predicate (the analogue of the paper's text predicates, which
    its hybrid strategy was designed for)."""
    if not path.absolute or not path.steps:
        return False
    for step in path.steps[:-1]:
        if step.axis is not Axis.DESCENDANT or step.predicate is not None:
            return False
        if step.test_matches_any():
            return False
    last = path.steps[-1]
    if last.axis is not Axis.DESCENDANT or last.test_matches_any():
        return False
    if last.predicate is not None and _pred_backward(last.predicate):
        return False
    return True


def _pred_backward(pred) -> bool:
    from repro.engine.mixed import _pred_has_backward

    return _pred_has_backward(pred)


def plan_pivot(path: Path, index: TreeIndex) -> int:
    """Index of the rarest step label (the start-anywhere pivot)."""
    counts = [index.count(s.test) for s in path.steps]
    best = 0
    for i, c in enumerate(counts):
        if c < counts[best]:
            best = i
    return best


def hybrid_evaluate(
    query: "str | Path",
    index: TreeIndex,
    stats: Optional[EvalStats] = None,
) -> Tuple[bool, List[int]]:
    """Evaluate with the start-anywhere strategy; returns (accepted, ids)."""
    path = parse_xpath(query) if isinstance(query, str) else query
    if not is_hybrid_applicable(path):
        asta = compile_xpath(path)
        return optimized.evaluate(asta, index, stats)
    tree = index.tree
    labels = [s.test for s in path.steps]
    k = plan_pivot(path, index)

    starts = index.labels.nodes(labels[k])
    if stats is not None:
        stats.visited += len(starts)

    verified = (
        starts
        if k == 0
        else [v for v in starts if _prefix_holds(index, labels[:k], v, stats)]
    )

    selected = _collect_suffix(index, labels[k + 1 :], verified, stats)
    predicate = path.steps[-1].predicate
    if predicate is not None:
        from repro.baselines.stepwise import _eval_pred

        selected = [
            v for v in selected if _eval_pred(index, predicate, v, stats)
        ]
    if stats is not None:
        stats.selected = len(selected)
    return bool(selected), selected


def _prefix_holds(
    index: TreeIndex, prefix: List[str], v: int, stats: Optional[EvalStats]
) -> bool:
    """Greedy upward check: ancestors of v match prefix (deepest first).

    Greedy matching is exact for existence: the deepest candidate for the
    last prefix label has a superset of remaining ancestors, so if any
    witness chain exists the greedy one does too.
    """
    tree = index.tree
    j = len(prefix) - 1
    p = tree.parent[v]
    while p != NIL and j >= 0:
        if stats is not None:
            stats.visited += 1
        if tree.label(p) == prefix[j]:
            j -= 1
        p = tree.parent[p]
    return j < 0


def _collect_suffix(
    index: TreeIndex,
    suffix: List[str],
    current: List[int],
    stats: Optional[EvalStats],
) -> List[int]:
    """Descend //l(k+1)//...//ln from the verified pivots.

    Per level, the context is staircase-pruned to top-most nodes (nested
    subtree ranges are redundant for the descendant axis), then each range
    is sliced out of the next label's sorted node list.
    """
    tree = index.tree
    out = current
    for label in suffix:
        lst = index.labels.nodes(label)
        nxt: List[int] = []
        prev_end = -1
        for v in out:
            if v < prev_end:
                continue  # nested in a previous context subtree
            end = tree.xml_end[v]
            lo = bisect_right(lst, v)
            hi = bisect_left(lst, end, lo)
            nxt.extend(lst[lo:hi])
            if stats is not None:
                stats.visited += hi - lo
                stats.index_probes += 1
            prev_end = end
        out = nxt
        if not out:
            break
    if not suffix:
        # Pure bottom-up run: the pivots themselves are the answer, but
        # nested duplicates must be kept (each was verified separately) --
        # they are already distinct and sorted.
        return list(out)
    return out


@register_strategy
class HybridStrategy(StrategyBase):
    """Start-anywhere evaluation for descendant chains (Section 4.4)."""

    name = "hybrid"
    fallback = "optimized"  # non-chain queries run the full ASTA machinery

    def supports(self, path: Path) -> bool:
        return is_hybrid_applicable(path)

    def execute(self, plan, index, stats):
        return hybrid_evaluate(plan.path, index, stats)
