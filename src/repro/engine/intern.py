"""Interned evaluation tables: the engine's integer-keyed hot path.

The stack machine of :mod:`repro.engine.core` looks three things up per
visited node: the enabled transitions (Algorithm 4.1 line 3), the
information-propagation narrowing, and the formula-evaluation template.
Keying those memos by ``(frozenset[str], str, ...)`` tuples pays a
Python-level hashing constant at every single node visit.

:class:`RunTables` removes that constant: a per-plan interner maps each
distinct state set to a dense integer (a *sid*) and reuses the tree's
label interning (``tree.label_of[v]`` already is a small int), so every
memo becomes a flat dict keyed by a small int tuple:

- ``trans``:     ``(sid, lab) -> (active, r1_sid, r2_sid, leaf_template)``
- ``ip``:        ``(sid, lab, dom1_sid) -> narrowed r2 sid``
- ``templates``: ``(sid, lab, dom1_sid, dom2_sid) -> evaluation template``
- ``jump``:      ``(sid, lab) -> jump decision`` (resolved against the
  :class:`~repro.asta.tda.TDAAnalysis` jump plan and the fused label
  arrays of :meth:`repro.index.labels.LabelIndex.fused`)

The int tuples are additionally *packed* into single machine ints
(``key1 = sid << label_shift | lab``, with 16-bit fields for the domain
sids), so the per-visit cost of a memo probe is one int hash -- no tuple
allocation, no element-wise hashing.

A :class:`~repro.engine.plan.PreparedQuery` carries its ``RunTables`` in
``plan.artifacts`` (see :class:`repro.engine.registry.AstaStrategy`), so
Workspace-cached plans keep their warmed tables across ``execute()``
calls; the registry generation counter that invalidates plan caches
therefore also bounds the lifetime of these tables.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.asta.automaton import ASTA
from repro.asta.formula import (
    Formula,
    down_states,
    partial_eval,
    pending_down2,
)
from repro.asta.tda import TDAAnalysis
from repro.index.jumping import TreeIndex

StateSet = FrozenSet[str]

# Jump decision kinds (first element of a ``jump`` entry).
J_VISIT, J_BOTH, J_LEFT, J_RIGHT = 0, 1, 2, 3


class RunTables:
    """Interned per-plan memo tables for the stack machine.

    Bound to one ``(asta, index)`` pair; safe to reuse across any number
    of executions because every entry is a pure function of the automaton
    and the (immutable) tree.
    """

    __slots__ = (
        "asta",
        "index",
        "tda",
        "sets",
        "_sid_of",
        "empty_sid",
        "label_shift",
        "trans",
        "ip",
        "templates",
        "jump",
        "sweep",
        "top_sid",
        "_union",
    )

    #: Bit width of the packed dom-sid fields; a plan never comes close
    #: to 2**16 distinct state sets (state_id guards the limit).
    SID_BITS = 16

    def __init__(self, asta: ASTA, index: TreeIndex, *, jumping: bool = True) -> None:
        self.asta = asta
        self.index = index
        self.sets: List[StateSet] = []
        self._sid_of: Dict[StateSet, int] = {}
        self.empty_sid = self.state_id(frozenset())  # always sid 0
        self.label_shift = max(len(index.tree.labels), 1).bit_length()
        self.trans: Dict[int, tuple] = {}
        self.ip: Dict[int, int] = {}
        self.templates: Dict[int, tuple] = {}
        self.jump: Dict[int, tuple] = {}
        # (key1 << 1 | ip) -> sweep spec (False, or (q, selects, r1_empty,
        # dom_sid)): whether nodes of this (state set, label) linearize
        # inside a fused-array sweep (see core._run_interned.sweep_try).
        self.sweep: Dict[int, object] = {}
        self._union: Dict[int, int] = {}
        self.top_sid = self.state_id(frozenset(asta.top))
        self.tda: Optional[TDAAnalysis] = (
            TDAAnalysis(asta, index.tree, interner=self) if jumping else None
        )

    # -- interning ----------------------------------------------------------

    def state_id(self, states: StateSet) -> int:
        """Dense integer id of a state set (allocated on first sight)."""
        sid = self._sid_of.get(states)
        if sid is None:
            sid = len(self.sets)
            if sid >= 1 << self.SID_BITS:
                raise RuntimeError(
                    "interner sid space exhausted (2**16 state sets)"
                )
            self._sid_of[states] = sid
            self.sets.append(states)
        return sid

    def union_sid(self, a: int, b: int) -> int:
        """sid of ``sets[a] | sets[b]`` (memoized pairwise).

        The evaluator threads each Γ's domain sid next to the dict, so
        merging two Γs updates the domain with one int-keyed look-up
        instead of re-hashing a frozenset union.
        """
        if a == b or b == 0:
            return a
        if a == 0:
            return b
        key = (a << self.SID_BITS) | b
        hit = self._union.get(key)
        if hit is None:
            hit = self._union[key] = self.state_id(self.sets[a] | self.sets[b])
        return hit

    def entries(self) -> int:
        """Total memo entries across the interned tables."""
        return len(self.trans) + len(self.ip) + len(self.templates)

    # -- table builders (called on cache miss only) -------------------------
    #
    # Each builder takes the packed key it must insert under plus the
    # unpacked fields it needs; the machine computes the keys inline.

    def trans_entry(self, key1: int, sid: int, lab: int) -> tuple:
        """Build + insert the transition entry for ``(sid, lab)``.

        The entry bundles the enabled transitions, the interned synthetic
        ↓1/↓2 state sets, the *leaf template* -- the ``(q, selecting)``
        rows that survive evaluation against empty child domains, letting
        the machine finish leaves without frames or further look-ups --
        and the ip-narrowed ↓2 sid for an empty left domain (the dominant
        case: every childless-to-the-left node), saving the separate ip
        probe there.
        """
        states = self.sets[sid]
        label = self.index.tree.labels[lab]
        active = self.asta.active(states, label)
        r1 = frozenset(
            q for t in active for i, q in down_states(t.formula) if i == 1
        )
        r2 = frozenset(
            q for t in active for i, q in down_states(t.formula) if i == 2
        )
        empty: StateSet = frozenset()
        leaf_tpl = tuple(
            (q, selecting)
            for q, selecting, _src in _make_template(active, empty, empty)
        )
        r2n0 = self.narrow(key1 << self.SID_BITS, active, 0)
        leaf_out = self.state_id(frozenset(q for q, _sel in leaf_tpl))
        entry = (
            active,
            self.state_id(r1),
            self.state_id(r2),
            leaf_tpl,
            r2n0,
            leaf_out,
        )
        self.trans[key1] = entry
        return entry

    def narrow(self, ikey: int, active, dom1_sid: int) -> int:
        """Information propagation: the narrowed ↓2 state set (as a sid)."""
        dom1 = self.sets[dom1_sid]
        marking = self.asta.is_marking
        decided = {t.q for t in active if partial_eval(t.formula, dom1) == 1}
        r2: set = set()
        for t in active:
            pe = partial_eval(t.formula, dom1)
            if pe == 0:
                continue
            if marking(t.q):
                r2 |= _marks_down2(t.formula, dom1, marking)
                if pe == -1:
                    r2 |= pending_down2(t.formula, dom1)
                continue
            if pe == 1:
                continue
            if t.q in decided:
                continue  # truth settled elsewhere, no marks at stake
            r2 |= pending_down2(t.formula, dom1)
        out = self.state_id(frozenset(r2))
        self.ip[ikey] = out
        return out

    def template(
        self, ekey: int, active, dom1_sid: int, dom2_sid: int
    ) -> tuple:
        """Build + insert the evaluation template for the domain pair.

        Returns ``(rows, out_sid)``: the contribution rows plus the
        interned domain of the Γ they produce (every row asserts its
        state, so the output domain is static) -- nested-run folds chain
        ``out_sid`` into the next template key without re-hashing any
        state set.
        """
        rows = _make_template(
            active, self.sets[dom1_sid], self.sets[dom2_sid]
        )
        out_sid = self.state_id(frozenset(q for q, _s, _c in rows))
        # Diagonal: every row sources at most its own ↓2 input, so states
        # never mix and runs of identical steps compose per-state:
        # out[q] = (own selections over the run) + (in[q] if carried).
        # The spec rows are (q, selects?, carries ↓2 forward?); rope
        # order inside a Γ is irrelevant (flatten sorts), so composing
        # selections as one chain is exact.  Lets the evaluator collapse
        # steady-state ``//label`` sweeps into plain rope chains.
        diag_spec = None
        if all(src in ((), ((2, q),)) for q, _s, src in rows):
            by_q: Dict[str, List[bool]] = {}
            for q, selecting, src in rows:
                flags = by_q.setdefault(q, [False, False])
                flags[0] = flags[0] or selecting
                flags[1] = flags[1] or bool(src)
            diag_spec = tuple((q, a, b) for q, (a, b) in by_q.items())
        rec = (rows, out_sid, diag_spec)
        self.templates[ekey] = rec
        return rec

    def jump_decision(self, key1: int, sid: int, lab: int) -> tuple:
        """Resolve + insert the jump decision for a (state set, label).

        Decisions are one of::

            (J_VISIT,)                                    evaluate in place
            (J_BOTH, fused_list, size, early_stop, |S|)   dt/ft chain
            (J_LEFT, label_id_set) / (J_RIGHT, ...)       spine walk

        ``fused_list`` is the plain-list mirror of the merged label array
        (one bisect per dt/ft instead of a per-label search loop).
        """
        states = self.sets[sid]
        tda = self.tda
        info = tda.info(states)
        shape = info.jump_shape
        if (
            shape == "none"
            or info.per_atom[
                tda.atom_rep(self.index.tree.labels[lab])
            ].skip_class
            == "ess"
        ):
            dec: tuple = (J_VISIT,)
        elif shape == "both":
            fused = self.index.fused(info.essential_ids)
            dec = (J_BOTH, fused.lst, fused.size, info.early_stop, len(states))
        elif shape == "left":
            dec = (J_LEFT, frozenset(info.essential_ids))
        else:
            dec = (J_RIGHT, frozenset(info.essential_ids))
        self.jump[key1] = dec
        return dec


# ---------------------------------------------------------------------------
# Formula templates (shared by the interned and plain machines)
# ---------------------------------------------------------------------------


def _make_template(active, dom1: StateSet, dom2: StateSet) -> tuple:
    """Evaluate formulas once against the domains, record contributions."""
    rows = []
    for t in active:
        ok, sources = _formula_template(t.formula, dom1, dom2)
        if ok:
            rows.append((t.q, t.selecting, tuple(sources)))
    return tuple(rows)


def _formula_template(
    f: Formula, dom1: StateSet, dom2: StateSet
) -> Tuple[bool, list]:
    """Figure 7's judgement with domains: (truth, contributing (side, q))."""
    tag = f[0]
    if tag == "T":
        return True, []
    if tag == "F":
        return False, []
    if tag == "d":
        side, q = f[1], f[2]
        if q in (dom1 if side == 1 else dom2):
            return True, [(side, q)]
        return False, []
    if tag == "!":
        b, _ = _formula_template(f[1], dom1, dom2)
        return (not b), []
    b1, s1 = _formula_template(f[1], dom1, dom2)
    if tag == "&":
        if not b1:
            return False, []
        b2, s2 = _formula_template(f[2], dom1, dom2)
        if not b2:
            return False, []
        return True, s1 + s2
    b2, s2 = _formula_template(f[2], dom1, dom2)
    if b1 and b2:
        return True, s1 + s2
    if b1:
        return True, s1
    if b2:
        return True, s2
    return False, []


def _marks_down2(f: Formula, dom1: StateSet, marking) -> set:
    """↓2 states that may carry marks through non-false, non-negated branches."""
    out: set = set()
    _marks_walk(f, dom1, marking, out)
    return out


def _marks_walk(f: Formula, dom1, marking, out: set) -> None:
    if partial_eval(f, dom1) == 0:
        return
    tag = f[0]
    if tag == "d":
        if f[1] == 2 and marking(f[2]):
            out.add(f[2])
    elif tag in ("&", "|"):
        _marks_walk(f[1], dom1, marking, out)
        _marks_walk(f[2], dom1, marking, out)
    # negation: marks never cross ¬ (Figure 7's "not" rule drops them)
