"""Jumping evaluation: on-the-fly top-down relevance approximation.

The "Jumping Eval." series of Figure 4: the traversal only touches the
approximated relevant nodes (plus information propagation, which is what
keeps predicate checks existential and jumps alive past satisfied
predicates); the |Q| transition-scan is still paid at every visited node
(no memoization).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.asta.automaton import ASTA
from repro.counters import EvalStats
from repro.engine.core import run_asta
from repro.engine.registry import AstaStrategy, register_strategy
from repro.index.jumping import TreeIndex


def evaluate(
    asta: ASTA, index: TreeIndex, stats: Optional[EvalStats] = None, *, tables=None
) -> Tuple[bool, List[int]]:
    """Run the jumping engine; returns (accepted, selected ids)."""
    return run_asta(
        asta, index, jumping=True, memo=False, ip=True, stats=stats, tables=tables
    )


@register_strategy
class JumpingStrategy(AstaStrategy):
    """Relevant-node jumping without memoization (Figure 4 "Jumping")."""

    name = "jumping"
    evaluator = staticmethod(evaluate)
