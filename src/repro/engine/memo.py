"""Memoized evaluation: full traversal, amortized |Q| factor.

The "Memo. Eval." series of Figure 4: the document factor |D| is paid in
full (except for subtrees the restriction sets kill), but the transition
look-up and formula evaluation are memoized so that, after a few warm-up
nodes, each node costs a table look-up (Section 4.4, "Memoization").
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.asta.automaton import ASTA
from repro.counters import EvalStats
from repro.engine.core import run_asta
from repro.engine.registry import AstaStrategy, register_strategy
from repro.index.jumping import TreeIndex


def evaluate(
    asta: ASTA, index: TreeIndex, stats: Optional[EvalStats] = None, *, tables=None
) -> Tuple[bool, List[int]]:
    """Run the memoizing engine; returns (accepted, selected ids)."""
    return run_asta(
        asta, index, jumping=False, memo=True, ip=False, stats=stats, tables=tables
    )


@register_strategy
class MemoStrategy(AstaStrategy):
    """Full traversal with memoized transitions (Figure 4 "Memo")."""

    name = "memo"
    evaluator = staticmethod(evaluate)
    table_jumping = False  # no jump analysis needed, memo tables only
