"""Mixed forward/backward evaluation (the Section 6 extension).

The paper's theory covers the *forward* fragment; its prototype supports
backward axes outside the theory ("up-moves ... are not part of the
theory", Section 6, with the caveat that one top-down+bottom-up pass is
no longer sufficient).  We follow the same pragmatic route:

1. the maximal *leading forward segment* of the query (steps and
   predicates inside the forward fragment) runs on the optimized ASTA
   engine with all its jumping machinery;
2. the remaining steps -- the first backward step and everything after
   it -- run step-at-a-time from the materialized context, using parent
   walks for ``parent::``/``ancestor::`` (the index has no upward jumps,
   exactly as the paper notes for its hybrid evaluator).

Semantically this equals the reference evaluation of the whole path; the
property tests check exactly that.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.baselines.stepwise import eval_steps_from
from repro.counters import EvalStats
from repro.engine import optimized
from repro.index.jumping import TreeIndex
from repro.xpath.ast import Axis, Path, Pred, PredAnd, PredNot, PredOr, PredPath, Step
from repro.xpath.compiler import compile_xpath
from repro.xpath.parser import parse_xpath


def forward_prefix_length(path: Path) -> int:
    """Number of leading steps fully inside the forward fragment."""
    n = 0
    for step in path.steps:
        if step.axis.is_backward or _pred_has_backward(step.predicate):
            break
        n += 1
    return n


def _pred_has_backward(pred: Optional[Pred]) -> bool:
    if pred is None:
        return False
    if isinstance(pred, (PredAnd, PredOr)):
        return _pred_has_backward(pred.left) or _pred_has_backward(pred.right)
    if isinstance(pred, PredNot):
        return _pred_has_backward(pred.inner)
    if isinstance(pred, PredPath):
        return any(
            s.axis.is_backward or _pred_has_backward(s.predicate)
            for s in pred.path.steps
        )
    raise AssertionError(pred)


def mixed_evaluate(
    query: Union[str, Path],
    index: TreeIndex,
    stats: Optional[EvalStats] = None,
) -> Tuple[bool, List[int]]:
    """(accepted, selected ids) for queries with backward axes."""
    path = parse_xpath(query) if isinstance(query, str) else query
    if not path.absolute:
        raise ValueError("mixed_evaluate expects an absolute query")
    k = forward_prefix_length(path)
    if k == 0:
        # The very first step is backward: start step-wise from the
        # document node (parent/ancestor of it are empty, so this is
        # usually empty unless a later segment recovers -- XPath agrees).
        context: List[int] = [-1]
    else:
        prefix = Path(path.absolute, path.steps[:k])
        asta = compile_xpath(prefix)
        prefix_stats = EvalStats()
        _, context = optimized.evaluate(asta, index, prefix_stats)
        if stats is not None:
            stats.merge(prefix_stats)
    rest = path.steps[k:]
    if rest and context:
        selected = eval_steps_from(index, tuple(rest), context, stats)
    elif rest:
        selected = []
    else:
        selected = context
    if stats is not None:
        stats.selected = len(selected)
    return bool(selected), selected
