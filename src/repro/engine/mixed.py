"""Mixed forward/backward evaluation (the Section 6 extension).

The paper's theory covers the *forward* fragment; its prototype supports
backward axes outside the theory ("up-moves ... are not part of the
theory", Section 6, with the caveat that one top-down+bottom-up pass is
no longer sufficient).  We follow the same pragmatic route:

1. the maximal *leading forward segment* of the query (steps and
   predicates inside the forward fragment) runs on the optimized ASTA
   engine with all its jumping machinery;
2. the remaining steps -- the first backward step and everything after
   it -- run step-at-a-time from the materialized context, using parent
   walks for ``parent::``/``ancestor::`` (the index has no upward jumps,
   exactly as the paper notes for its hybrid evaluator).

Semantically this equals the reference evaluation of the whole path; the
property tests check exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.asta.automaton import ASTA
from repro.baselines.stepwise import eval_steps_from
from repro.counters import EvalStats
from repro.engine import optimized
from repro.engine.registry import StrategyBase, register_strategy
from repro.index.jumping import TreeIndex
from repro.xpath.ast import Axis, Path, Pred, PredAnd, PredNot, PredOr, PredPath, Step
from repro.xpath.compiler import compile_xpath
from repro.xpath.parser import parse_xpath


def forward_prefix_length(path: Path) -> int:
    """Number of leading steps fully inside the forward fragment."""
    n = 0
    for step in path.steps:
        if step.axis.is_backward or _pred_has_backward(step.predicate):
            break
        n += 1
    return n


def _pred_has_backward(pred: Optional[Pred]) -> bool:
    if pred is None:
        return False
    if isinstance(pred, (PredAnd, PredOr)):
        return _pred_has_backward(pred.left) or _pred_has_backward(pred.right)
    if isinstance(pred, PredNot):
        return _pred_has_backward(pred.inner)
    if isinstance(pred, PredPath):
        return any(
            s.axis.is_backward or _pred_has_backward(s.predicate)
            for s in pred.path.steps
        )
    raise AssertionError(pred)


@dataclass(frozen=True)
class MixedPlan:
    """The prepared split of a query: forward prefix + step-wise rest."""

    k: int
    prefix_asta: Optional[ASTA]


def plan_mixed(path: Path, compile=compile_xpath) -> MixedPlan:
    """Split ``path`` and compile its forward prefix (once).

    ``compile`` lets callers route the prefix through a shared cache
    (the registered strategy passes ``Engine.compile``).
    """
    if not path.absolute:
        raise ValueError("mixed_evaluate expects an absolute query")
    k = forward_prefix_length(path)
    prefix_asta = compile(Path(path.absolute, path.steps[:k])) if k else None
    return MixedPlan(k, prefix_asta)


def run_mixed(
    path: Path,
    mplan: MixedPlan,
    index: TreeIndex,
    stats: Optional[EvalStats] = None,
) -> Tuple[bool, List[int]]:
    """Execute a prepared :class:`MixedPlan`; (accepted, selected ids)."""
    k = mplan.k
    if k == 0:
        # The very first step is backward: start step-wise from the
        # document node (parent/ancestor of it are empty, so this is
        # usually empty unless a later segment recovers -- XPath agrees).
        context: List[int] = [-1]
    else:
        prefix_stats = EvalStats()
        _, context = optimized.evaluate(mplan.prefix_asta, index, prefix_stats)
        if stats is not None:
            stats.merge(prefix_stats)
    rest = path.steps[k:]
    if rest and context:
        selected = eval_steps_from(index, tuple(rest), context, stats)
    elif rest:
        selected = []
    else:
        selected = context
    if stats is not None:
        stats.selected = len(selected)
    return bool(selected), selected


def mixed_evaluate(
    query: Union[str, Path],
    index: TreeIndex,
    stats: Optional[EvalStats] = None,
) -> Tuple[bool, List[int]]:
    """(accepted, selected ids) for queries with backward axes."""
    path = parse_xpath(query) if isinstance(query, str) else query
    return run_mixed(path, plan_mixed(path), index, stats)


@register_strategy
class MixedStrategy(StrategyBase):
    """Forward prefix on the ASTA engine + step-wise rest (Section 6)."""

    name = "mixed"
    fallback = None  # terminal: accepts every query

    def supports(self, path: Path) -> bool:
        return True

    def prepare(self, plan) -> None:
        # The prefix automaton goes through the engine's shared cache
        # (and its wildcard-label inventory) so a Workspace compiles
        # each prefix once across documents.
        plan.artifacts["mixed"] = plan_mixed(
            plan.path, compile=plan.engine.compile
        )

    def execute(self, plan, index, stats):
        return run_mixed(plan.path, plan.artifacts["mixed"], index, stats)
