"""Naive evaluation: Algorithm 4.1 with no optimizations.

Visits every node reachable through the restriction sets and pays the
|Q| transition-scan at each -- the "Naive Eval." series of Figure 4.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.asta.automaton import ASTA
from repro.counters import EvalStats
from repro.engine.core import run_asta
from repro.engine.registry import AstaStrategy, register_strategy
from repro.index.jumping import TreeIndex


def evaluate(
    asta: ASTA, index: TreeIndex, stats: Optional[EvalStats] = None
) -> Tuple[bool, List[int]]:
    """Run the naive engine; returns (accepted, selected ids)."""
    return run_asta(asta, index, jumping=False, memo=False, ip=False, stats=stats)


@register_strategy
class NaiveStrategy(AstaStrategy):
    """Full traversal, |Q| transition scan per node (Figure 4 "Naive")."""

    name = "naive"
    evaluator = staticmethod(evaluate)
    reuse_tables = False  # paying the full per-node cost is the point
