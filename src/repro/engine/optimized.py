"""Optimized evaluation: jumping + memoization + information propagation.

The "Opt. Eval." series of Figure 4 -- all techniques of Section 4.4
enabled.  This is the engine the public API uses by default.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.asta.automaton import ASTA
from repro.counters import EvalStats
from repro.engine.core import run_asta
from repro.engine.registry import AstaStrategy, register_strategy
from repro.index.jumping import TreeIndex


def evaluate(
    asta: ASTA,
    index: TreeIndex,
    stats: Optional[EvalStats] = None,
    *,
    ip: bool = True,
    tables=None,
) -> Tuple[bool, List[int]]:
    """Run the fully optimized engine; returns (accepted, selected ids).

    ``ip=False`` disables information propagation only (used by the
    technique-ablation benchmark).  ``tables`` carries warmed interned
    memo tables across calls (prepared queries pass their own).
    """
    return run_asta(
        asta, index, jumping=True, memo=True, ip=ip, stats=stats, tables=tables
    )


@register_strategy
class OptimizedStrategy(AstaStrategy):
    """Jumping + memoization + information propagation (the default)."""

    name = "optimized"
    evaluator = staticmethod(evaluate)
