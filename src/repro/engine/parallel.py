"""Parallel sharded query execution: batches and broadcasts on a pool.

:class:`QueryService` scales a :class:`~repro.engine.workspace.Workspace`
to batch and multi-core execution.  Each document is split into *shards*
-- contiguous groups of whole top-level subtrees, re-rooted under a copy
of the document root (:meth:`repro.index.jumping.TreeIndex.shard_slice`).
Every shard carries its own sliced label index (and, on demand, its own
balanced-parentheses structure via :meth:`Shard.succinct`) plus the
global preorder offset that maps local ids back to document ids.
``(shard, prepared-query)`` tasks fan out to a ``ThreadPoolExecutor`` by
default, or to an opt-in process pool (``executor="process"``) whose
workers rebuild engines from the picklable shard indexes; per-shard
selected sets merge back into document order, byte-identical to serial
execution.

Correct sharding is a query rewrite, not just a data split.  For an
absolute forward path ``s1/s2/.../sk`` every context chain touches the
document root at most once -- in the first context set ``C1`` -- because
all forward steps from an element move strictly downward and the root
has no siblings.  The service therefore:

1. resolves the *root gate* serially on the full document: one cheap
   prepared execution of ``/child::test1[pred1]`` decides whether the
   root belongs to ``C1`` (jumping makes this an existence probe, and it
   is the only place a predicate spans shard boundaries);
2. runs rewritten queries on each shard:
   ``/child::node()/descendant::test1[pred1]/s2/...`` covers chains
   entering through a non-root match of a ``descendant`` first step
   (those matches and all their predicate witnesses live inside one
   shard), and ``/child::node()/s2/...`` -- enabled only when the root
   gate holds -- covers chains that start at the root;
3. merges: the root itself (iff the gate holds and the path has one
   step), then each shard's ids shifted by its offset, concatenated in
   shard order.  Shard ranges are disjoint preorder slices, so the
   concatenation *is* document order.

Queries outside the rewrite's fragment -- backward axes, any
``following-sibling`` step (depth-1 siblings straddle shards), absolute
paths inside predicates, or relative top-level paths -- are not sharded;
they run as whole-document tasks on the pool, which still parallelizes
them across the batch.  Degenerate documents (a bare root) have no
shards and short-circuit to the root gate.

Three executors, one contract (byte-identical to serial):

- ``"thread"`` -- a ``ThreadPoolExecutor`` sharing shard engines and
  the workspace's compiled cache (best when evaluation releases the
  GIL or interleaves with I/O).
- ``"process"`` -- a per-batch ``ProcessPoolExecutor`` whose workers
  rebuild engines from pickled shard payloads (legacy; kept for
  comparison).
- ``"pool"`` -- the persistent shared-memory
  :class:`~repro.engine.pool.WorkerPool`: long-lived workers that
  reopen store bundles zero-copy via mmap, keep engines / compiled
  paths / prepared plans warm across batches, and pull
  query-granularity chunks from one shared queue (dynamic load
  balancing with steal accounting).  Dispatch is task-size aware:
  cheap queries run whole-document and are chunked together to
  amortize IPC; expensive queries on large documents split by shard
  so idle workers can steal.  Store mutations survive via
  generation-versioned worker cache invalidation -- see
  :mod:`repro.engine.pool`.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.counters import EvalStats
from repro.engine import registry
from repro.engine.pool import LRUPathCache, PoolTask, WorkerPool
from repro.engine.api import Engine
from repro.engine.plan import ExecutionResult
from repro.index.jumping import TreeIndex
from repro.xpath.ast import (
    Axis,
    Path,
    Pred,
    PredAnd,
    PredNot,
    PredOr,
    PredPath,
    Step,
)
from repro.xpath.parser import parse_xpath

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.workspace import Workspace

Query = Union[str, Path]

#: Documents below this node count run a shardable query as one
#: whole-document pool task instead of splitting it by shard -- the
#: split's rewrite/merge overhead only pays off on large inputs.
POOL_SPLIT_NODES = int(os.environ.get("REPRO_POOL_SPLIT_NODES", "4096"))

_ROOT_STEP = Step(Axis.CHILD, "node()", None)
"""From the document node, ``child::node()`` selects exactly the root."""


# -- shards -----------------------------------------------------------------


@dataclass
class Shard:
    """One re-rooted slice of a document plus its global placement.

    ``index.tree`` node 0 is a copy of the document root; local node
    ``l >= 1`` is global node ``l + offset``.  Shards of one document
    cover pairwise-disjoint preorder ranges ``[lo, hi)`` in ascending
    ``ordinal`` order.
    """

    ordinal: int
    lo: int
    hi: int
    index: TreeIndex
    _succinct: object = field(default=None, repr=False, compare=False)

    @property
    def offset(self) -> int:
        """Global preorder offset: global id = local id + offset."""
        return self.lo - 1

    def __len__(self) -> int:
        return self.index.tree.n

    def succinct(self):
        """The shard's own balanced-parentheses structure (lazy).

        Built once per shard from its re-rooted tree; interchangeable
        with the pointer tree behind the navigation API (node ids are
        the shard-local preorder numbers).
        """
        if self._succinct is None:
            from repro.index.succinct import SuccinctTree

            self._succinct = SuccinctTree.from_binary(self.index.tree)
        return self._succinct


def shard_document(index: TreeIndex, parts: Optional[int] = None) -> List[Shard]:
    """Split a document into up to ``parts`` shards at top-level children.

    Consecutive top-level subtrees are grouped greedily so the shards
    have roughly equal node counts; ``parts=None`` gives one shard per
    top-level child.  A document whose root has no element children
    returns no shards (the degenerate case the service resolves through
    the root gate alone).
    """
    tree = index.tree
    children = list(tree.children(tree.root()))
    if not children:
        return []
    if parts is not None and parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    groups: List[Tuple[int, int]] = []
    if parts is None or parts >= len(children):
        groups = [(c, tree.xml_end[c]) for c in children]
    else:
        total = sum(tree.xml_end[c] - c for c in children)
        target = total / parts
        acc = 0
        start = children[0]
        for i, c in enumerate(children):
            acc += tree.xml_end[c] - c
            remaining_groups = parts - len(groups) - 1
            remaining_children = len(children) - i - 1
            if (acc >= target and remaining_groups > 0) or (
                remaining_children <= remaining_groups
            ):
                groups.append((start, tree.xml_end[c]))
                acc = 0
                if i + 1 < len(children):
                    start = children[i + 1]
        if acc > 0:
            groups.append((start, tree.xml_end[children[-1]]))
    return [
        Shard(ordinal, lo, hi, index.shard_slice(lo, hi))
        for ordinal, (lo, hi) in enumerate(groups)
    ]


# -- query rewrite ----------------------------------------------------------


@dataclass(frozen=True)
class ShardQueryPlan:
    """How one query runs under sharding (see the module docstring)."""

    query: str
    path: Path
    shardable: bool
    reason: str = ""
    root_probe: Optional[Path] = None
    include_root_if_gate: bool = False
    paths_always: Tuple[Path, ...] = ()
    paths_gated: Tuple[Path, ...] = ()

    def shard_paths(self, root_gate: bool) -> Tuple[Path, ...]:
        """The rewritten per-shard queries given the root-gate outcome."""
        return self.paths_always + (self.paths_gated if root_gate else ())


def _unshardable_reason(path: Path) -> Optional[str]:
    """Why ``path`` must run whole-document, or None if it can shard."""
    if not path.absolute:
        return "relative top-level path"
    if not path.steps:
        return "empty path"
    if path.has_backward_axes():
        return "backward axes (mixed pipeline)"
    first = path.steps[0].axis
    if first not in (Axis.CHILD, Axis.DESCENDANT):
        return f"first step on the {first.value} axis"
    return _forbidden_in(path)


def _forbidden_in(path: Path) -> Optional[str]:
    for step in path.steps:
        if step.axis is Axis.FOLLOWING_SIBLING:
            # Depth-1 siblings straddle shard boundaries.
            return "following-sibling step"
        if step.predicate is not None:
            reason = _forbidden_in_pred(step.predicate)
            if reason:
                return reason
    return None


def _forbidden_in_pred(pred: Pred) -> Optional[str]:
    if isinstance(pred, (PredAnd, PredOr)):
        return _forbidden_in_pred(pred.left) or _forbidden_in_pred(pred.right)
    if isinstance(pred, PredNot):
        return _forbidden_in_pred(pred.inner)
    if isinstance(pred, PredPath):
        if pred.path.absolute:
            # Evaluates from the document node, i.e. over every shard.
            return "absolute path inside a predicate"
        return _forbidden_in(pred.path)
    return None


def plan_shard_query(query: Query) -> ShardQueryPlan:
    """Rewrite ``query`` into its root probe and per-shard queries."""
    path = parse_xpath(query) if isinstance(query, str) else query
    qkey = query if isinstance(query, str) else str(query)
    reason = _unshardable_reason(path)
    if reason is not None:
        return ShardQueryPlan(qkey, path, shardable=False, reason=reason)
    s1 = path.steps[0]
    rest = path.steps[1:]
    probe = Path(True, (Step(Axis.CHILD, s1.test, s1.predicate),))
    from_root = (Path(True, (_ROOT_STEP,) + rest),) if rest else ()
    if s1.axis is Axis.CHILD:
        # C1 is at most {root}; everything else hangs off the gate.
        paths_always: Tuple[Path, ...] = ()
    else:
        # Non-root matches of a descendant first step (and all their
        # predicate witnesses) live entirely inside one shard.
        descend = Step(Axis.DESCENDANT, s1.test, s1.predicate)
        paths_always = (Path(True, (_ROOT_STEP, descend) + rest),)
    return ShardQueryPlan(
        qkey,
        path,
        shardable=True,
        root_probe=probe,
        include_root_if_gate=not rest,
        paths_always=paths_always,
        paths_gated=from_root,
    )


def _describe_prepared(plan) -> dict:
    """One prepared plan's resolution (plus its planner verdict, if any)."""
    from repro.engine.planner import planner_fields

    out = {"query": str(plan.path), "strategy": plan.strategy.name}
    out.update(planner_fields(plan))
    return out


def _sorted_union(parts: List[Sequence[int]]) -> List[int]:
    """Union of sorted duplicate-free id sequences, still sorted."""
    if not parts:
        return []
    if len(parts) == 1:
        return list(parts[0])
    a, b = parts if len(parts) == 2 else (parts[0], _sorted_union(parts[1:]))
    out: List[int] = []
    i = j = 0
    while i < len(a) and j < len(b):
        x, y = a[i], b[j]
        if x <= y:
            out.append(x)
            i += 1
            j += x == y
        else:
            out.append(y)
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out


def _run_paths(
    engine: Engine, paths: Sequence[Path], offset: int
) -> Tuple[List[int], EvalStats, bool]:
    """Execute rewritten paths on one shard engine; global ids + counters."""
    stats = EvalStats()
    accepted = False
    parts: List[Sequence[int]] = []
    for path in paths:
        result = engine.execute(path)
        stats.merge(result.stats)
        accepted = accepted or result.accepted
        if result.ids:
            parts.append(result.ids)
    ids = _sorted_union(parts)
    if offset:
        ids = [v + offset for v in ids]
    return ids, stats, accepted


# -- process-pool worker side ----------------------------------------------

_WORKER: dict = {}


def _worker_init(docs: Dict[str, tuple], strategy: str) -> None:
    """Process-pool initializer: receive the per-document payloads.

    A payload entry is either ``("index", TreeIndex, [Shard, ...])`` --
    the in-memory case, where under the ``fork`` start method the arrays
    are inherited copy-on-write and under ``spawn`` they travel by
    pickle (shard trees, label arrays, and fused caches are all plain
    containers of ints/ndarrays) -- or ``("store", path, [(lo, hi),
    ...])`` for store-backed documents, where only the bundle path and
    the shard boundaries are pickled and each worker reopens the
    memory-mapped arrays itself (the OS page cache shares the physical
    pages across the whole pool).
    """
    _WORKER["docs"] = docs
    _WORKER["strategy"] = strategy
    _WORKER["engines"] = {}
    _WORKER["indexes"] = {}


def _worker_index(doc: str, ordinal: Optional[int]) -> TreeIndex:
    """Resolve one payload entry to a (cached) full or shard index."""
    indexes: dict = _WORKER["indexes"]
    key = (doc, ordinal)
    index = indexes.get(key)
    if index is not None:
        return index
    entry = _WORKER["docs"][doc]
    if entry[0] == "store":
        _, path, ranges = entry
        full = indexes.get((doc, None))
        if full is None:
            from repro.store import open_document

            full = indexes[(doc, None)] = open_document(path).index
        index = (
            full if ordinal is None else full.shard_slice(*ranges[ordinal])
        )
    else:
        _, full_index, shards = entry
        index = full_index if ordinal is None else shards[ordinal].index
    indexes[key] = index
    return index


def _worker_engine(doc: str, ordinal: Optional[int]) -> Engine:
    engines: dict = _WORKER["engines"]
    key = (doc, ordinal)
    engine = engines.get(key)
    if engine is None:
        engine = Engine(
            _worker_index(doc, ordinal), strategy=_WORKER["strategy"]
        )
        engines[key] = engine
    return engine


#: Worker-side compiled-path cache, keyed by query string: the same
#: rewritten query arrives once per shard per batch, and re-running
#: ``parse_xpath`` for each was pure repeated work in the hot loop.
#: LRU-bounded (``REPRO_PATH_CACHE_SIZE``) -- a long-lived process
#: worker under query churn must not grow one AST per distinct query
#: forever; ``_WORKER_PATHS.cache_info()`` exposes the eviction count.
_WORKER_PATHS = LRUPathCache()


def _worker_path(path_str: str) -> Path:
    path = _WORKER_PATHS.get(path_str)
    if path is None:
        path = parse_xpath(path_str)
        _WORKER_PATHS.put(path_str, path)
    return path


def _worker_run(
    doc: str, ordinal: Optional[int], offset: int, path_strs: Tuple[str, ...]
) -> Tuple[List[int], dict, bool]:
    """One pool task: run rewritten paths on a shard (or the whole doc)."""
    engine = _worker_engine(doc, ordinal)
    paths = [_worker_path(p) for p in path_strs]
    ids, stats, accepted = _run_paths(engine, paths, offset)
    return ids, stats.snapshot(), accepted


# -- the service ------------------------------------------------------------


class QueryService:
    """Parallel batch/broadcast execution over a workspace's documents.

    Parameters
    ----------
    workspace:
        The :class:`~repro.engine.workspace.Workspace` whose documents
        (and shared compiled-query cache, for the thread executor) the
        service uses.
    jobs:
        Worker count (default: ``os.cpu_count()``).  ``jobs=1`` still
        routes through the service machinery but runs tasks inline.
    shards:
        Target shard count per document (default ``2 * jobs``, for
        scheduling slack); capped at the number of top-level children.
    executor:
        ``"thread"`` (default) shares shard engines and the workspace's
        compiled-query cache across pool threads -- the right choice
        when evaluation releases the GIL or tasks interleave with I/O.
        ``"process"`` starts per-batch workers that rebuild engines
        from the picklable shard indexes (legacy; kept for
        comparison).  ``"pool"`` keeps a persistent
        :class:`~repro.engine.pool.WorkerPool` of shared-memory worker
        processes alive across batches: warm engines and compiled
        paths, zero-copy mmap reopens of store bundles, one shared
        task queue with steal accounting, and generation-versioned
        cache invalidation that survives store mutations without a
        pool rebuild.  Unlike the others, ``"pool"`` uses its worker
        processes even at ``jobs=1`` (the persistence is the point).
    mp_start_method:
        Start method for the process pool (``"fork"``, ``"spawn"``,
        ``"forkserver"``); ``None`` uses the platform default --
        forking a process that already runs threads is unsafe, so the
        service never second-guesses the platform here.  Under spawn
        the shard payload travels by pickle and workers re-import the
        registry, so strategies registered at runtime need ``fork``.

    Results are byte-identical to the serial :class:`Workspace` paths:
    ``select_many``/``select_all`` return the same shapes, and
    :meth:`execute` returns an :class:`ExecutionResult` whose ``stats``
    aggregate every shard's counters (plus the root probe's).
    """

    def __init__(
        self,
        workspace: "Workspace",
        *,
        jobs: Optional[int] = None,
        shards: Optional[int] = None,
        executor: str = "thread",
        mp_start_method: Optional[str] = None,
    ) -> None:
        if executor not in ("thread", "process", "pool"):
            raise ValueError(
                f"executor must be 'thread', 'process' or 'pool', "
                f"got {executor!r}"
            )
        self.workspace = workspace
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.shard_target = shards if shards is not None else 2 * self.jobs
        self.executor = executor
        self.mp_start_method = mp_start_method
        self._shards: Dict[str, List[Shard]] = {}
        self._plans: Dict[str, ShardQueryPlan] = {}
        self._shard_engines: Dict[Tuple[str, int], Engine] = {}
        self._pool = None
        self._pool_docs: Optional[Tuple[str, ...]] = None
        # Pool-executor state: which documents the persistent pool's
        # static payload covers, and a per-document version counter the
        # workers compare against (generation invalidation).
        self._pool_static: Tuple[str, ...] = ()
        self._doc_versions: Dict[str, int] = {}
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------

    @staticmethod
    def _shutdown_pool(pool) -> None:
        """Stop any pool flavour: executors shut down, WorkerPools close."""
        if pool is None:
            return
        if hasattr(pool, "shutdown"):
            pool.shutdown(wait=True)
        else:
            pool.close()

    def close(self) -> None:
        """Shut down the worker pool (idempotent).

        For the persistent ``pool`` executor this joins (then, past a
        timeout, terminates) every worker process -- after
        :meth:`close`, :meth:`Workspace.close`, or a daemon's SIGTERM
        drain, no orphaned workers survive.  Garbage collection of an
        unclosed service is backstopped by the pool's own finalizer
        (:class:`~repro.engine.pool.WorkerPool` terminates its
        processes when collected).
        """
        with self._lock:
            pool, self._pool = self._pool, None
            self._pool_docs = None
            self._pool_static = ()
        self._shutdown_pool(pool)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def invalidate(self, name: str) -> None:
        """Forget every cache derived from document ``name``.

        Called by :meth:`Workspace.add`/:meth:`Workspace.remove`/
        :meth:`Workspace.swap_stored` so a removed or re-registered
        document can never be answered from stale shards.  Per-batch
        process pools are torn down (their workers hold a copy of the
        old shard payload); the thread pool keeps no document state and
        survives.  The persistent ``pool`` executor survives *store*
        mutations without a rebuild: the document's version counter is
        bumped, every future task carries it, and each worker drops its
        caches for that document (and reopens the bundle at its current
        generation) on the first version mismatch -- unrelated
        documents stay warm.  Only an in-memory document (part of the
        pool's start-time payload) forces a pool rebuild.
        """
        stale_pool = None
        with self._lock:
            self._shards.pop(name, None)
            for key in [k for k in self._shard_engines if k[0] == name]:
                del self._shard_engines[key]
            self._doc_versions[name] = self._doc_versions.get(name, 0) + 1
            if self._pool is not None:
                if self.executor == "process":
                    stale_pool, self._pool = self._pool, None
                    self._pool_docs = None
                elif self.executor == "pool" and name in self._pool_static:
                    stale_pool, self._pool = self._pool, None
                    self._pool_static = ()
        self._shutdown_pool(stale_pool)

    # -- sharding -----------------------------------------------------------

    def doc_shards(self, name: str) -> List[Shard]:
        """The (cached) shards of a registered document."""
        with self._lock:
            return self._shards_locked(name)

    def _shards_locked(self, name: str) -> List[Shard]:
        """Compute-and-cache shards; the service lock must be held."""
        shards = self._shards.get(name)
        if shards is None:
            index = self.workspace.engine(name).index
            shards = shard_document(index, parts=self.shard_target)
            self._shards[name] = shards
        return shards

    def _plan(self, query: Query) -> ShardQueryPlan:
        qkey = query if isinstance(query, str) else str(query)
        with self._lock:
            plan = self._plans.get(qkey)
            if plan is None:
                plan = plan_shard_query(query)
                self._plans[qkey] = plan
        return plan

    def _shard_engine(self, doc: str, shard: Shard) -> Engine:
        key = (doc, shard.ordinal)
        with self._lock:
            engine = self._shard_engines.get(key)
            if engine is None:
                engine = Engine(
                    shard.index,
                    strategy=self.workspace.strategy,
                    cache=self.workspace.cache,
                )
                self._shard_engines[key] = engine
        return engine

    # -- pool ---------------------------------------------------------------

    def _get_pool(self):
        if self.executor == "thread":
            with self._lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.jobs, thread_name_prefix="repro-qs"
                    )
                return self._pool
        if self.executor == "pool":
            return self._get_worker_pool()
        docs = tuple(self.workspace.documents())
        with self._lock:
            if self._pool is not None and self._pool_docs != docs:
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._pool is None:
                self._pool = self._make_process_pool(docs)
                self._pool_docs = docs
            return self._pool

    def ensure_pool(self):
        """Build the worker pool eagerly (idempotent).

        Long-lived hosts (the serve daemon) call this at startup, while
        the process is still single-threaded -- forking workers before
        any event loop or request threads exist sidesteps the classic
        fork-after-threads hazards.  Returns the pool, or ``None`` when
        this configuration runs inline.
        """
        if self.jobs > 1 or self.executor == "pool":
            return self._get_pool()
        return None

    def pool_stats(self) -> Optional[dict]:
        """The persistent pool's health snapshot (``None`` otherwise)."""
        with self._lock:
            pool = self._pool
        if pool is None or not hasattr(pool, "stats"):
            return None
        return pool.stats()

    def _is_static(self, name: str) -> bool:
        """True when ``name`` has no bundle path to ship (in-memory)."""
        index = self.workspace.engine(name).index
        return getattr(index, "store_path", None) is None

    def _get_worker_pool(self):
        static = tuple(
            name
            for name in self.workspace.documents()
            if self._is_static(name)
        )
        stale = None
        with self._lock:
            if self._pool is not None and self._pool_static != static:
                stale, self._pool = self._pool, None
                self._pool_static = ()
        self._shutdown_pool(stale)
        with self._lock:
            if self._pool is None:
                payload = {}
                for name in static:
                    index = self.workspace.engine(name).index
                    payload[name] = (
                        "index",
                        index,
                        self._shards_locked(name),
                    )
                self._pool = WorkerPool(
                    workers=self.jobs,
                    strategy=self.workspace.strategy,
                    static_docs=payload,
                    mp_start_method=self.mp_start_method,
                )
                self._pool_static = static
            return self._pool

    def _pool_descriptor(self, name: str) -> tuple:
        """How a pool worker materializes (and version-checks) ``name``.

        Store-backed documents ship their bundle path + shard ranges +
        version on every task (a few bytes); workers reopen the mmap
        themselves and the OS page cache shares the physical pages.
        In-memory documents were shipped at pool start and are named by
        version only.
        """
        index = self.workspace.engine(name).index
        store_path = getattr(index, "store_path", None)
        with self._lock:
            version = self._doc_versions.get(name, 0)
            if store_path is not None:
                shards = self._shards_locked(name)
                return (
                    "store",
                    store_path,
                    tuple((s.lo, s.hi) for s in shards),
                    version,
                )
        return ("static", version)

    def _payload_entry(self, name: str) -> tuple:
        """The picklable worker payload for one document.

        Store-backed documents (opened via
        :meth:`Workspace.open_store` / :func:`repro.store.open_document`)
        ship only their bundle path plus the shard boundaries -- workers
        reopen the memory-mapped arrays themselves, so the pickle is a
        few bytes however large the document is.
        """
        index = self.workspace.engine(name).index
        shards = self._shards_locked(name)
        store_path = getattr(index, "store_path", None)
        if store_path is not None:
            return ("store", store_path, [(s.lo, s.hi) for s in shards])
        return ("index", index, shards)

    def _make_process_pool(self, docs: Tuple[str, ...]):
        import multiprocessing

        from concurrent.futures import ProcessPoolExecutor

        payload = {name: self._payload_entry(name) for name in docs}
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            # None = the platform default start method; see __init__.
            mp_context=multiprocessing.get_context(self.mp_start_method),
            initializer=_worker_init,
            initargs=(payload, self.workspace.strategy),
        )

    # -- execution core ------------------------------------------------------

    def execute(self, query: Query, document: str) -> ExecutionResult:
        """Run one query on one document; merged per-shard result."""
        return self._run_batch([document], [query])[document][
            self._qkey(query)
        ]

    def select(self, query: Query, document: str) -> List[int]:
        """Selected node ids of ``query`` on the named document."""
        return list(self.execute(query, document).ids)

    def select_many(
        self, queries: Iterable[Query], document: Optional[str] = None
    ) -> Dict[str, object]:
        """Parallel counterpart of :meth:`Workspace.select_many`."""
        queries = list(queries)
        if document is not None:
            results = self._run_batch([document], queries)[document]
            return {k: list(r.ids) for k, r in results.items()}
        out = {}
        all_results = self._run_batch(self.workspace.documents(), queries)
        for name, results in all_results.items():
            out[name] = {k: list(r.ids) for k, r in results.items()}
        return out

    def select_all(self, query: Query) -> Dict[str, List[int]]:
        """Parallel counterpart of :meth:`Workspace.select_all`."""
        results = self._run_batch(self.workspace.documents(), [query])
        qkey = self._qkey(query)
        return {name: list(res[qkey].ids) for name, res in results.items()}

    def count_all(self, query: Query) -> Dict[str, int]:
        """Result cardinality per document, computed on the pool."""
        results = self._run_batch(self.workspace.documents(), [query])
        qkey = self._qkey(query)
        return {name: len(res[qkey].ids) for name, res in results.items()}

    @staticmethod
    def _qkey(query: Query) -> str:
        return query if isinstance(query, str) else str(query)

    def plan_report(self, query: Query, document: str) -> dict:
        """How ``query`` runs on ``document`` under sharding *and* planning.

        Combines the shard rewrite decision with what each shard
        engine's strategy resolution (the ``auto`` planner, when the
        workspace uses it) picked for every rewritten path.  Because a
        shard carries its own sliced label index, per-shard planners see
        per-shard selectivities -- the same query may execute vectorized
        on a dense shard and node-at-a-time on a sparse one.
        """
        plan = self._plan(query)
        report: dict = {
            "query": plan.query,
            "strategy": self.workspace.strategy,
            "shardable": plan.shardable,
        }
        if not plan.shardable:
            report["reason"] = plan.reason
            engine = self.workspace.engine(document)
            report["whole_document"] = _describe_prepared(
                engine.prepare(plan.path)
            )
            return report
        shard_paths = plan.shard_paths(root_gate=True)
        shards = []
        for shard in self.doc_shards(document):
            engine = self._shard_engine(document, shard)
            shards.append(
                {
                    "ordinal": shard.ordinal,
                    "nodes": len(shard),
                    "paths": [
                        _describe_prepared(engine.prepare(p))
                        for p in shard_paths
                    ],
                }
            )
        report["shards"] = shards
        return report

    def _run_batch(
        self, doc_names: Sequence[str], queries: Sequence[Query]
    ) -> Dict[str, Dict[str, ExecutionResult]]:
        """Fan out a (documents x queries) batch; gather merged results."""
        qkeys: List[str] = []
        paths: Dict[str, Query] = {}
        for q in queries:
            k = self._qkey(q)
            if k not in paths:
                qkeys.append(k)
                paths[k] = q
        # Validate every document name up front (fail before fan-out).
        engines = {name: self.workspace.engine(name) for name in doc_names}
        if not qkeys:
            return {name: {} for name in doc_names}
        pool = (
            self._get_pool()
            if (self.jobs > 1 or self.executor == "pool")
            else None
        )
        # (doc, qkey) -> list of ordered parts; each part is either an
        # ExecutionResult or a pending task exposing .result().
        pending: Dict[Tuple[str, str], List[object]] = {}
        # Pool executor: tasks accumulate here across the whole batch so
        # one submit_many call can chunk cheap queries *together* (fewer
        # IPC messages) before any worker starts pulling.
        sink: Optional[List[_DeferredPart]] = (
            [] if self.executor == "pool" and pool is not None else None
        )
        for name in doc_names:
            shards = self.doc_shards(name)
            for qkey in qkeys:
                plan = self._plan(paths[qkey])
                pending[(name, qkey)] = self._submit_query(
                    pool, name, engines[name], shards, plan, sink
                )
        if sink:
            futures = pool.submit_many([part.task for part in sink])
            for part, future in zip(sink, futures):
                part.inner = future
        out: Dict[str, Dict[str, ExecutionResult]] = {}
        for name in doc_names:
            per_doc: Dict[str, ExecutionResult] = {}
            for qkey in qkeys:
                parts = [
                    part
                    if isinstance(part, ExecutionResult)
                    else part.result()
                    for part in pending[(name, qkey)]
                ]
                per_doc[qkey] = (
                    parts[0]
                    if len(parts) == 1
                    else ExecutionResult.merge(parts)
                )
            out[name] = per_doc
        return out

    def _submit_query(
        self,
        pool,
        doc: str,
        engine: Engine,
        shards: List[Shard],
        plan: ShardQueryPlan,
        sink: Optional[List["_DeferredPart"]] = None,
    ) -> List[object]:
        """Submit one (document, query) to the pool; ordered result parts."""
        resolved = registry.resolve(self.workspace.strategy, plan.path)
        if not getattr(resolved, "parallel_safe", True):
            # The strategy keeps run state on itself: run in this thread.
            return [engine.execute(plan.path)]
        if sink is not None:
            return self._submit_query_pool(doc, engine, shards, plan, sink)
        if not plan.shardable or not shards:
            if plan.shardable:
                # Degenerate document (bare root): the root gate is the
                # whole answer -- see the module docstring.
                return [self._root_part(engine, plan)[1]]
            return [self._submit_whole(pool, doc, engine, plan)]
        gate, root_part = self._root_part(engine, plan)
        shard_paths = plan.shard_paths(root_gate=gate)
        parts: List[object] = [root_part]
        if not shard_paths:
            return parts
        for shard in shards:
            parts.append(
                self._submit_shard(pool, doc, shard, shard_paths)
            )
        return parts

    def _submit_query_pool(
        self,
        doc: str,
        engine: Engine,
        shards: List[Shard],
        plan: ShardQueryPlan,
        sink: List["_DeferredPart"],
    ) -> List[object]:
        """Task-size-aware dispatch to the persistent worker pool.

        Cheap queries (small documents, unshardable paths, or a
        single-worker pool) run as one whole-document task -- the pool
        chunks several of them into one IPC message.  An expensive
        shardable query on a large document (>= ``POOL_SPLIT_NODES``
        nodes) splits by shard so idle workers can steal its pieces;
        the root gate still resolves serially in the parent, exactly as
        in the static executors.
        """
        split = (
            plan.shardable
            and bool(shards)
            and self.jobs > 1
            and engine.index.tree.n >= POOL_SPLIT_NODES
        )
        if not split:
            task = PoolTask(
                doc,
                self._pool_descriptor(doc),
                None,
                0,
                (plan.query,),
                cost=engine.index.tree.n,
            )
            return [self._defer(sink, task)]
        gate, root_part = self._root_part(engine, plan)
        shard_paths = plan.shard_paths(root_gate=gate)
        parts: List[object] = [root_part]
        if not shard_paths:
            return parts
        descriptor = self._pool_descriptor(doc)
        path_strs = tuple(str(p) for p in shard_paths)
        for shard in shards:
            task = PoolTask(
                doc,
                descriptor,
                shard.ordinal,
                shard.offset,
                path_strs,
                cost=len(shard),
            )
            parts.append(self._defer(sink, task))
        return parts

    @staticmethod
    def _defer(sink: List["_DeferredPart"], task: PoolTask) -> "_DeferredPart":
        part = _DeferredPart(task)
        sink.append(part)
        return part

    def _root_part(
        self, engine: Engine, plan: ShardQueryPlan
    ) -> Tuple[bool, ExecutionResult]:
        """Resolve the root gate on the full document (serial, cheap).

        Returns ``(gate, part)``: the part carries the probe's counters,
        and its ids are ``(0,)`` exactly when the query's only step
        selects the root.  The gate itself stays out of the part's
        ``accepted`` flag -- a query whose root gate holds but that
        selects nothing must still merge to an unaccepted result, as in
        serial execution.
        """
        probe = engine.execute(plan.root_probe)
        gate = bool(probe.ids)
        selected = gate and plan.include_root_if_gate
        return gate, ExecutionResult(
            accepted=selected, ids=(0,) if selected else (), stats=probe.stats
        )

    def _submit_whole(
        self, pool, doc: str, engine: Engine, plan: ShardQueryPlan
    ) -> object:
        """A whole-document task (unshardable query): one pool slot."""
        if pool is None:
            return engine.execute(plan.path)
        if self.executor == "thread":
            return pool.submit(engine.execute, plan.path)
        future = pool.submit(_worker_run, doc, None, 0, (plan.query,))
        return _MappedFuture(future)

    def _submit_shard(
        self, pool, doc: str, shard: Shard, shard_paths: Tuple[Path, ...]
    ) -> object:
        if pool is None or self.executor == "thread":
            engine = self._shard_engine(doc, shard)
            if pool is None:
                ids, stats, accepted = _run_paths(
                    engine, shard_paths, shard.offset
                )
                return ExecutionResult(accepted, tuple(ids), stats)
            return _MappedFuture(
                pool.submit(_run_paths, engine, shard_paths, shard.offset)
            )
        future = pool.submit(
            _worker_run,
            doc,
            shard.ordinal,
            shard.offset,
            tuple(str(p) for p in shard_paths),
        )
        return _MappedFuture(future)


class _DeferredPart:
    """A pool task's slot in a query's ordered parts list.

    Created while the batch is still being planned; its
    :class:`~repro.engine.pool.PoolFuture` is bound (``inner``) after
    the whole batch goes through one ``submit_many`` call -- batch-wide
    submission is what lets the pool chunk cheap tasks from *different*
    queries into one IPC message.  Workers return
    ``(ids, stats-snapshot, accepted)``; an :class:`EvalStats` is
    rebuilt here so the merge path is uniform with the other executors.
    """

    __slots__ = ("task", "inner")

    def __init__(self, task: PoolTask) -> None:
        self.task = task
        self.inner = None

    def result(self, timeout=None) -> ExecutionResult:
        ids, stats, accepted = self.inner.result(timeout)
        if isinstance(stats, dict):
            stats = EvalStats(**stats)
        return ExecutionResult(accepted, tuple(ids), stats)


class _MappedFuture:
    """Adapts a worker future's raw tuple into an :class:`ExecutionResult`.

    Deliberately *not* a :class:`concurrent.futures.Future` subclass --
    a subclass would inherit ``done()``/``cancel()``/callback machinery
    operating on its own never-completed state.  This wrapper exposes
    exactly the one method the gather loop uses.

    Process workers return ``(ids, stats-snapshot, accepted)`` (an
    :class:`EvalStats` is rebuilt here so the merge path is uniform);
    thread workers running :func:`_run_paths` return
    ``(ids, EvalStats, accepted)`` directly.
    """

    __slots__ = ("_inner",)

    def __init__(self, inner) -> None:
        self._inner = inner

    def result(self, timeout=None) -> ExecutionResult:
        ids, stats, accepted = self._inner.result(timeout)
        if isinstance(stats, dict):
            stats = EvalStats(**stats)
        return ExecutionResult(accepted, tuple(ids), stats)
