"""Prepared queries: parse/compile once, execute many times.

:class:`PreparedQuery` is the unit of reuse in the redesigned API.  It
holds the parsed :class:`~repro.xpath.ast.Path`, the compiled
:class:`~repro.asta.automaton.ASTA` (when the resolved strategy consumes
one), and the strategy resolved through the registry's fallback chain.
``execute()`` allocates a fresh :class:`~repro.counters.EvalStats` per
call and returns an immutable :class:`ExecutionResult` -- there is no
shared mutable ``last_stats`` to race on.

:class:`CompiledQueryCache` is the compiled-automaton cache shared by a
:class:`~repro.engine.workspace.Workspace` across documents.  Wildcard
(``*``) node tests compile against the document's element-label
inventory, so the cache key is ``(query, label-inventory)``: documents
with identical inventories (in particular, all element-only documents)
share one compiled automaton per query.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.asta.automaton import ASTA
from repro.counters import EvalStats
from repro.xpath.ast import Path
from repro.xpath.compiler import compile_xpath

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.registry import Strategy


class CompiledQueryCache:
    """Query-string -> compiled ASTA cache, keyed by label inventory.

    Instruments :attr:`compilations` (cache misses that invoked the
    compiler) and :attr:`hits` so tests and benchmarks can assert that
    prepared queries and workspaces do zero redundant compilation.

    The cache is thread-safe: a :class:`~repro.engine.parallel.QueryService`
    shares one cache across all shard engines of a workspace, so two pool
    threads may ask for the same ``(query, inventory)`` key concurrently.
    Compilation happens under the lock -- the second thread blocks and
    then reads the first thread's automaton instead of compiling a
    duplicate.
    """

    def __init__(self) -> None:
        self._astas: Dict[Tuple[str, Optional[Tuple[str, ...]]], ASTA] = {}
        self._lock = threading.Lock()
        self.compilations = 0
        self.hits = 0

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]  # locks are not picklable; workers get a fresh one
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._astas)

    def cache_info(self) -> dict:
        """Compiled-cache statistics (the one shared stats literal that
        :meth:`Engine.cache_info` and :meth:`Workspace.cache_info`
        both surface)."""
        return {
            "size": len(self._astas),
            "compilations": self.compilations,
            "hits": self.hits,
        }

    @staticmethod
    def _key(
        query: Union[str, Path], wildcard_labels: Optional[List[str]]
    ) -> Tuple[str, Optional[Tuple[str, ...]]]:
        inventory = (
            None
            if wildcard_labels is None
            else tuple(sorted(set(wildcard_labels)))
        )
        return (query if isinstance(query, str) else str(query), inventory)

    def get(
        self,
        query: Union[str, Path],
        wildcard_labels: Optional[List[str]] = None,
        *,
        parsed: Optional[Path] = None,
    ) -> ASTA:
        """Compiled ASTA for ``query`` (compiling on first use).

        ``parsed`` supplies an already-parsed path so a cache miss does
        not re-parse the query string.
        """
        key = self._key(query, wildcard_labels)
        with self._lock:
            asta = self._astas.get(key)
            if asta is None:
                source = parsed if parsed is not None else query
                asta = compile_xpath(source, wildcard_labels=wildcard_labels)
                self._astas[key] = asta
                self.compilations += 1
            else:
                self.hits += 1
        return asta


@dataclass(frozen=True)
class ExecutionResult:
    """One execution's outcome: immutable, self-contained.

    ``stats`` belongs to this execution alone -- concurrent or repeated
    ``execute()`` calls never overwrite each other's counters (unlike the
    legacy ``Engine.last_stats``).
    """

    accepted: bool
    ids: Tuple[int, ...]
    stats: EvalStats

    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self) -> Iterator[int]:
        return iter(self.ids)

    @property
    def nodes(self) -> List[int]:
        """Selected node ids as a list (document order)."""
        return list(self.ids)

    @classmethod
    def merge(cls, results: Iterable["ExecutionResult"]) -> "ExecutionResult":
        """Aggregate per-shard results into one document-level result.

        The parts must arrive in document order with pairwise-disjoint,
        ascending id ranges (shards are preorder slices, so the parallel
        service guarantees this); ``ids`` then concatenate into document
        order with a linear sweep, no sort.  Every counter in ``stats``
        is summed across the parts; ``accepted`` is true when any part
        accepted.
        """
        stats = EvalStats()
        accepted = False
        ids: List[int] = []
        for part in results:
            accepted = accepted or part.accepted
            if part.ids:
                if ids and part.ids[0] <= ids[-1]:
                    raise ValueError(
                        "merge expects parts in disjoint ascending id ranges"
                    )
                ids.extend(part.ids)
            stats.merge(part.stats)
        return cls(accepted, tuple(ids), stats)


class PreparedQuery:
    """A query plan bound to one engine: parsed, compiled, resolved.

    Created by :meth:`repro.engine.api.Engine.prepare`.  Attributes:

    ``query``
        The original query (string form).
    ``path``
        The parsed :class:`~repro.xpath.ast.Path`.
    ``strategy``
        The registry strategy that will run it (after fallback
        resolution -- e.g. a backward-axis query prepared under
        ``optimized`` resolves to ``mixed``).
    ``artifacts``
        Per-plan scratch space for strategy-specific precomputation
        (the mixed strategy caches its forward-prefix automaton here,
        the deterministic strategy its minimal TDSTA, and the ``auto``
        planner its :class:`~repro.engine.planner.PlannerState` --
        choice, cost estimates, and the execution-feedback record --
        under the ``"planner"`` key).
    """

    __slots__ = (
        "engine",
        "query",
        "path",
        "strategy",
        "artifacts",
        "_asta",
        "_exec_lock",
        "_execute_impl",
    )

    def __init__(
        self,
        engine,
        query: Union[str, Path],
        path: Path,
        strategy: "Strategy",
    ) -> None:
        self.engine = engine
        self.query = query if isinstance(query, str) else str(query)
        self.path = path
        self.strategy = strategy
        self.artifacts: Dict[str, object] = {}
        self._asta: Optional[ASTA] = None
        self._exec_lock = threading.Lock()
        # The bound evaluation entry point.  Normally the resolved
        # strategy's own ``execute``; the ``auto`` planner rebinds it to
        # its converged delegate's ``execute`` once a plan freezes, so a
        # converged plan pays zero planner overhead per execution.
        self._execute_impl = strategy.execute
        # Duck-typed plugins may omit the optional protocol members.
        if getattr(strategy, "needs_asta", False):
            self._asta = engine.compile(query, parsed=path)
        prepare_hook = getattr(strategy, "prepare", None)
        if prepare_hook is not None:
            prepare_hook(self)

    @property
    def asta(self) -> ASTA:
        """The compiled ASTA (lazy for strategies that never need one --
        compiling a backward-axis path would be outside the forward
        fragment)."""
        if self._asta is None:
            self._asta = self.engine.compile(self.query, parsed=self.path)
        return self._asta

    def execute(self) -> ExecutionResult:
        """Run the plan; zero parsing/compilation happens here.

        Executions of *one* plan are serialized by a per-plan lock: the
        warmed tables in :attr:`artifacts` (memo entries, interned state
        sets) mutate during a run, so two pool threads landing on the
        same plan -- e.g. two batch queries whose shard rewrites
        coincide -- must not interleave.  Distinct plans (the parallel
        service's normal case: one per shard) run fully concurrently;
        the uncontended acquisition costs nanoseconds against
        millisecond-scale runs.
        """
        stats = EvalStats()
        with self._exec_lock:
            accepted, ids = self._execute_impl(
                self, self.engine.index, stats
            )
        return ExecutionResult(accepted, tuple(ids), stats)

    def select(self) -> List[int]:
        """Selected node ids, in document order (convenience)."""
        return list(self.execute().ids)

    def explain(self) -> str:
        """Describe the resolved strategy, compiled automaton, and plan."""
        from repro.engine import hybrid
        from repro.engine.mixed import forward_prefix_length

        lines = [f"strategy: {self.strategy.name}"]
        planner_state = self.artifacts.get("planner")
        if planner_state is not None and hasattr(planner_state, "choice"):
            lines.append(planner_state.choice.describe())
        path = self.path
        if path.has_backward_axes():
            active = getattr(planner_state, "active", None)
            executes_as = getattr(active, "name", self.strategy.name)
            if executes_as != "mixed":
                # The window strategy runs backward axes natively as
                # reverse containment -- no pipeline split, no automaton.
                lines.append(
                    f"{executes_as} plan: backward axes evaluated "
                    "natively (reverse window containment)"
                )
                return "\n".join(lines)
            k = forward_prefix_length(path)
            lines += [
                "mixed pipeline (backward axes):",
                f"  forward segment: {k} step(s) on the optimized engine",
                f"  remainder: {len(path.steps) - k} step(s) step-at-a-time",
            ]
            if k:
                prefix = Path(path.absolute, path.steps[:k])
                lines.append(self.engine.compile(prefix).describe())
            return "\n".join(lines)
        lines.append(self.asta.describe())
        if hybrid.is_hybrid_applicable(path):
            k = hybrid.plan_pivot(path, self.engine.index)
            step = path.steps[k]
            lines.append(
                f"hybrid plan: pivot step {k + 1} ({step.test}, "
                f"count {self.engine.index.count(step.test)})"
            )
        return "\n".join(lines)
