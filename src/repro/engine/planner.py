"""Cost-based adaptive planning: the ``auto`` strategy.

The PR 1 registry made strategies pluggable but left *choosing* one to
the user.  This module closes the loop: ``auto`` extracts features from
a ``(query, document)`` pair -- axes used, predicate shape, wildcard and
encoding flags, and per-label selectivities read for free from the
:class:`~repro.index.labels.LabelIndex` array lengths (or from the
document stats a :mod:`repro.store` bundle persisted at build time) --
prices each candidate strategy with a simple touch-count cost model,
and binds the cheapest one to the prepared plan.

The model is deliberately coarse; what keeps it honest is the *feedback
loop*: every execution's actual counters are folded back into the plan's
:class:`PlannerState`.  When the observed cost strays from the estimate
by more than :data:`REPLAN_FACTOR` (env ``REPRO_PLANNER_REPLAN_FACTOR``),
the plan is re-priced with observations overriding estimates, so a
mis-planned query converges onto the strategy that is actually cheapest
for *this* document -- the classic adaptive re-optimization loop, at
plan-cache granularity.  Candidates the model cannot separate (within
:data:`TRIAL_FACTOR` of each other) are resolved empirically instead: a
repeatedly-executed plan runs each near-tie a couple of times
(*wall-clock trials*) and commits to the measured winner.  Once a plan
has converged it *freezes* -- dispatch is handed straight to the winning
strategy, so a steady-state execution pays zero planner overhead.

Cost units are "weighted element touches": one numpy array element
costs 1, one interpreted per-node automaton step costs
:data:`NODE_WEIGHT`, and every vectorized pass pays a fixed
:data:`VEC_CALL` dispatch overhead (what makes node-at-a-time win on
tiny documents).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine import registry
from repro.engine.registry import StrategyBase, register_strategy
from repro.index.jumping import TreeIndex
from repro.xpath.ast import (
    Axis,
    Path,
    Pred,
    PredAnd,
    PredNot,
    PredOr,
    PredPath,
)

#: Strategies the planner prices against each other.  All accept the
#: whole forward fragment through their fallback chains, so the chosen
#: name is always executable.
CANDIDATES: Tuple[str, ...] = ("vectorized", "window", "optimized", "hybrid")

#: Interpreted per-node work, in units of one numpy array-element touch.
NODE_WEIGHT = 24.0

#: Fixed dispatch cost of one vectorized pass (ufunc setup, allocation).
VEC_CALL = 220.0

#: Re-plan when |observed / estimated| leaves [1/f, f].
REPLAN_FACTOR = float(os.environ.get("REPRO_PLANNER_REPLAN_FACTOR", "4.0"))

#: Freeze a plan (stop feedback bookkeeping) after this many consecutive
#: executions without a strategy switch -- keeps the planner's per-call
#: overhead off the hot path of converged micro-queries.
CONVERGED_RUNS = 3

#: Candidates whose estimate is within this factor of the cheapest one
#: are *near-ties*: the model cannot be trusted to separate them, so a
#: repeatedly-executed plan measures each (wall clock) before committing.
TRIAL_FACTOR = 64.0

#: Executions per trialed candidate (the first warms its caches; the
#: minimum is what competes).
TRIAL_RUNS = 2

#: Never trial a candidate whose estimated cost exceeds this many touch
#: units -- probing a catastrophically-priced strategy is not worth it.
TRIAL_COST_CAP = 2e6

#: Coarse prior on the fraction of a candidate array a depth-bucketed
#: window join touches on child / attribute / following-sibling steps:
#: the join probes only the depth buckets adjacent to the frontier, so
#: with labels spread over a handful of depths a quarter of the array is
#: a deliberately conservative guess.  Descendant and backward steps pay
#: the full array, like the vectorized evaluator.
WINDOW_DEPTH_FACTOR = 0.25


# -- feature extraction ------------------------------------------------------


@dataclass(frozen=True)
class QueryFeatures:
    """Everything the cost model reads, extracted in one pass.

    ``step_candidates`` holds the candidate-array length per location
    step (the per-label id-array sizes, summed for wildcard tests);
    ``pred_candidates`` the total candidate elements its predicate
    subtree touches.  Both come from O(1) ``LabelIndex`` lookups.
    """

    n: int
    height: int
    steps: int
    axes: Tuple[str, ...]
    wildcard_steps: int
    pred_depth: int
    pred_paths: int
    encoded: bool
    step_candidates: Tuple[int, ...]
    pred_candidates: Tuple[int, ...]
    descendant_steps: int
    min_candidates: int

    @property
    def total_candidates(self) -> int:
        return sum(self.step_candidates)

    @property
    def total_pred_candidates(self) -> int:
        return sum(self.pred_candidates)


def _element_count(index: TreeIndex) -> int:
    """Number of element nodes (the ``*`` test's candidate count)."""
    cached = getattr(index, "_planner_elem_count", None)
    if cached is None:
        tree = index.tree
        encoded = sum(
            len(index.labels.nodes_array(name))
            for name in tree.labels
            if name.startswith(("@", "#"))
        )
        cached = tree.n - int(encoded)
        index._planner_elem_count = cached
    return cached


def doc_height(index: TreeIndex) -> int:
    """The document height, from persisted store stats when available.

    A :mod:`repro.store` bundle records ``stats.height`` in its header
    at build time; a freshly parsed document pays one O(n) sweep, cached
    on the index.
    """
    stats = getattr(index, "doc_stats", None)
    if isinstance(stats, dict) and isinstance(stats.get("height"), int):
        return stats["height"]
    cached = getattr(index, "_planner_height", None)
    if cached is None:
        cached = index.tree.height()
        index._planner_height = cached
    return cached


def _test_candidates(index: TreeIndex, axis: Axis, test: str) -> int:
    """Candidate-array length of one step, priced through the *same*
    node-test resolution the vectorized evaluator executes
    (:func:`repro.engine.frontier.test_label_names`)."""
    from repro.engine.frontier import test_label_names

    tree = index.tree
    if test == "node()" and axis is not Axis.ATTRIBUTE:
        return tree.n
    if test == "*" and axis is not Axis.ATTRIBUTE:
        return _element_count(index)
    return sum(
        index.labels.count(name)
        for name in test_label_names(tree.labels, axis, test)
    )


def _pred_shape(
    index: TreeIndex, pred: Pred, depth: int
) -> Tuple[int, int, int]:
    """(candidate elements, max nesting depth, path count) of a predicate."""
    if isinstance(pred, (PredAnd, PredOr)):
        lc, ld, lp = _pred_shape(index, pred.left, depth)
        rc, rd, rp = _pred_shape(index, pred.right, depth)
        return lc + rc, max(ld, rd), lp + rp
    if isinstance(pred, PredNot):
        return _pred_shape(index, pred.inner, depth)
    if isinstance(pred, PredPath):
        touched = 0
        nested_depth = depth
        nested_paths = 1
        for step in pred.path.steps:
            touched += _test_candidates(index, step.axis, step.test)
            if step.predicate is not None:
                c, d, p = _pred_shape(index, step.predicate, depth + 1)
                touched += c
                nested_depth = max(nested_depth, d)
                nested_paths += p
        return touched, nested_depth, nested_paths
    raise AssertionError(pred)


def extract_features(path: Path, index: TreeIndex) -> QueryFeatures:
    """One-pass feature extraction for the cost model (O(query size))."""
    step_candidates: List[int] = []
    pred_candidates: List[int] = []
    axes: List[str] = []
    wildcards = 0
    pred_depth = 0
    pred_paths = 0
    descendants = 0
    for step in path.steps:
        axes.append(step.axis.value)
        if step.test_matches_any():
            wildcards += 1
        if step.axis is Axis.DESCENDANT:
            descendants += 1
        step_candidates.append(_test_candidates(index, step.axis, step.test))
        if step.predicate is not None:
            c, d, p = _pred_shape(index, step.predicate, 1)
            pred_candidates.append(c)
            pred_depth = max(pred_depth, d)
            pred_paths += p
        else:
            pred_candidates.append(0)
    tree = index.tree
    return QueryFeatures(
        n=tree.n,
        height=doc_height(index),
        steps=len(path.steps),
        axes=tuple(axes),
        wildcard_steps=wildcards,
        pred_depth=pred_depth,
        pred_paths=pred_paths,
        encoded=any(l.startswith(("@", "#")) for l in tree.labels),
        step_candidates=tuple(step_candidates),
        pred_candidates=tuple(pred_candidates),
        descendant_steps=descendants,
        min_candidates=(
            min(step_candidates) if step_candidates else 0
        ),
    )


# -- cost model --------------------------------------------------------------


def estimate_costs(path: Path, features: QueryFeatures) -> Dict[str, float]:
    """Estimated cost (weighted element touches) per candidate strategy.

    Monotone in the obvious knobs: more candidate elements, more steps,
    or more predicate work never *lowers* a strategy's estimate.
    """
    from repro.engine.frontier import is_vectorizable

    touches = features.total_candidates + features.total_pred_candidates
    ops = features.steps + features.pred_paths
    costs: Dict[str, float] = {}
    # Vectorized: every touch costs 1, plus a fixed per-pass dispatch.
    # Priced only inside its native fragment -- estimating a strategy
    # that would resolve away through its fallback chain would leave
    # the choice and the executing strategy out of sync (the feedback
    # loop keys observations by the *active* strategy's name).
    if is_vectorizable(path):
        costs["vectorized"] = VEC_CALL * (3 * ops) + float(touches)
    # Window joins: child / attribute / following-sibling steps probe
    # only the depth buckets adjacent to the frontier (a fraction of the
    # candidate array, WINDOW_DEPTH_FACTOR), descendant and backward
    # steps pay the full array, and predicates cost their candidate
    # arrays as in the vectorized match-set construction.  Priced inside
    # window's native fragment only, for the same feedback-keying reason
    # as vectorized.
    from repro.engine.window import is_window_evaluable

    if is_window_evaluable(path):
        step_touches = sum(
            cnt * WINDOW_DEPTH_FACTOR
            if axis in ("child", "attribute", "following-sibling")
            else float(cnt)
            for axis, cnt in zip(features.axes, features.step_candidates)
        )
        costs["window"] = (
            VEC_CALL * (3 * ops)
            + step_touches
            + float(features.total_pred_candidates)
        )
    # Node-at-a-time automaton run: jumping restricts the run to roughly
    # the same relevant elements, but each costs an interpreted step.
    # Existence predicates short-circuit on the first witness, bounded
    # here by one frontier's worth of probes per predicate path.
    # Backward-axis paths resolve away to the mixed pipeline, so pricing
    # "optimized" there would leave choice and executor out of sync.
    pred_opt = min(
        features.total_pred_candidates,
        (features.min_candidates + features.height)
        * max(1, features.pred_paths),
    )
    if not path.has_backward_axes():
        costs["optimized"] = NODE_WEIGHT * (
            features.total_candidates + pred_opt
        ) + NODE_WEIGHT * features.steps
    # Hybrid start-anywhere: only priced inside its fragment -- pivot
    # nodes climb O(height) ancestors (a vectorized pass per level),
    # then the suffix is collected with vectorized range slices.
    from repro.engine.hybrid import is_hybrid_applicable

    if is_hybrid_applicable(path):
        pivot = features.min_candidates
        costs["hybrid"] = (
            VEC_CALL * (features.height + features.steps)
            + float(pivot) * features.height
            + float(features.total_candidates - pivot)
            + features.total_pred_candidates
        )
    return costs


def _actual_cost(stats) -> float:
    """Observed cost of one execution, in the model's touch units.

    The counters mean different things per strategy -- array-element
    touches for the vectorized and hybrid evaluators (hybrid's suffix
    collection and prefix check are numpy passes too), interpreted
    per-node steps for the automaton engines -- so
    :meth:`PlannerState.observe` re-weights them via
    :data:`_OBSERVE_WEIGHT` before they are comparable.
    """
    return float(stats.visited + stats.index_probes + stats.jumps)


#: Weight of one counter unit per strategy, mapping observations into
#: the cost model's touch units (default: an interpreted per-node step).
_OBSERVE_WEIGHT = {"vectorized": 1.0, "hybrid": 1.0, "window": 1.0}


@dataclass
class PlanChoice:
    """The planner's verdict for one ``(query, document)`` pair."""

    strategy: str
    estimate: float
    costs: Dict[str, float]
    features: QueryFeatures

    def describe(self) -> str:
        lines = [
            f"planner: chose {self.strategy!r} "
            f"(estimated cost {self.estimate:,.0f} touches)",
            "  candidate costs:",
        ]
        for name, cost in sorted(self.costs.items(), key=lambda kv: kv[1]):
            marker = "*" if name == self.strategy else " "
            lines.append(f"  {marker} {name:11s} {cost:>14,.0f}")
        f = self.features
        lines.append(
            f"  features: n={f.n} height={f.height} steps={f.steps} "
            f"axes={'/'.join(f.axes)} wildcards={f.wildcard_steps} "
            f"pred_depth={f.pred_depth} "
            f"candidates={list(f.step_candidates)} "
            f"pred_candidates={list(f.pred_candidates)}"
        )
        return "\n".join(lines)


@dataclass
class PlannerState:
    """Per-plan adaptive state: the choice plus the feedback record."""

    choice: PlanChoice
    replan_factor: float = REPLAN_FACTOR
    runs: int = 0
    replans: int = 0
    observed: Dict[str, float] = field(default_factory=dict)
    active: object = None  # the bound Strategy instance
    frozen: bool = False
    wall: Dict[str, float] = field(default_factory=dict)
    pending_trials: List[str] = field(default_factory=list)
    explored: bool = True
    _stable_runs: int = 0

    @classmethod
    def plan(
        cls,
        path: Path,
        index: TreeIndex,
        replan_factor: float = REPLAN_FACTOR,
    ) -> "PlannerState":
        features = extract_features(path, index)
        costs = estimate_costs(path, features)
        name = min(costs, key=costs.get)
        state = cls(
            choice=PlanChoice(name, costs[name], costs, features),
            replan_factor=replan_factor,
        )
        # Schedule wall-clock trials for near-tie candidates: the model
        # separates strategies that differ by orders of magnitude, but a
        # few-x gap is within its error bars -- measure those instead.
        ties = [
            n
            for n in sorted(costs, key=costs.get)
            if costs[n] <= costs[name] * TRIAL_FACTOR
            and costs[n] <= TRIAL_COST_CAP
        ]
        if len(ties) > 1:
            state.pending_trials = [n for n in ties for _ in range(TRIAL_RUNS)]
            state.explored = False
        return state

    def record_wall(self, strategy_name: str, elapsed: float) -> None:
        prev = self.wall.get(strategy_name)
        if prev is None or elapsed < prev:
            self.wall[strategy_name] = elapsed

    def decide_from_trials(self) -> str:
        """Commit to the wall-clock winner once every trial has run.

        The winner's counter-observations replace its estimate in the
        cost table so the counter-feedback backstop starts in band
        (otherwise a deliberately-coarse estimate could immediately
        un-do the measured decision).
        """
        self.explored = True
        winner = min(self.wall, key=self.wall.get)
        costs = dict(self.choice.costs)
        costs.update(self.observed)
        self.choice = PlanChoice(
            winner, costs.get(winner, 1.0), costs, self.choice.features
        )
        return winner

    def observe(
        self, strategy_name: str, stats, adapt: bool = True
    ) -> Optional[str]:
        """Fold one execution's counters back in; maybe re-choose.

        Returns the *new* strategy name when the observation pushed the
        plan to a different choice, else ``None``.  Observed costs are
        re-weighted into model units (:data:`_OBSERVE_WEIGHT`) and
        replace the estimates of strategies that have actually run.
        ``adapt=False`` records the observation without the re-choice
        side effects (the wall-clock trial phase books its runs this
        way -- trials decide by measurement, and a transient re-choice
        would show up as a spurious ``replans`` in ``plan explain``).
        """
        self.runs += 1
        weight = _OBSERVE_WEIGHT.get(strategy_name, NODE_WEIGHT)
        actual = _actual_cost(stats) * weight
        seen = self.observed.get(strategy_name)
        self.observed[strategy_name] = (
            actual if seen is None else min(seen, actual)
        )
        if not adapt:
            return None
        estimate = self.choice.costs.get(strategy_name)
        if estimate is None or strategy_name != self.choice.strategy:
            return None
        factor = self.replan_factor
        in_band = estimate / factor <= max(actual, 1.0) <= estimate * factor
        if in_band:
            self._stable_runs += 1
            if self._stable_runs >= CONVERGED_RUNS:
                self.frozen = True
            return None
        self._stable_runs = 0
        # Re-price with observations overriding estimates.
        costs = dict(self.choice.costs)
        costs.update(self.observed)
        name = min(costs, key=costs.get)
        self.choice = PlanChoice(
            name, costs[name], costs, self.choice.features
        )
        if name != strategy_name:
            self.replans += 1
            return name
        return None

    def snapshot(self) -> dict:
        """JSON-friendly view (surfaced by ``repro plan explain``)."""
        return {
            "strategy": self.choice.strategy,
            "estimate": round(self.choice.estimate, 1),
            "costs": {
                k: round(v, 1) for k, v in self.choice.costs.items()
            },
            "runs": self.runs,
            "replans": self.replans,
            "frozen": self.frozen,
            "explored": self.explored,
            "trials_pending": len(self.pending_trials),
            "observed": {
                k: round(v, 1) for k, v in self.observed.items()
            },
            "wall_ms": {
                k: round(v * 1000, 4) for k, v in self.wall.items()
            },
        }


# -- the strategy ------------------------------------------------------------


@register_strategy
class AutoStrategy(StrategyBase):
    """Cost-based planner: picks the cheapest strategy per query+document."""

    name = "auto"
    fallback = "mixed"  # relative backward paths: route directly
    needs_asta = False
    parallel_safe = True
    replan_factor = REPLAN_FACTOR

    def supports(self, path: Path) -> bool:
        # Forward paths are planned across the full candidate set;
        # absolute backward paths are planned too now that the window
        # strategy evaluates ancestor/parent natively (the cost table
        # then prices window alone -- every other candidate would
        # resolve away through its fallback chain).
        from repro.engine.window import is_window_evaluable

        return not path.has_backward_axes() or is_window_evaluable(path)

    def prepare(self, plan) -> None:
        state = PlannerState.plan(
            plan.path, plan.engine.index, replan_factor=self.replan_factor
        )
        plan.artifacts["planner"] = state
        self._bind(plan, state, state.choice.strategy)
        self._freeze_if_sole_candidate(plan, state)

    @staticmethod
    def _freeze_if_sole_candidate(plan, state: PlannerState) -> None:
        """A one-entry cost table (backward paths price ``window``
        alone) has nothing to trial or adapt: freeze at prepare time so
        every execution skips the planner wrapper entirely.  Left
        unfrozen, such a plan could *never* converge -- an estimate
        persistently out of the feedback band keeps resetting the
        convergence counter even though no alternative exists."""
        if len(state.choice.costs) == 1:
            state.frozen = True
            plan._execute_impl = state.active.execute

    def _bind(self, plan, state: PlannerState, name: str) -> None:
        """Resolve and warm the chosen strategy on the plan.

        ``resolve`` (not ``get_strategy``): a choice outside the target's
        native fragment walks its declared fallback chain, exactly as an
        explicit ``--strategy`` request would.
        """
        strategy = registry.resolve(name, plan.path)
        state.active = strategy
        if getattr(strategy, "needs_asta", False):
            plan.asta  # compile now so execute() stays compilation-free
        hook = getattr(strategy, "prepare", None)
        if hook is not None:
            hook(plan)

    def _state(self, plan) -> PlannerState:
        state = plan.artifacts.get("planner")
        if not isinstance(state, PlannerState):
            # A plan constructed without the prepare hook (duck-typed
            # callers): plan on first execution.
            self.prepare(plan)
            state = plan.artifacts["planner"]
        return state

    def execute(self, plan, index, stats):
        state = self._state(plan)
        if state.pending_trials:
            # Exploration: bind the next trial slot *before* running,
            # so each near-tie candidate executes exactly TRIAL_RUNS
            # times (the queue's first slots belong to the model's own
            # pick -- its first run doubles as the cache warm-up).
            nxt = state.pending_trials.pop(0)
            if nxt != state.active.name:
                self._bind(plan, state, nxt)
        t0 = time.perf_counter()
        result = state.active.execute(plan, index, stats)
        elapsed = time.perf_counter() - t0
        name = state.active.name
        state.record_wall(name, elapsed)
        if state.pending_trials:
            state.observe(name, stats, adapt=False)
            return result
        if not state.explored:
            state.observe(name, stats, adapt=False)
            planned = state.choice.strategy  # the model's pre-trial pick
            winner = state.decide_from_trials()
            if winner != planned:
                # Count only decisions that overturned the model -- the
                # rotation back from the last trialed strategy is not a
                # re-plan.
                state.replans += 1
            if winner != name:
                self._bind(plan, state, winner)
            return result
        switched = state.observe(name, stats)
        if switched is not None:
            self._bind(plan, state, switched)
        elif state.frozen:
            # Converged: hand the plan's dispatch straight to the
            # delegate so later executions skip this wrapper entirely
            # (safe: the caller holds the plan's execute lock, and a
            # frozen state takes no further observations anyway).
            plan._execute_impl = state.active.execute
        return result


def refresh_state(plan) -> bool:
    """Re-plan one prepared ``auto`` plan against *current* document
    statistics, discarding frozen dispatch and stale observations.

    A plan that converged against one generation of a document carries
    per-label selectivities (and possibly a frozen ``_execute_impl``
    delegate) that no longer describe the document after a store swap or
    an in-place mutation.  This rebuilds the :class:`PlannerState` from
    a fresh feature extraction, restores the planner wrapper as the
    plan's dispatch target, and re-binds the newly cheapest strategy --
    the warm compiled artifacts (ASTA, run tables) stay, only the
    adaptive state restarts.  Returns ``True`` when the plan carried a
    planner state (i.e. was prepared under ``auto``).
    """
    state = plan.artifacts.get("planner")
    if not isinstance(state, PlannerState):
        return False
    auto = plan.strategy
    if not isinstance(auto, AutoStrategy):
        auto = registry.get_strategy("auto")
    fresh = PlannerState.plan(
        plan.path,
        plan.engine.index,
        replan_factor=getattr(auto, "replan_factor", REPLAN_FACTOR),
    )
    plan.artifacts["planner"] = fresh
    plan._execute_impl = plan.strategy.execute  # undo a frozen delegate
    auto._bind(plan, fresh, fresh.choice.strategy)
    AutoStrategy._freeze_if_sole_candidate(plan, fresh)
    return True


def planner_fields(plan) -> dict:
    """The planner-specific fields of one prepared plan's description:
    ``{"planner": snapshot, "executes_as": name}`` when a planner state
    is attached, else ``{}``.  The single schema shared by
    ``repro plan explain`` and ``QueryService.plan_report``."""
    state = plan.artifacts.get("planner")
    if state is not None and hasattr(state, "snapshot"):
        return {
            "planner": state.snapshot(),
            "executes_as": getattr(state.active, "name", None),
        }
    return {}


def plan_explain(engine, query) -> dict:
    """The planner's verdict for ``query`` on ``engine``'s document.

    Prepares (or reuses) the plan under ``auto`` and returns its
    :meth:`PlannerState.snapshot` plus the resolved execution strategy
    -- what ``repro plan explain`` prints.
    """
    plan = engine.prepare(query, strategy="auto")
    qkey = query if isinstance(query, str) else str(query)
    out = {
        "query": qkey,
        "strategy": plan.strategy.name,
        "nodes": engine.tree.n,
    }
    fields = planner_fields(plan)
    if fields:
        out.update(fields)
    else:
        out["reason"] = (
            "outside the planned fragment (resolved through the "
            "fallback chain)"
        )
    return out
