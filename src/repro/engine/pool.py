"""Persistent shared-memory worker pool with query-granularity stealing.

:class:`WorkerPool` is the long-lived counterpart of the per-batch
process pool in :mod:`repro.engine.parallel`: worker *processes* that
survive across tasks, across batches, and across
:meth:`~repro.engine.parallel.QueryService.select_many` calls, pulling
work from one **shared task queue** instead of a static per-worker
shard assignment.  Three properties make it fast where the per-batch
pool was 0.65x serial:

- **Shared memory, not pickled payloads.**  Store-backed documents
  travel as ``(bundle path, shard ranges, generation)`` -- a few bytes
  -- and every worker reopens the same bundle zero-copy via
  ``np.load(mmap_mode="r")``; the OS page cache shares one set of
  physical pages across the whole pool.  In-memory documents ship once
  at pool start (copy-on-write under ``fork``).
- **Warm workers.**  Each worker keeps its engines, compiled XPath
  paths, prepared-plan LRUs and (under ``auto``) frozen planner
  verdicts **across tasks and batches**.  The second batch of a warm
  pool does zero re-parsing, zero re-compilation and zero re-planning;
  the per-subtask ``warm`` flag feeds the pool-wide warm-hit rate.
- **Dynamic scheduling.**  Tasks are enqueued at *query* granularity
  (cheap queries chunked together to amortize IPC; expensive ones
  pre-split by shard upstream) onto one shared queue.  Every chunk
  carries the worker id a static round-robin schedule would have
  assigned; any idle worker may take it instead, and executing a chunk
  off its home worker is counted as a **steal** -- the observable
  difference between dynamic and static scheduling.

Results travel back as compact ``int64`` id arrays (never trees, never
node objects), so a selective query's reply is a few cache lines of
pickle however large the document is.

Fault model
-----------

A worker killed mid-task (OOM, operator, chaos test) is detected by
liveness polling on the result-collector thread: the worker is
respawned, and every chunk it had claimed -- plus any chunk that may
have been lost in its queue window -- is re-enqueued **exactly once**
(``retried`` flag; duplicate completions are idempotently dropped).  A
chunk whose retry also dies fails its futures with
:class:`WorkerDiedError` instead of hanging the caller.  Workers check
the deterministic fault-injection site ``pool.task``
(:mod:`repro.faults`) before every subtask; under the ``fork`` start
method a plan active at spawn time is inherited by the workers, which
is how the chaos suite injects slow reads *inside* a worker.

Generation invalidation
-----------------------

Every subtask names the document *version* the parent expects
(monotonically bumped by
:meth:`~repro.engine.parallel.QueryService.invalidate`, which rides on
the store manifest's generation bumps via
``Workspace.swap_stored``/``add``/``remove``).  A worker whose cached
state for the document carries a different version drops that
document's engines, indexes and mmap handles and reopens the bundle
path -- which, after a ``DocumentStore.replace``, resolves to the new
generation.  Workers therefore can never serve a retired generation,
and unrelated documents stay warm across the swap.
"""

from __future__ import annotations

import itertools
import os
import queue as _queue
import threading
import time
import traceback
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Minimum per-chunk cost (in node-count units) -- chunks smaller than
#: this are IPC-bound, not compute-bound.
CHUNK_MIN_COST = int(os.environ.get("REPRO_POOL_CHUNK_COST", "16384"))
#: Target chunks per worker when work is plentiful: enough scheduling
#: slack that one slow chunk cannot convoy the batch.
CHUNK_SLACK = 4
#: Liveness-poll interval of the collector thread, seconds.
_POLL_S = 0.1

#: Bound on worker-side compiled-path caches (the persistent pool's
#: per-worker cache and the process executor's module-level cache) --
#: the ``FUSED_CACHE_SIZE``-style env knob.  Under query churn an
#: unbounded cache grows one parsed AST per distinct rewritten query
#: for the life of the worker.
PATH_CACHE_SIZE = int(os.environ.get("REPRO_PATH_CACHE_SIZE", "256"))


class LRUPathCache:
    """A tiny bounded mapping for worker-side compiled query paths.

    Plain OrderedDict recency tracking (the ``LabelIndex.fused`` idiom,
    minus the lock -- each cache is confined to one worker process or
    the process-executor's single initializer context).  Eviction and
    hit/miss counts are kept so the parent can surface cache pressure
    through :meth:`WorkerPool.stats` / ``pool_stats()``.
    """

    __slots__ = ("max_size", "_data", "hits", "misses", "evictions")

    def __init__(self, max_size: Optional[int] = None) -> None:
        from collections import OrderedDict

        self.max_size = PATH_CACHE_SIZE if max_size is None else max_size
        self._data: "OrderedDict" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key):
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
        return value

    def put(self, key, value) -> None:
        data = self._data
        data[key] = value
        data.move_to_end(key)
        while len(data) > self.max_size:
            data.popitem(last=False)
            self.evictions += 1

    def cache_info(self) -> dict:
        return {
            "size": len(self._data),
            "max_size": self.max_size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class PoolError(RuntimeError):
    """Base class for worker-pool failures."""


class PoolClosedError(PoolError):
    """The pool was shut down while (or before) a task ran."""


class WorkerDiedError(PoolError):
    """A task's worker died, and its single retry died too."""


class PoolTaskError(PoolError):
    """A task raised inside its worker; the message carries the cause."""


@dataclass(frozen=True)
class PoolTask:
    """One unit of pool work: rewritten paths against one (sub)document.

    ``descriptor`` tells the worker how to materialize the document:
    ``("store", bundle_path, shard_ranges, version)`` for store-backed
    documents (reopened zero-copy in the worker) or ``("static",
    version)`` for in-memory documents shipped at pool start.
    ``ordinal`` selects a shard (``None`` = the whole document) and
    ``offset`` maps shard-local ids back to document ids.  ``cost`` is
    the scheduling estimate (node count) chunking balances on.
    """

    doc: str
    descriptor: tuple
    ordinal: Optional[int]
    offset: int
    path_strs: Tuple[str, ...]
    cost: int = 1


class PoolFuture:
    """Minimal single-assignment future for one :class:`PoolTask`.

    Exposes exactly the ``result()`` surface the service's gather loop
    uses; resolved by the pool's collector thread.
    """

    __slots__ = ("_event", "_value", "_exc")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value = None
        self._exc: Optional[BaseException] = None

    def _set(self, value) -> None:
        if not self._event.is_set():
            self._value = value
            self._event.set()

    def _fail(self, exc: BaseException) -> None:
        if not self._event.is_set():
            self._exc = exc
            self._event.set()

    def result(self, timeout: Optional[float] = None):
        if not self._event.wait(timeout):
            raise TimeoutError("pool task did not complete in time")
        if self._exc is not None:
            raise self._exc
        return self._value


@dataclass
class _Chunk:
    """Parent-side bookkeeping for one enqueued chunk of tasks."""

    chunk_id: int
    affinity: int
    tasks: List[PoolTask]
    futures: List[PoolFuture]
    claimed_by: Optional[int] = None
    started: bool = False
    retried: bool = False
    done: bool = False
    results: list = field(default_factory=list)


def plan_chunks(
    tasks: Sequence[PoolTask],
    workers: int,
    *,
    min_cost: int = CHUNK_MIN_COST,
    slack: int = CHUNK_SLACK,
) -> List[List[PoolTask]]:
    """Pack tasks into chunks that amortize IPC without convoying.

    The chunk budget adapts to the batch: ``max(min_cost,
    total_cost / (workers * slack))``, so a plentiful batch yields at
    least ``slack`` chunks per worker (scheduling freedom for the
    shared queue) while a tiny batch still coalesces into few messages.
    Chunks never span documents (worker cache locality), preserve
    submission order (the parent's merge relies on per-task futures,
    not chunk order), and a task at or above the budget travels alone.
    With a single worker there is nobody to steal from, so the budget
    is unbounded and the batch collapses to one chunk per document --
    the minimum number of IPC round trips.
    """
    if not tasks:
        return []
    total = sum(t.cost for t in tasks)
    if workers == 1:
        budget = total
    else:
        budget = max(min_cost, total // max(1, workers * slack))
    chunks: List[List[PoolTask]] = []
    current: List[PoolTask] = []
    current_cost = 0
    for task in tasks:
        if current and (
            current[0].doc != task.doc or current_cost + task.cost > budget
        ):
            chunks.append(current)
            current, current_cost = [], 0
        current.append(task)
        current_cost += task.cost
    if current:
        chunks.append(current)
    return chunks


# -- worker side --------------------------------------------------------------


class _WorkerState:
    """Everything one worker process keeps warm across tasks."""

    def __init__(self, wid: int, static_docs: dict, strategy: str) -> None:
        self.wid = wid
        self.static = static_docs
        self.strategy = strategy
        self.versions: Dict[str, int] = {}
        self.indexes: dict = {}
        self.engines: dict = {}
        self.stored: dict = {}
        self.paths = LRUPathCache()
        self._evictions_reported = 0

    def _purge_doc(self, doc: str) -> None:
        """Drop every cache derived from ``doc`` (generation change)."""
        for key in [k for k in self.engines if k[0] == doc]:
            del self.engines[key]
        for key in [k for k in self.indexes if k[0] == doc]:
            del self.indexes[key]
        stored = self.stored.pop(doc, None)
        if stored is not None:
            try:
                # Engines and indexes are gone: the mmap handles of the
                # retired generation can be released for real.
                stored.close()
            except Exception:
                pass

    def _index(self, doc: str, descriptor: tuple, ordinal: Optional[int]):
        key = (doc, ordinal)
        index = self.indexes.get(key)
        if index is not None:
            return index
        if descriptor[0] == "store":
            _, path, ranges, _version = descriptor
            full = self.indexes.get((doc, None))
            if full is None:
                from repro.store import open_document

                document = open_document(path)
                self.stored[doc] = document
                full = self.indexes[(doc, None)] = document.index
            index = full if ordinal is None else full.shard_slice(*ranges[ordinal])
        else:
            _, full, shards = self.static[doc]
            index = full if ordinal is None else shards[ordinal].index
        self.indexes[key] = index
        return index

    def run(self, subtask: tuple) -> tuple:
        """One subtask; returns
        ``(int64 ids, stats dict, accepted, warm, path evictions)`` --
        the last element is the delta of compiled-path LRU evictions
        since this worker's previous report (the parent accumulates it
        into the pool-wide ``path_evictions`` counter)."""
        from repro import faults
        from repro.engine.api import Engine
        from repro.engine.parallel import _run_paths
        from repro.xpath.parser import parse_xpath

        doc, descriptor, ordinal, offset, path_strs = subtask
        version = descriptor[-1] if descriptor[0] == "store" else descriptor[1]
        warm = True
        if self.versions.get(doc) != version:
            self._purge_doc(doc)
            self.versions[doc] = version
            warm = False
        engine = self.engines.get((doc, ordinal))
        if engine is None:
            warm = False
            engine = Engine(
                self._index(doc, descriptor, ordinal), strategy=self.strategy
            )
            self.engines[(doc, ordinal)] = engine
        paths = []
        for path_str in path_strs:
            path = self.paths.get(path_str)
            if path is None:
                warm = False
                path = parse_xpath(path_str)
                self.paths.put(path_str, path)
            paths.append(path)
        faults.check("pool.task", document=doc, worker=self.wid)
        ids, stats, accepted = _run_paths(engine, paths, offset)
        evictions = self.paths.evictions - self._evictions_reported
        self._evictions_reported = self.paths.evictions
        return (
            np.asarray(ids, dtype=np.int64),
            stats.snapshot(),
            accepted,
            warm,
            evictions,
        )


def _pool_worker_main(
    wid: int, tasks, results, static_docs: dict, strategy: str
) -> None:
    """Worker-process main loop: pull chunks until the ``None`` pill."""
    state = _WorkerState(wid, static_docs, strategy)
    while True:
        item = tasks.get()
        if item is None:
            break
        chunk_id, _affinity, subtasks = item
        results.put(("start", chunk_id, wid))
        try:
            payload = [state.run(sub) for sub in subtasks]
        except BaseException as exc:  # surfaced as PoolTaskError upstream
            results.put(
                ("error", chunk_id, wid, f"{type(exc).__name__}: {exc}")
            )
        else:
            results.put(("done", chunk_id, wid, payload))


# -- parent side --------------------------------------------------------------


def _reap(procs: list) -> None:
    """GC/exit safety net: no orphaned worker processes, ever."""
    for proc in procs:
        try:
            if proc.is_alive():
                proc.terminate()
        except Exception:
            pass


def _collector_loop(pool_ref: "weakref.ref", results) -> None:
    """Collector-thread main loop, deliberately outside the class.

    The thread holds only a *weak* reference to its pool between queue
    polls: a bound-method target would be a GC root pinning the pool
    alive forever, so an owner who simply dropped their last reference
    would leak the worker processes.  With the weakref, collection of
    an unclosed pool lets the finalizer terminate the workers and this
    loop exit on the next poll.
    """
    try:
        while True:
            try:
                msg = results.get(timeout=_POLL_S)
            except (_queue.Empty, OSError, ValueError):
                msg = None
            pool = pool_ref()
            if pool is None:
                return
            if msg is None:
                if pool._closed:
                    return
                pool._check_workers()
            elif msg[0] == "close":
                return
            else:
                pool._handle_message(msg)
            del pool
    except Exception:  # pragma: no cover - defensive
        traceback.print_exc()


class WorkerPool:
    """A persistent pool of shared-memory worker processes.

    Parameters
    ----------
    workers:
        Worker-process count (>= 1).
    strategy:
        The evaluation strategy workers build their engines with.
    static_docs:
        ``{name: ("index", TreeIndex, [Shard, ...])}`` payloads for
        in-memory documents, shipped once at pool start (copy-on-write
        under ``fork``).  Store-backed documents need no entry -- their
        tasks carry the bundle path.
    mp_start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``; ``None`` uses the
        platform default (``fork`` on Linux, which is also what lets
        workers inherit an active fault plan and runtime-registered
        strategies).
    """

    def __init__(
        self,
        *,
        workers: int,
        strategy: str,
        static_docs: Optional[dict] = None,
        mp_start_method: Optional[str] = None,
    ) -> None:
        import multiprocessing

        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.strategy = strategy
        self._static_docs = static_docs or {}
        self._ctx = multiprocessing.get_context(mp_start_method)
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._lock = threading.Lock()
        self._counter = itertools.count()
        self._rr = 0
        self._closed = False
        self._chunks: Dict[int, _Chunk] = {}
        self.counters: Dict[str, int] = {
            "tasks": 0,
            "chunks": 0,
            "chunks_started": 0,
            "chunks_done": 0,
            "steals": 0,
            "warm_hits": 0,
            "cold_misses": 0,
            "path_evictions": 0,
            "respawns": 0,
            "retries": 0,
            "failures": 0,
        }
        self.per_worker: Dict[int, int] = {w: 0 for w in range(workers)}
        self._procs: list = []
        for wid in range(workers):
            self._procs.append(self._make_worker(wid))
        for proc in self._procs:
            proc.start()
        # GC/exit safety net (satellite: no orphaned workers).  The
        # callback must not reference self; the process list object is
        # shared with respawn, which replaces slots in place.
        self._finalizer = weakref.finalize(self, _reap, self._procs)
        self._collector = threading.Thread(
            target=_collector_loop,
            args=(weakref.ref(self), self._results),
            name="repro-pool-collector",
            daemon=True,
        )
        self._collector.start()

    # -- lifecycle -----------------------------------------------------------

    def _make_worker(self, wid: int):
        proc = self._ctx.Process(
            target=_pool_worker_main,
            args=(
                wid,
                self._tasks,
                self._results,
                self._static_docs,
                self.strategy,
            ),
            name=f"repro-pool-{wid}",
            daemon=True,
        )
        return proc

    def worker_pids(self) -> List[int]:
        """Live worker pids (chaos tests kill these)."""
        return [p.pid for p in self._procs if p.is_alive()]

    def close(self, timeout: float = 5.0) -> None:
        """Shut every worker down (idempotent); fail outstanding tasks."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            outstanding = [c for c in self._chunks.values() if not c.done]
        for _ in range(self.workers):
            try:
                self._tasks.put(None)
            except (ValueError, OSError):
                break
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            proc.join(max(0.0, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)
        try:
            self._results.put(("close",))
        except (ValueError, OSError):
            pass
        self._collector.join(timeout)
        for chunk in outstanding:
            for future in chunk.futures:
                future._fail(PoolClosedError("worker pool was closed"))
        self._finalizer.detach()
        for q in (self._tasks, self._results):
            try:
                q.close()
            except (ValueError, OSError):
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission ----------------------------------------------------------

    def submit_many(self, tasks: Sequence[PoolTask]) -> List[PoolFuture]:
        """Chunk, enqueue, and return one future per task (in order)."""
        futures = [PoolFuture() for _ in tasks]
        if not tasks:
            return futures
        by_task = {id(t): f for t, f in zip(tasks, futures)}
        with self._lock:
            if self._closed:
                raise PoolClosedError("worker pool is closed")
            for group in plan_chunks(list(tasks), self.workers):
                chunk = _Chunk(
                    chunk_id=next(self._counter),
                    affinity=self._rr % self.workers,
                    tasks=group,
                    futures=[by_task[id(t)] for t in group],
                )
                self._rr += 1
                self._chunks[chunk.chunk_id] = chunk
                self.counters["chunks"] += 1
                self.counters["tasks"] += len(group)
                self._enqueue(chunk)
        return futures

    def _enqueue(self, chunk: _Chunk) -> None:
        payload = [
            (t.doc, t.descriptor, t.ordinal, t.offset, t.path_strs)
            for t in chunk.tasks
        ]
        self._tasks.put((chunk.chunk_id, chunk.affinity, payload))

    # -- collection + self-healing -------------------------------------------

    def _handle_message(self, msg: tuple) -> None:
        """One worker message, dispatched from :func:`_collector_loop`."""
        kind = msg[0]
        if kind == "start":
            _, chunk_id, wid = msg
            with self._lock:
                chunk = self._chunks.get(chunk_id)
                if chunk is not None and not chunk.done:
                    chunk.claimed_by = wid
                    if not chunk.started:
                        chunk.started = True
                        self.counters["chunks_started"] += 1
            return
        _, chunk_id, wid, payload = msg
        self._finish(chunk_id, wid, kind, payload)

    def _finish(self, chunk_id: int, wid: int, kind: str, payload) -> None:
        with self._lock:
            chunk = self._chunks.pop(chunk_id, None)
            if chunk is None or chunk.done:
                # A duplicate completion from a retried-but-not-lost
                # chunk: idempotently dropped.
                return
            chunk.done = True
            self.counters["chunks_done"] += 1
            if wid != chunk.affinity:
                self.counters["steals"] += 1
            self.per_worker[wid] = self.per_worker.get(wid, 0) + len(
                chunk.tasks
            )
            if kind == "done":
                for part in payload:
                    warm = part[3]
                    key = "warm_hits" if warm else "cold_misses"
                    self.counters[key] += 1
                    self.counters["path_evictions"] += int(part[4])
            else:
                self.counters["failures"] += len(chunk.tasks)
        if kind == "done":
            for future, part in zip(chunk.futures, payload):
                ids, stats, accepted, _warm, _evictions = part
                future._set((ids.tolist(), stats, accepted))
        else:
            exc = PoolTaskError(f"pool task failed in worker {wid}: {payload}")
            for future in chunk.futures:
                future._fail(exc)

    def _check_workers(self) -> None:
        """Respawn dead workers; re-enqueue their (possibly lost) work."""
        dead = [
            wid
            for wid, proc in enumerate(self._procs)
            if not proc.is_alive()
        ]
        if not dead:
            return
        with self._lock:
            if self._closed:
                return
            for wid in dead:
                self._procs[wid] = self._make_worker(wid)
                self._procs[wid].start()
                self.counters["respawns"] += 1
            # Chunks claimed by a dead worker are definitely lost; a
            # chunk with no claim may sit safely in the queue *or* have
            # been consumed in the worker's death window -- re-enqueue
            # both kinds exactly once.  Duplicate completions (a queued
            # chunk run twice) are dropped in _finish; a chunk whose
            # retry is also lost fails instead of hanging.
            doomed: List[_Chunk] = []
            for chunk in self._chunks.values():
                if chunk.done:
                    continue
                claimed_dead = chunk.claimed_by in dead
                unclaimed = chunk.claimed_by is None
                if not (claimed_dead or unclaimed):
                    continue
                if chunk.retried:
                    if claimed_dead:
                        doomed.append(chunk)
                    continue
                chunk.retried = True
                chunk.claimed_by = None
                self.counters["retries"] += 1
                self._enqueue(chunk)
            for chunk in doomed:
                self._chunks.pop(chunk.chunk_id, None)
                chunk.done = True
                self.counters["failures"] += len(chunk.tasks)
        for chunk in doomed:
            exc = WorkerDiedError(
                "pool worker died twice running the same task"
            )
            for future in chunk.futures:
                future._fail(exc)

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """Pool health: queue depth, steals, warm-hit rate, per-worker."""
        with self._lock:
            counters = dict(self.counters)
            per_worker = {str(w): n for w, n in sorted(self.per_worker.items())}
            alive = sum(1 for p in self._procs if p.is_alive())
        answered = counters["warm_hits"] + counters["cold_misses"]
        return {
            "workers": self.workers,
            "alive": alive,
            "closed": self._closed,
            "tasks": counters["tasks"],
            "chunks": counters["chunks"],
            "queue_depth": counters["chunks"] - counters["chunks_started"],
            "in_flight": counters["chunks_started"] - counters["chunks_done"],
            "steals": counters["steals"],
            "warm_hits": counters["warm_hits"],
            "cold_misses": counters["cold_misses"],
            "warm_hit_rate": round(
                counters["warm_hits"] / answered, 4
            )
            if answered
            else 0.0,
            "path_evictions": counters["path_evictions"],
            "respawns": counters["respawns"],
            "retries": counters["retries"],
            "failures": counters["failures"],
            "per_worker": per_worker,
        }
