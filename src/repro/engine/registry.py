"""Strategy-plugin registry: the engine's extension point.

Every evaluation strategy is an object with a ``name``, a declared
capability (:meth:`Strategy.supports`), an optional ``fallback`` strategy
name, and an :meth:`Strategy.execute` method that runs a prepared
:class:`~repro.engine.plan.QueryPlan` against a
:class:`~repro.index.jumping.TreeIndex`.  Strategies self-register with
the :func:`register_strategy` decorator; the ten built-in strategies
(``naive``, ``jumping``, ``memo``, ``optimized``, ``hybrid``,
``deterministic``, ``mixed``, ``vectorized``, ``window``, and the
cost-based ``auto`` planner) live in their own modules under
:mod:`repro.engine` and register on import.

Dispatch is uniform: :func:`resolve` walks the fallback chain until it
finds a strategy whose ``supports(path)`` is true.  This replaces the old
if/elif special-casing in ``Engine.run`` -- backward axes, the hybrid
descendant-chain fragment, and the deterministic predicate-free fragment
are all just capability declarations now.  A third-party strategy only
has to register itself::

    from repro.engine.registry import Strategy, register_strategy

    @register_strategy
    class MyStrategy:
        name = "mine"
        fallback = "optimized"          # used when supports() is False

        def supports(self, path):
            return not path.has_backward_axes()

        def execute(self, plan, index, stats):
            return my_evaluate(plan.asta, index, stats)

and it becomes selectable through :class:`~repro.engine.api.Engine`,
the CLI (``--strategy mine``), and the registry conformance test suite.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, Tuple, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.counters import EvalStats
    from repro.engine.plan import QueryPlan
    from repro.index.jumping import TreeIndex
    from repro.xpath.ast import Path


@runtime_checkable
class Strategy(Protocol):
    """The plugin protocol every evaluation strategy implements.

    Attributes
    ----------
    name:
        Registry key; also the ``--strategy`` CLI value.
    fallback:
        Name of the strategy to try when :meth:`supports` is false, or
        ``None`` for a terminal strategy (``mixed`` accepts everything).
    needs_asta:
        True when :meth:`execute` consumes the compiled ASTA of the plan;
        :meth:`repro.engine.api.Engine.prepare` then compiles it eagerly
        so later ``execute()`` calls do zero compilation work.
    parallel_safe:
        True when :meth:`execute` keeps all mutable run state on the plan
        and its arguments (never on the strategy instance), so the
        module-level singleton can be driven from several pool workers at
        once.  :class:`~repro.engine.parallel.QueryService` runs queries
        that resolve to a non-parallel-safe strategy serially in the
        submitting thread instead of fanning them out.  All built-in
        strategies are parallel-safe.
    """

    name: str
    fallback: Optional[str]
    needs_asta: bool
    parallel_safe: bool

    def supports(self, path: "Path") -> bool:
        """Can this strategy evaluate ``path`` natively?"""
        ...

    def execute(
        self, plan: "QueryPlan", index: "TreeIndex", stats: "EvalStats"
    ) -> Tuple[bool, List[int]]:
        """Run the prepared plan; returns ``(accepted, selected ids)``."""
        ...

    def prepare(self, plan: "QueryPlan") -> None:
        """Optional hook: precompute per-plan artifacts at prepare time."""
        ...


def _first_doc_line(cls: type) -> str:
    """First non-empty docstring line of ``cls`` (its one-line summary)."""
    doc = (cls.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""


class StrategyBase:
    """Convenience defaults for :class:`Strategy` implementations."""

    name: str = ""
    fallback: Optional[str] = None
    needs_asta: bool = False
    parallel_safe: bool = True

    def supports(self, path: "Path") -> bool:
        return not path.has_backward_axes()

    def prepare(self, plan: "QueryPlan") -> None:  # pragma: no cover - hook
        pass

    @property
    def summary(self) -> str:
        """First docstring line -- what ``--list-strategies`` prints."""
        return _first_doc_line(type(self))


class AstaStrategy(StrategyBase):
    """Base for strategies that run a compiled ASTA through the stack
    machine of :mod:`repro.engine.core` (the Figure 4 series).

    Subclasses set :attr:`evaluator` to their module-level
    ``evaluate(asta, index, stats)`` function.  Strategies with
    :attr:`reuse_tables` keep a warmed
    :class:`~repro.engine.intern.RunTables` in ``plan.artifacts`` so
    repeated ``execute()`` calls on a prepared plan skip re-deriving memo
    entries, tda jump plans, and fused label arrays (the naive strategy
    opts out: paying the full per-node cost is its defining trait).
    """

    fallback = "mixed"  # backward axes route through the mixed pipeline
    needs_asta = True
    evaluator = None  # type: ignore[assignment]
    reuse_tables = True
    table_jumping = True  # whether the tables carry a TDA jump analysis

    def execute(self, plan, index, stats):
        evaluator = type(self).evaluator
        if not self.reuse_tables:
            return evaluator(plan.asta, index, stats)
        from repro.engine.intern import RunTables

        tables = plan.artifacts.get("run_tables")
        if (
            not isinstance(tables, RunTables)
            or tables.asta is not plan.asta
            or tables.index is not index
        ):
            tables = RunTables(
                plan.asta, index, jumping=self.table_jumping
            )
            plan.artifacts["run_tables"] = tables
        return evaluator(plan.asta, index, stats, tables=tables)


_REGISTRY: Dict[str, Strategy] = {}
_builtins_loaded = False
_generation = 0


def generation() -> int:
    """Monotonic counter bumped on every (un)registration.  Plan caches
    (``Engine._plans``) compare it to drop plans that resolved against a
    registry that has since changed."""
    return _generation


def register_strategy(obj):
    """Class decorator (or call with an instance) adding a strategy to the
    registry under its ``name``.  Re-registering a name replaces it."""
    global _generation
    strategy = obj() if isinstance(obj, type) else obj
    if not getattr(strategy, "name", ""):
        raise ValueError(f"strategy {obj!r} has no name")
    _REGISTRY[strategy.name] = strategy
    _generation += 1
    return obj


def unregister_strategy(name: str) -> None:
    """Remove a strategy (test helper for throwaway plugins)."""
    global _generation
    if _REGISTRY.pop(name, None) is not None:
        _generation += 1


def _load_builtins() -> None:
    """Import the built-in strategy modules so they self-register."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    from repro.engine import (  # noqa: F401  (imported for side effects)
        deterministic,
        frontier,
        hybrid,
        jumping,
        memo,
        mixed,
        naive,
        optimized,
        planner,
        window,
    )


def get_strategy(name: str) -> Strategy:
    """Look up a registered strategy; raises ``ValueError`` if unknown."""
    _load_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {strategy_names()}"
        ) from None


def strategy_names() -> List[str]:
    """Sorted names of all registered strategies."""
    _load_builtins()
    return sorted(_REGISTRY)


def all_strategies() -> List[Strategy]:
    """All registered strategy instances, sorted by name."""
    _load_builtins()
    return [_REGISTRY[name] for name in strategy_names()]


def describe_strategies() -> List[Tuple[str, str]]:
    """(name, one-line summary) pairs for ``--list-strategies``.

    The ``auto`` planner leads the listing (it is the recommended
    default); the rest follow in name order.
    """
    pairs = [
        (
            strategy.name,
            getattr(strategy, "summary", None)
            or _first_doc_line(type(strategy)),
        )
        for strategy in all_strategies()
    ]
    pairs.sort(key=lambda pair: (pair[0] != "auto", pair[0]))
    return pairs


def resolve(name: str, path: "Path") -> Strategy:
    """The strategy that will actually evaluate ``path`` when ``name`` is
    requested: walk the fallback chain until ``supports(path)`` holds."""
    strategy = get_strategy(name)
    seen = set()
    while not strategy.supports(path):
        seen.add(strategy.name)
        nxt = getattr(strategy, "fallback", None)
        if nxt is None or nxt in seen:
            raise ValueError(
                f"no strategy can evaluate {str(path)!r}: fallback chain "
                f"from {name!r} exhausted at {strategy.name!r}"
            )
        strategy = get_strategy(nxt)
    return strategy
