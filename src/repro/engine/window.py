"""Window joins: the XPath-accelerator strategy over pre/post columns.

The staircase-join line of work evaluates XPath axes relationally: give
every node its preorder rank ``pre`` (our node id) and postorder rank
``post``, and each axis becomes a two-dimensional *window* predicate on
the (pre, post) plane -- ``u`` is an ancestor of ``v`` iff
``pre(u) < pre(v)`` and ``post(u) > post(v)``.  Because subtree ranges
either nest or are disjoint, the window of a context node projects onto
the sorted preorder axis as the half-open interval ``[v, xml_end[v])``
(with ``post`` supplying the third coordinate, node depth, for free:
``depth = xml_end - 1 - post``).  Every location step then reduces to a
sorted-array interval join:

- **descendant** is window containment after *staircase pruning*: the
  running maximum of ``xml_end`` drops context windows covered by an
  already-accepted ancestor window (the shrunken-window rule), leaving
  pairwise-disjoint intervals that one batched binary search resolves;
- **child** is containment plus depth equality: frontier nodes of equal
  depth have pairwise-disjoint windows, so one searchsorted pass per
  frontier depth group -- probing only the candidate *depth bucket*
  ``d + 1`` -- finds every child;
- **following-sibling** joins right-adjacent windows under a shared
  parent: per unique parent ``p`` the window
  ``[xml_end[min child], xml_end[p])`` at depth ``depth(p) + 1``
  contains exactly the qualifying siblings;
- **ancestor** (a backward axis -- *outside* the vectorized fragment)
  inverts containment: a candidate qualifies iff the frontier has an
  element strictly inside its window, a two-sided ``searchsorted``
  count; **parent** additionally pins the depth.

Empty windows exit each step early, and predicates reuse the
back-to-front mask construction of :mod:`repro.engine.frontier` with
window-count primitives -- two-sided ``searchsorted`` over depth buckets
-- instead of subtree re-enumeration, which also buys native backward
axes (``ancestor::``/``parent::``) inside predicates.

The per-document state (the ``post``/``depth`` columns plus an LRU of
depth-bucketed candidate arrays keyed by label-id set) lives in a
:class:`WindowEncoding` cached on the :class:`~repro.index.jumping.TreeIndex`
-- shard slices build their own from local coordinates, and store
bundles persist the ``post`` column as an optional array so mmap-opened
corpora skip the derivation entirely.

Counters follow the vectorized redefinition (see ``frontier.py``), with
one refinement: ``visited`` counts the candidate elements a join
actually touches -- a depth-bucketed child step books only its bucket
slices, which is exactly the advantage the planner's feedback loop
should see.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import List, Optional, Tuple

import numpy as np

from repro.counters import EvalStats
from repro.engine.registry import StrategyBase, register_strategy
from repro.index.jumping import TreeIndex
from repro.xpath.ast import (
    Axis,
    Path,
    Pred,
    PredAnd,
    PredNot,
    PredOr,
    PredPath,
    Step,
)

_EMPTY = np.empty(0, dtype=np.int64)

#: Bound on cached depth-bucket partitions per document (the same
#: env-knob idiom as ``REPRO_FUSED_CACHE_SIZE``).
BUCKET_CACHE_SIZE = int(os.environ.get("REPRO_WINDOW_BUCKET_CACHE_SIZE", "256"))


def is_window_evaluable(path: Path) -> bool:
    """The fragment this evaluator covers natively: every *absolute*
    path, forward or backward -- ancestor/parent steps are first-class
    window predicates here, which makes ``window`` the only set-at-a-time
    strategy whose fragment strictly contains the vectorized one."""
    return path.absolute and bool(path.steps)


# -- per-document encoding ---------------------------------------------------


class DepthBuckets:
    """One sorted candidate array partitioned by node depth.

    ``ids`` holds the candidates reordered by ``(depth, pre)`` (a stable
    argsort keeps preorder inside each depth run), so the candidates at
    one depth are a contiguous, preorder-sorted slice -- the unit the
    child / following-sibling joins probe instead of the whole array.
    """

    __slots__ = ("ids", "depths", "bounds")

    def __init__(self, cand: np.ndarray, depth: np.ndarray) -> None:
        d = depth[cand]
        order = np.argsort(d, kind="stable")
        self.ids = cand[order]
        d = d[order]
        vals, starts = np.unique(d, return_index=True)
        self.depths = vals
        self.bounds = np.append(starts, d.size)

    def at(self, d: int) -> np.ndarray:
        """The candidates at depth ``d``, sorted by preorder id."""
        i = np.searchsorted(self.depths, d)
        if i >= self.depths.size or self.depths[i] != d:
            return _EMPTY
        return self.ids[self.bounds[i] : self.bounds[i + 1]]


class WindowEncoding:
    """Per-document window-join state, cached on the :class:`TreeIndex`.

    Holds the ``post``/``depth`` columns (materialized lazily by the
    index, or seeded from a store bundle's optional ``post`` array) and
    an LRU of :class:`DepthBuckets` keyed by the label-id set of a
    step's node test -- repeated executions of a prepared plan touch
    only the relevant depth slices, never re-partitioning.  Thread-safe
    for the parallel service's pool threads; the lock is dropped on
    pickling (process workers rebuild their own encoding).
    """

    def __init__(self, index: TreeIndex) -> None:
        self.index = index
        self.post = index.post_array()
        self.depth = index.depth_array()
        self._buckets: "OrderedDict[Tuple[int, ...], DepthBuckets]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.bucket_hits = 0
        self.bucket_misses = 0
        self.bucket_evictions = 0

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def cache_info(self) -> dict:
        return {
            "size": len(self._buckets),
            "max_size": BUCKET_CACHE_SIZE,
            "hits": self.bucket_hits,
            "misses": self.bucket_misses,
            "evictions": self.bucket_evictions,
        }

    def buckets(self, key: Tuple[int, ...], cand: np.ndarray) -> DepthBuckets:
        """The depth partition of one candidate array (LRU-cached)."""
        with self._lock:
            b = self._buckets.get(key)
            if b is not None:
                self._buckets.move_to_end(key)
                self.bucket_hits += 1
                return b
        b = DepthBuckets(cand, self.depth)
        with self._lock:
            self.bucket_misses += 1
            self._buckets[key] = b
            while len(self._buckets) > BUCKET_CACHE_SIZE:
                self._buckets.popitem(last=False)
                self.bucket_evictions += 1
        return b


def get_encoding(index: TreeIndex) -> WindowEncoding:
    """The index's cached :class:`WindowEncoding` (built on first use).

    Shard slices are fresh :class:`TreeIndex` instances, so each shard
    lazily derives its own local columns -- the depth identity holds in
    any re-rooted slice.
    """
    enc = getattr(index, "_window_enc", None)
    if enc is None:
        enc = index._window_enc = WindowEncoding(index)
    return enc


# -- evaluation --------------------------------------------------------------


def evaluate(
    query: "str | Path",
    index: TreeIndex,
    stats: Optional[EvalStats] = None,
) -> Tuple[bool, List[int]]:
    """Evaluate via window joins; returns ``(accepted, selected ids)``."""
    if isinstance(query, str):
        from repro.xpath.parser import parse_xpath

        path = parse_xpath(query)
    else:
        path = query
    if not is_window_evaluable(path):
        raise ValueError(
            f"query {str(path)!r} is outside the window-join fragment "
            "(absolute paths only)"
        )
    enc = get_encoding(index)
    frontier = _eval_steps(enc, path.steps, None, stats)
    ids = frontier.tolist()
    if stats is not None:
        stats.selected += len(ids)
    return bool(ids), ids


def _eval_steps(
    enc: WindowEncoding,
    steps: tuple,
    frontier: Optional[np.ndarray],
    stats: Optional[EvalStats],
) -> np.ndarray:
    """Run location steps over a frontier (``None`` = the document node);
    an empty window after any step exits the whole chain early."""
    for step in steps:
        frontier = _eval_step(enc, step, frontier, stats)
        if frontier.size == 0:
            return _EMPTY
    return frontier if frontier is not None else _EMPTY


def _eval_step(
    enc: WindowEncoding,
    step: Step,
    frontier: Optional[np.ndarray],
    stats: Optional[EvalStats],
) -> np.ndarray:
    index = enc.index
    cand, key = _candidates(index, step.axis, step.test)
    if stats is not None:
        stats.jumps += 1
    if cand.size == 0:
        return _EMPTY
    if frontier is None:
        # The implicit document node: its only child is the root, its
        # descendants are every node; no siblings, attributes, parent,
        # or ancestors.
        if step.axis is Axis.CHILD:
            out = cand[:1] if cand.size and cand[0] == 0 else _EMPTY
        elif step.axis is Axis.DESCENDANT:
            out = cand
        else:
            out = _EMPTY
        if stats is not None:
            stats.visited += int(out.size)
    elif step.axis in (Axis.CHILD, Axis.ATTRIBUTE):
        out = _child_join(enc, key, cand, frontier, stats)
    elif step.axis is Axis.DESCENDANT:
        out = _descendant_join(enc, cand, frontier, stats)
    elif step.axis is Axis.FOLLOWING_SIBLING:
        out = _sibling_join(enc, key, cand, frontier, stats)
    elif step.axis is Axis.ANCESTOR:
        out = _ancestor_join(enc, cand, frontier, stats)
    elif step.axis is Axis.PARENT:
        out = _parent_join(enc, cand, frontier, stats)
    else:  # pragma: no cover - the Axis enum is exhausted above
        raise AssertionError(step.axis)
    if step.predicate is not None and out.size:
        out = out[_pred_mask(enc, step.predicate, out, stats)]
    return out


def _candidates(
    index: TreeIndex, axis: Axis, test: str
) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """Sorted candidate ids for a node test, plus the label-id cache key
    the depth-bucket LRU uses (same test resolution as ``frontier.py``)."""
    from repro.engine.frontier import test_label_names

    names = test_label_names(index.tree.labels, axis, test)
    label_ids = index.label_ids(names)
    if not label_ids:
        return _EMPTY, ()
    key = tuple(sorted(label_ids))
    if len(label_ids) == 1:
        return index.labels.nodes_array(index.tree.labels[label_ids[0]]), key
    return index.fused(label_ids).arr, key


def _merge_pieces(pieces: List[np.ndarray]) -> np.ndarray:
    """Re-sort per-depth-group results into one preorder-sorted array.

    The groups are disjoint node sets, so a sort of the (usually small)
    output is all that is needed to restore document order.
    """
    if not pieces:
        return _EMPTY
    if len(pieces) == 1:
        return pieces[0]
    return np.sort(np.concatenate(pieces))


# -- axis joins --------------------------------------------------------------


def _child_join(
    enc: WindowEncoding,
    key: Tuple[int, ...],
    cand: np.ndarray,
    frontier: np.ndarray,
    stats: Optional[EvalStats],
) -> np.ndarray:
    """Containment + depth equality, one pass per frontier depth group.

    Same-depth frontier windows are pairwise disjoint (equal-depth nodes
    never nest), so within a group every depth-``d+1`` candidate lies in
    at most one window -- no staircase needed, and pruning would be
    wrong: a nested frontier node's children must still match.
    """
    xml_end = enc.index.xml_end_array()
    buckets = enc.buckets(key, cand)
    fd = enc.depth[frontier]
    pieces: List[np.ndarray] = []
    for d in np.unique(fd):
        g = frontier[fd == d]
        sub = buckets.at(int(d) + 1)
        if sub.size == 0:
            continue
        if stats is not None:
            stats.jumps += 1
            stats.visited += int(sub.size)
            stats.index_probes += int(sub.size)
        j = np.searchsorted(g, sub, side="right") - 1
        clipped = np.maximum(j, 0)
        ok = (j >= 0) & (sub < xml_end[g[clipped]])
        if ok.any():
            pieces.append(sub[ok])
    return _merge_pieces(pieces)


def _descendant_join(
    enc: WindowEncoding,
    cand: np.ndarray,
    frontier: np.ndarray,
    stats: Optional[EvalStats],
) -> np.ndarray:
    """Window containment over staircase-pruned context windows.

    The shrunken-window rule: a context window covered by an already-
    accepted ancestor window contributes no new descendants, so the
    running maximum of ``xml_end`` drops it; the survivors are disjoint
    and one batched binary search locates every candidate.
    """
    xml_end = enc.index.xml_end_array()
    ends = xml_end[frontier]
    if frontier.size > 1:
        keep = np.empty(frontier.size, dtype=bool)
        keep[0] = True
        np.greater_equal(
            frontier[1:], np.maximum.accumulate(ends)[:-1], out=keep[1:]
        )
        frontier = frontier[keep]
        ends = ends[keep]
    if stats is not None:
        stats.jumps += 1
        stats.visited += int(cand.size)
        stats.index_probes += int(cand.size)
    j = np.searchsorted(frontier, cand, side="right") - 1
    clipped = np.maximum(j, 0)
    return cand[(j >= 0) & (cand > frontier[clipped]) & (cand < ends[clipped])]


def _sibling_join(
    enc: WindowEncoding,
    key: Tuple[int, ...],
    cand: np.ndarray,
    frontier: np.ndarray,
    stats: Optional[EvalStats],
) -> np.ndarray:
    """Right-adjacent windows under a shared parent.

    For each unique frontier parent ``p`` the qualifying siblings are
    exactly the depth-``depth(p)+1`` nodes in
    ``[xml_end[min frontier child of p], xml_end[p])``: the window sits
    inside ``p``'s subtree, and the only depth-``depth(p)+1`` nodes
    there are ``p``'s own children, past the first frontier child's
    subtree.  Same-depth parents have disjoint, ascending windows, so
    the join is again one searchsorted pass per parent depth group.
    """
    index = enc.index
    parent = index.parent_array()
    xml_end = index.xml_end_array()
    fp = parent[frontier]
    rooted = fp >= 0
    if not rooted.all():
        frontier = frontier[rooted]
        fp = fp[rooted]
    if frontier.size == 0:
        return _EMPTY
    uniq_p, first = np.unique(fp, return_index=True)
    starts = xml_end[frontier[first]]  # first frontier child's subtree end
    ends = xml_end[uniq_p]
    pd = enc.depth[uniq_p]
    buckets = enc.buckets(key, cand)
    pieces: List[np.ndarray] = []
    for d in np.unique(pd):
        sel = pd == d
        g_starts = starts[sel]
        g_ends = ends[sel]
        sub = buckets.at(int(d) + 1)
        if sub.size == 0:
            continue
        if stats is not None:
            stats.jumps += 1
            stats.visited += int(sub.size)
            stats.index_probes += int(sub.size)
        j = np.searchsorted(g_starts, sub, side="right") - 1
        clipped = np.maximum(j, 0)
        ok = (j >= 0) & (sub < g_ends[clipped])
        if ok.any():
            pieces.append(sub[ok])
    return _merge_pieces(pieces)


def _ancestor_join(
    enc: WindowEncoding,
    cand: np.ndarray,
    frontier: np.ndarray,
    stats: Optional[EvalStats],
) -> np.ndarray:
    """Reverse containment: ``c`` is an ancestor of a frontier node iff
    the frontier intersects ``c``'s window ``(c, xml_end[c])`` -- a
    two-sided searchsorted count per candidate.  This is the native
    backward axis the vectorized fragment lacks."""
    xml_end = enc.index.xml_end_array()
    if stats is not None:
        stats.jumps += 1
        stats.visited += int(cand.size)
        stats.index_probes += 2 * int(cand.size)
    lo = np.searchsorted(frontier, cand, side="right")
    hi = np.searchsorted(frontier, xml_end[cand], side="left")
    return cand[hi > lo]


def _parent_join(
    enc: WindowEncoding,
    cand: np.ndarray,
    frontier: np.ndarray,
    stats: Optional[EvalStats],
) -> np.ndarray:
    """Ancestor containment pinned to one level: membership of the
    candidates in the frontier's (deduplicated) parent set."""
    parent = enc.index.parent_array()
    ps = parent[frontier]
    ps = np.unique(ps[ps >= 0])
    if stats is not None:
        stats.visited += int(cand.size)
    return cand[_in_sorted(cand, ps, stats)]


def _in_sorted(
    values: np.ndarray,
    sorted_arr: np.ndarray,
    stats: Optional[EvalStats],
) -> np.ndarray:
    """Membership mask of ``values`` in a sorted duplicate-free array."""
    if stats is not None:
        stats.jumps += 1
        stats.index_probes += int(values.size)
    if sorted_arr.size == 0:
        return np.zeros(values.size, dtype=bool)
    pos = np.searchsorted(sorted_arr, values)
    clipped = np.minimum(pos, sorted_arr.size - 1)
    return (pos < sorted_arr.size) & (sorted_arr[clipped] == values)


# -- predicates as window counts ---------------------------------------------


def _pred_mask(
    enc: WindowEncoding,
    pred: Pred,
    nodes: np.ndarray,
    stats: Optional[EvalStats],
) -> np.ndarray:
    """Boolean mask over ``nodes``: which satisfy the predicate."""
    if isinstance(pred, PredAnd):
        left = _pred_mask(enc, pred.left, nodes, stats)
        return left & _pred_mask(enc, pred.right, nodes, stats)
    if isinstance(pred, PredOr):
        left = _pred_mask(enc, pred.left, nodes, stats)
        return left | _pred_mask(enc, pred.right, nodes, stats)
    if isinstance(pred, PredNot):
        return ~_pred_mask(enc, pred.inner, nodes, stats)
    if isinstance(pred, PredPath):
        path = pred.path
        if path.absolute:
            result = _eval_steps(enc, path.steps, None, stats)
            return np.full(nodes.size, bool(result.size), dtype=bool)
        if not path.steps:
            return np.ones(nodes.size, dtype=bool)  # '.' always exists
        matches = _match_set(enc, path.steps, stats)
        return _witness_mask(enc, path.steps[0].axis, nodes, matches, stats)
    raise AssertionError(pred)


def _match_set(
    enc: WindowEncoding, steps: tuple, stats: Optional[EvalStats]
) -> np.ndarray:
    """Nodes matching ``steps[0]`` from which ``steps[1:]`` matches,
    built back to front exactly as in ``frontier.py`` -- but each
    successor probe is a window count, so backward axes inside
    predicates stay native."""
    matches: Optional[np.ndarray] = None
    for i in range(len(steps) - 1, -1, -1):
        step = steps[i]
        cand, _key = _candidates(enc.index, step.axis, step.test)
        if stats is not None:
            stats.visited += int(cand.size)
            stats.jumps += 1
        if step.predicate is not None and cand.size:
            cand = cand[_pred_mask(enc, step.predicate, cand, stats)]
        if matches is not None and cand.size:
            cand = cand[
                _witness_mask(enc, steps[i + 1].axis, cand, matches, stats)
            ]
        matches = cand
        if matches.size == 0:
            return _EMPTY
    return matches


def _witness_mask(
    enc: WindowEncoding,
    axis: Axis,
    nodes: np.ndarray,
    targets: np.ndarray,
    stats: Optional[EvalStats],
) -> np.ndarray:
    """Which of ``nodes`` have an ``axis``-successor inside ``targets``,
    as two-sided searchsorted window counts (no subtree re-enumeration)."""
    if targets.size == 0:
        return np.zeros(nodes.size, dtype=bool)
    index = enc.index
    xml_end = index.xml_end_array()
    if axis is Axis.DESCENDANT:
        if stats is not None:
            stats.jumps += 1
            stats.index_probes += 2 * int(nodes.size)
        lo = np.searchsorted(targets, nodes, side="right")
        hi = np.searchsorted(targets, xml_end[nodes], side="left")
        return hi > lo
    if axis is Axis.ANCESTOR:
        # Ancestors of v in T: {t < v} minus {xml_end[t] <= v} (a subtree
        # closing at or before v lies entirely before it; any other
        # earlier window must contain v).
        if stats is not None:
            stats.jumps += 1
            stats.index_probes += 2 * int(nodes.size)
        t_ends = np.sort(xml_end[targets])
        before = np.searchsorted(targets, nodes, side="left")
        closed = np.searchsorted(t_ends, nodes, side="right")
        return before > closed
    if axis is Axis.PARENT:
        return _in_sorted(index.parent_array()[nodes], targets, stats)
    depth = enc.depth
    nd = depth[nodes]
    tb = DepthBuckets(targets, depth)
    mask = np.zeros(nodes.size, dtype=bool)
    if axis in (Axis.CHILD, Axis.ATTRIBUTE):
        # A target child of v is a depth[v]+1 target inside v's window.
        for d in np.unique(nd):
            sub = tb.at(int(d) + 1)
            if sub.size == 0:
                continue
            sel = nd == d
            vs = nodes[sel]
            if stats is not None:
                stats.jumps += 1
                stats.index_probes += 2 * int(vs.size)
            lo = np.searchsorted(sub, vs, side="right")
            hi = np.searchsorted(sub, xml_end[vs], side="left")
            mask[sel] = hi > lo
        return mask
    if axis is Axis.FOLLOWING_SIBLING:
        # A following sibling of v is a depth[v] target in the window
        # [xml_end[v], xml_end[parent[v]]).
        parent = index.parent_array()
        pv = parent[nodes]
        rooted = pv >= 0
        for d in np.unique(nd[rooted]):
            sub = tb.at(int(d))
            if sub.size == 0:
                continue
            sel = rooted & (nd == d)
            vs = nodes[sel]
            if stats is not None:
                stats.jumps += 1
                stats.index_probes += 2 * int(vs.size)
            lo = np.searchsorted(sub, xml_end[vs], side="left")
            hi = np.searchsorted(sub, xml_end[pv[sel]], side="left")
            mask[sel] = hi > lo
        return mask
    raise AssertionError(axis)  # pragma: no cover - the Axis enum is exhausted


@register_strategy
class WindowStrategy(StrategyBase):
    """Pre/post window joins with staircase pruning (XPath accelerator)."""

    name = "window"
    fallback = "optimized"  # relative paths route through the automata
    needs_asta = False
    parallel_safe = True

    def supports(self, path: Path) -> bool:
        return is_window_evaluable(path)

    def execute(self, plan, index, stats):
        return evaluate(plan.path, index, stats)
