"""Multi-document workspaces: one compiled-query cache, many documents.

A :class:`Workspace` registers named documents and runs single queries,
query batches (:meth:`Workspace.select_many`), and cross-document
broadcasts (:meth:`Workspace.select_all`) over them.  All member engines
share one :class:`~repro.engine.plan.CompiledQueryCache`, keyed by
``(query, label-inventory)``, so a query compiled for one document is
reused by every document with the same wildcard inventory (always the
case for element-only documents).

>>> from repro.engine.workspace import Workspace
>>> ws = Workspace()
>>> _ = ws.add("d1", "<r><a><b/></a></r>")
>>> _ = ws.add("d2", "<r><b/><a><b/><b/></a></r>")
>>> ws.select_all("//a/b")
{'d1': [2], 'd2': [3, 4]}
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple, Union

from repro.engine.api import Engine
from repro.engine.plan import CompiledQueryCache, ExecutionResult, PreparedQuery
from repro.index.jumping import TreeIndex
from repro.tree.binary import BinaryTree
from repro.tree.document import XMLDocument
from repro.xpath.ast import Path

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.parallel import QueryService
    from repro.store import StoredDocument

Query = Union[str, Path]
Document = Union[XMLDocument, BinaryTree, TreeIndex, "StoredDocument", str]


class Workspace:
    """A set of named documents sharing strategy and compiled queries.

    Parameters mirror :class:`~repro.engine.api.Engine`; ``strategy``,
    ``encode_attributes`` and ``encode_text`` become the defaults for
    every document added later.  With ``strategy="auto"`` every member
    engine -- and every *shard* engine the parallel
    :class:`~repro.engine.parallel.QueryService` derives from it --
    runs the cost-based planner independently, so the same query may
    execute vectorized on one document (or shard) and node-at-a-time on
    another, tracking each one's label statistics.
    """

    def __init__(
        self,
        strategy: str = "optimized",
        encode_attributes: bool = False,
        encode_text: bool = False,
    ) -> None:
        self.strategy = strategy
        self.encode_attributes = encode_attributes
        self.encode_text = encode_text
        self.cache = CompiledQueryCache()
        self._engines: Dict[str, Engine] = {}
        self._services: Dict[Tuple[int, str, Optional[int]], "QueryService"] = {}
        self._services_lock = threading.Lock()
        # Documents this workspace opened itself via open_store: it owns
        # their mmap handles and releases them on remove()/close().
        # (Documents passed to add() are caller-owned and never closed.)
        self._stored: Dict[str, "StoredDocument"] = {}

    # -- document management ------------------------------------------------

    def add(self, name: str, document: Document) -> Engine:
        """Register ``document`` under ``name``; returns its engine."""
        if name in self._engines:
            raise ValueError(f"document {name!r} already registered")
        engine = Engine(
            document,
            strategy=self.strategy,
            encode_attributes=self.encode_attributes,
            encode_text=self.encode_text,
            cache=self.cache,
        )
        self._engines[name] = engine
        self._invalidate_services(name)
        return engine

    def add_stored(self, name: str, document: "StoredDocument") -> Engine:
        """Register an already-opened store document, adopting its handles.

        Unlike :meth:`add`, the workspace takes ownership: the
        document's mmap handles are released on :meth:`remove` /
        :meth:`close`, exactly as for documents mounted via
        :meth:`open_store`.  This is the building block callers use to
        mount a corpus bundle-by-bundle with their own per-document
        error policy (e.g. the serve daemon skipping corrupt bundles).
        """
        engine = self.add(name, document)
        self._stored[name] = document
        return engine

    def remove(self, name: str) -> None:
        """Drop a document (compiled queries stay cached for the rest).

        A document this workspace opened itself (via :meth:`open_store`)
        also has its mmap handles released.
        """
        del self._engines[name]
        self._invalidate_services(name)
        stored = self._stored.pop(name, None)
        if stored is not None:
            stored.close()

    def swap_stored(
        self, name: str, document: "StoredDocument"
    ) -> Optional["StoredDocument"]:
        """Atomically replace document ``name`` with a new stored bundle.

        The engine is rebuilt from ``document`` and installed under the
        same name (dict assignment to an existing key, so insertion
        order -- and hence broadcast/shard order -- is preserved), any
        parallel-service state derived from the old document is
        invalidated, and the previously owned
        :class:`~repro.store.StoredDocument` (if any) is returned
        **unclosed**: the caller decides when its readers have drained
        and closes it.  This is the daemon hot-reload building block.
        """
        if name not in self._engines:
            raise KeyError(f"no document {name!r} to swap")
        engine = Engine(
            document,
            strategy=self.strategy,
            encode_attributes=self.encode_attributes,
            encode_text=self.encode_text,
            cache=self.cache,
        )
        old = self._stored.get(name)
        self._engines[name] = engine
        self._stored[name] = document
        self._invalidate_services(name)
        return old

    def pop_stored(self, name: str) -> Optional["StoredDocument"]:
        """Unregister ``name`` and hand back its stored document unclosed.

        Like :meth:`remove` but the caller takes over the mmap handles
        (close after draining readers); returns ``None`` when the
        document was caller-owned (added via :meth:`add`).
        """
        del self._engines[name]
        self._invalidate_services(name)
        return self._stored.pop(name, None)

    def _invalidate_services(self, name: str) -> None:
        """Drop any parallel-service state derived from document ``name``
        (its shards, shard engines, and process-pool payloads) so a
        removed or re-added document can never answer from stale data."""
        with self._services_lock:
            services = list(self._services.values())
        for service in services:
            service.invalidate(name)

    # -- persistence ----------------------------------------------------------

    def save(self, path: str) -> Dict[str, str]:
        """Persist every registered document as a compiled bundle.

        Writes one :mod:`repro.store` bundle per document under
        ``path/<name>`` and returns ``{name: bundle_path}``.  A later
        :meth:`open_store` (in any process) serves the same corpus with
        zero re-parsing.  Document names that cannot be bundle names
        (path separators, ``..``) are rejected up front, before
        anything is written.
        """
        from repro.store import DocumentStore

        store = DocumentStore(path)
        for name in self._engines:
            store.path_for(name)  # validate every name before writing any
        return {
            name: store.save(name, engine.index)
            for name, engine in self._engines.items()
        }

    def open_store(
        self,
        path: str,
        names: Optional[Iterable[str]] = None,
        *,
        mmap: bool = True,
    ) -> List[str]:
        """Register every bundle of a store directory (or a chosen subset).

        Each document reopens via ``np.load(mmap_mode="r")`` -- no XML
        parsing, no index rebuild -- and is registered under its bundle
        name.  Returns the registered names in order.
        """
        from repro.store import DocumentStore

        store = DocumentStore(path)
        wanted = list(names) if names is not None else store.names()
        if not wanted:
            raise ValueError(f"no document bundles in {path!r}")
        registered: List[str] = []
        for name in wanted:
            self.add_stored(name, store.open(name, mmap=mmap))
            registered.append(name)
        return registered

    def engine(self, name: str) -> Engine:
        """The engine bound to document ``name``."""
        try:
            return self._engines[name]
        except KeyError:
            raise KeyError(
                f"no document {name!r}; registered: {self.documents()}"
            ) from None

    def documents(self) -> List[str]:
        """Registered document names, in insertion order."""
        return list(self._engines)

    def __len__(self) -> int:
        return len(self._engines)

    def __contains__(self, name: str) -> bool:
        return name in self._engines

    # -- querying -----------------------------------------------------------

    def prepare(self, query: Query, document: str) -> PreparedQuery:
        """A reusable plan for ``query`` on the named document."""
        return self.engine(document).prepare(query)

    def execute(self, query: Query, document: str) -> ExecutionResult:
        """Run ``query`` on one document; immutable per-execution result."""
        return self.engine(document).execute(query)

    def select(self, query: Query, document: str) -> List[int]:
        """Selected node ids of ``query`` on the named document."""
        return list(self.execute(query, document).ids)

    def select_many(
        self,
        queries: Iterable[Query],
        document: Optional[str] = None,
        *,
        jobs: Optional[int] = None,
        executor: str = "thread",
        shards: Optional[int] = None,
    ) -> Dict[str, object]:
        """Run a batch of queries.

        With ``document`` given, returns ``{query: [ids]}`` for that
        document; otherwise runs the batch on *every* document and
        returns ``{document: {query: [ids]}}``.  Either way each distinct
        query is compiled at most once per label inventory.

        ``jobs`` > 1 routes the batch through the sharded
        :class:`~repro.engine.parallel.QueryService` fast path (see its
        docs for ``executor`` and ``shards``); results are identical to
        the serial path.  ``executor="pool"`` routes through the
        persistent shared-memory worker pool at any ``jobs`` count
        (the pool keeps its workers -- and their warm caches -- alive
        across calls).
        """
        if (jobs is not None and jobs > 1) or executor == "pool":
            service = self.service(jobs=jobs, executor=executor, shards=shards)
            return service.select_many(queries, document)
        queries = list(queries)
        if document is not None:
            engine = self.engine(document)
            return {
                self._qkey(q): list(engine.execute(q).ids) for q in queries
            }
        return {
            name: {
                self._qkey(q): list(engine.execute(q).ids) for q in queries
            }
            for name, engine in self._engines.items()
        }

    def select_all(
        self,
        query: Query,
        *,
        jobs: Optional[int] = None,
        executor: str = "thread",
        shards: Optional[int] = None,
    ) -> Dict[str, List[int]]:
        """Run one query across every document: ``{document: [ids]}``.

        ``jobs`` > 1 fans the broadcast out across document shards on a
        worker pool (the :class:`~repro.engine.parallel.QueryService`
        fast path); ``executor="pool"`` uses the persistent
        shared-memory pool at any ``jobs`` count.
        """
        if (jobs is not None and jobs > 1) or executor == "pool":
            service = self.service(jobs=jobs, executor=executor, shards=shards)
            return service.select_all(query)
        return {
            name: list(engine.execute(query).ids)
            for name, engine in self._engines.items()
        }

    def service(
        self,
        jobs: Optional[int] = None,
        executor: str = "thread",
        shards: Optional[int] = None,
    ) -> "QueryService":
        """A (memoized) parallel query service over this workspace.

        One service -- and hence one worker pool and one set of document
        shards -- is kept per ``(jobs, executor, shards)`` configuration;
        call :meth:`close` to shut the pools down.  With
        ``executor="pool"`` the service owns a persistent
        :class:`~repro.engine.pool.WorkerPool` of shared-memory worker
        processes that stays warm across calls and survives store
        mutations (:meth:`swap_stored`) via generation-versioned
        invalidation; :meth:`close` joins or terminates its workers.
        """
        from repro.engine.parallel import QueryService

        key = (jobs if jobs is not None else 0, executor, shards)
        with self._services_lock:
            service = self._services.get(key)
            if service is None:
                service = QueryService(
                    self, jobs=jobs, executor=executor, shards=shards
                )
                self._services[key] = service
        return service

    def close(self) -> None:
        """Shut down worker pools and release owned store handles.

        Idempotent.  Every :class:`~repro.engine.parallel.QueryService`
        pool created through :meth:`service` is shut down, and every
        document this workspace opened itself via :meth:`open_store` is
        dropped and has its mmap handles closed
        (:meth:`repro.store.StoredDocument.close`).  Documents passed to
        :meth:`add` by the caller stay registered and untouched -- the
        caller owns their lifetime.  The workspace also works as a
        context manager::

            with Workspace() as ws:
                ws.open_store(path)
                ...
        """
        with self._services_lock:
            services, self._services = list(self._services.values()), {}
        for service in services:
            service.close()
        stored, self._stored = self._stored, {}
        for name, document in stored.items():
            # Drop the engine first: it holds the index whose ndarrays
            # pin exports on the mmaps being closed.
            self._engines.pop(name, None)
            document.close()

    def __enter__(self) -> "Workspace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def count_all(self, query: Query) -> Dict[str, int]:
        """Result cardinality per document (cheap fan-out analytics)."""
        return {
            name: len(engine.execute(query).ids)
            for name, engine in self._engines.items()
        }

    def cache_info(self) -> Dict[str, dict]:
        """Bounded-cache statistics across the whole workspace.

        ``compiled`` is the one shared compiled-automaton cache;
        ``documents`` maps each document to its engine's
        :meth:`~repro.engine.api.Engine.cache_info` (prepared-plan LRU,
        fused-union LRU).  A long-lived service can poll this to confirm
        nothing grows without bound.
        """
        return {
            "compiled": self.cache.cache_info(),
            "documents": {
                name: engine.cache_info()
                for name, engine in self._engines.items()
            },
        }

    @staticmethod
    def _qkey(query: Query) -> str:
        return query if isinstance(query, str) else str(query)
