"""Deterministic fault injection for chaos testing.

Production failures -- a disk filling up mid-build, a bit flip in a
cold bundle, a worker thread dying on a strategy bug, a read stalling
on congested storage -- are rare, non-deterministic, and therefore
untested unless they are *made* deterministic.  This module provides
seeded, scoped injection points that library code checks at named
sites:

- ``store.load_array``   -- before every bundle-array read
  (:func:`repro.store.format.load_array`)
- ``store.write_array``  -- before every bundle-array write
  (:func:`repro.store.format.write_bundle`); an injected ``ENOSPC``
  here models a crash mid-``store build``
- ``store.publish``      -- before a finished bundle is atomically
  renamed into place (a crash in the publish window)
- ``serve.evaluate``     -- before a query executes on a daemon worker
  thread (:meth:`repro.serve.daemon.QueryDaemon._evaluate`)
- ``pool.task``          -- before every subtask inside a shared-memory
  pool worker *process* (:meth:`repro.engine.pool._WorkerState.run`);
  under the ``fork`` start method an active plan is inherited at worker
  spawn, so chaos tests can stall or fail work inside the pool

Sites checked inside pool worker processes (``pool.task``, and
``store.load_array`` when a worker reopens a bundle) fire in the
*worker*; their counts are not visible in the parent's plan.

With no plan installed every site is a single module-global ``None``
check -- the hot path pays nothing in production.

Usage::

    from repro import faults

    with faults.inject("serve.evaluate", "exception",
                       match={"document": "bad"}):
        ...  # every evaluation of document "bad" raises

    plan = faults.FaultPlan(seed=7)
    plan.add("store.load_array", "io_error", probability=0.25)
    plan.add("store.write_array", "io_error", errno_=errno.ENOSPC,
             after=3, times=1)
    with faults.active(plan):
        ...

Fault kinds
-----------

``io_error``
    Raise :class:`InjectedFault` (an :class:`OSError`; ``errno_``
    selects the flavour, default ``EIO``).
``exception``
    Raise :class:`InjectedWorkerError` (a :class:`RuntimeError`) --
    models a bug in library code rather than the environment.
``slow_read``
    Sleep ``delay_s`` seconds, then continue.
``truncate`` / ``bit_flip``
    Deterministically corrupt the file whose path the site passed
    (seeded by the plan), then continue; the *read* of the damage is
    the fault.

Rules are scoped by ``match`` (every key must equal the site's
context) and ``unless`` (skip when all its keys equal the context --
e.g. fail every strategy except the ``naive`` reference fallback),
gated by ``after`` / ``times`` / ``probability``, and fully
deterministic under a fixed plan seed.

:func:`corrupt_file` / :func:`corrupt_bundle` are standalone seeded
corruption helpers for tests and CI round trips that do not need an
active plan.
"""

from __future__ import annotations

import errno as _errno
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

KINDS = ("io_error", "exception", "slow_read", "truncate", "bit_flip")


class InjectedFault(OSError):
    """An environment-level fault (I/O error) raised by an active plan."""

    def __init__(self, site: str, errno_: int, message: str) -> None:
        super().__init__(errno_, message)
        self.site = site


class InjectedWorkerError(RuntimeError):
    """A code-level fault (unexpected exception) raised by an active plan."""

    def __init__(self, site: str, message: str) -> None:
        super().__init__(message)
        self.site = site


@dataclass
class FaultRule:
    """One injection rule; see the module docstring for the semantics."""

    site: str
    kind: str
    match: Optional[dict] = None
    unless: Optional[dict] = None
    probability: float = 1.0
    #: Skip the first ``after`` matching checks before firing.
    after: int = 0
    #: Fire at most ``times`` times (``None`` = unbounded).
    times: Optional[int] = None
    errno_: int = _errno.EIO
    delay_s: float = 0.01
    message: Optional[str] = None
    fired: int = field(default=0, init=False)
    seen: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {KINDS}")

    def applies(self, ctx: dict) -> bool:
        if self.match and any(ctx.get(k) != v for k, v in self.match.items()):
            return False
        if self.unless and all(
            ctx.get(k) == v for k, v in self.unless.items()
        ):
            return False
        return True


class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s, installed via :func:`active`.

    All randomness (probabilistic firing, corruption positions) comes
    from one :class:`random.Random` seeded at construction, so a plan
    replays identically run after run.  Thread-safe: daemon worker
    threads and the event loop may check sites concurrently.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rules: List[FaultRule] = []
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        #: Per-site check counts (observability for tests).
        self.checks: Dict[str, int] = {}

    def add(self, site: str, kind: str, **kwargs) -> FaultRule:
        rule = FaultRule(site, kind, **kwargs)
        with self._lock:
            self.rules.append(rule)
        return rule

    def fired(self, site: Optional[str] = None) -> int:
        """Total fires, optionally restricted to one site."""
        with self._lock:
            return sum(
                r.fired
                for r in self.rules
                if site is None or r.site == site
            )

    def check(self, site: str, **ctx) -> None:
        """Evaluate every rule for ``site``; called via :func:`check`."""
        with self._lock:
            self.checks[site] = self.checks.get(site, 0) + 1
            to_fire: List[FaultRule] = []
            for rule in self.rules:
                if rule.site != site or not rule.applies(ctx):
                    continue
                rule.seen += 1
                if rule.seen <= rule.after:
                    continue
                if rule.times is not None and rule.fired >= rule.times:
                    continue
                if rule.probability < 1.0 and (
                    self._rng.random() >= rule.probability
                ):
                    continue
                rule.fired += 1
                to_fire.append(rule)
            # Corruption offsets drawn under the lock keep replays exact
            # even when several threads hit sites concurrently.
            seeds = [self._rng.randrange(2**31) for _ in to_fire]
        for rule, seed in zip(to_fire, seeds):
            self._fire(rule, seed, ctx)

    @staticmethod
    def _fire(rule: FaultRule, seed: int, ctx: dict) -> None:
        message = rule.message or (
            f"injected {rule.kind} at {rule.site}"
            + (f" ({ctx})" if ctx else "")
        )
        if rule.kind == "io_error":
            raise InjectedFault(rule.site, rule.errno_, message)
        if rule.kind == "exception":
            raise InjectedWorkerError(rule.site, message)
        if rule.kind == "slow_read":
            time.sleep(rule.delay_s)
            return
        # truncate / bit_flip need a file path from the site context.
        path = ctx.get("path")
        if path is None:
            raise ValueError(
                f"rule {rule.kind!r} at {rule.site!r} needs a 'path' context"
            )
        corrupt_file(path, mode=rule.kind, seed=seed)


# -- the (single) active plan -------------------------------------------------

_active: Optional[FaultPlan] = None
_install_lock = threading.Lock()


def check(site: str, **ctx) -> None:
    """The library-side injection point: a no-op unless a plan is active."""
    plan = _active
    if plan is not None:
        plan.check(site, **ctx)


@contextmanager
def active(plan: FaultPlan):
    """Install ``plan`` for the duration of the block (no nesting)."""
    global _active
    with _install_lock:
        if _active is not None:
            raise RuntimeError("a fault plan is already active")
        _active = plan
    try:
        yield plan
    finally:
        _active = None


@contextmanager
def inject(site: str, kind: str, *, seed: int = 0, **kwargs):
    """Shorthand: a one-rule plan active for the block."""
    plan = FaultPlan(seed=seed)
    plan.add(site, kind, **kwargs)
    with active(plan):
        yield plan


# -- standalone corruption helpers --------------------------------------------


def corrupt_file(path: str, *, mode: str = "bit_flip", seed: int = 0) -> dict:
    """Deterministically damage one file; returns what was done.

    ``bit_flip`` flips a single seeded bit (size-preserving -- only a
    checksum can see it); ``truncate`` drops the final quarter of the
    file (at least one byte), the shape a torn write or short copy
    leaves behind.
    """
    rng = random.Random(seed)
    size = os.path.getsize(path)
    if mode == "truncate":
        if size == 0:
            raise ValueError(f"cannot truncate empty file {path!r}")
        keep = min(size - 1, size - max(1, size // 4))
        with open(path, "r+b") as handle:
            handle.truncate(keep)
        return {"mode": mode, "path": path, "from": size, "to": keep}
    if mode != "bit_flip":
        raise ValueError(f"unknown corruption mode {mode!r}")
    if size == 0:
        raise ValueError(f"cannot bit-flip empty file {path!r}")
    offset = rng.randrange(size)
    bit = rng.randrange(8)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ (1 << bit)]))
    return {"mode": mode, "path": path, "offset": offset, "bit": bit}


def corrupt_bundle(
    bundle: str,
    array: Optional[str] = None,
    *,
    mode: str = "bit_flip",
    seed: int = 0,
) -> dict:
    """Damage one array of a store bundle (default: a seeded pick).

    The header manifest stays intact -- exactly the corruption class
    ``repro store verify`` exists to catch.
    """
    from repro.store.format import ARRAY_DTYPES, array_path

    if array is None:
        array = random.Random(seed).choice(sorted(ARRAY_DTYPES))
    path = array_path(bundle, array)
    report = corrupt_file(path, mode=mode, seed=seed)
    return dict(report, array=array, bundle=bundle)
