"""Tree indexes: the substrate SXSI's C++ layer provides (Section 5, [1], [18]).

- :mod:`repro.index.bitvector` -- rank/select bitvector,
- :mod:`repro.index.succinct` -- balanced-parentheses succinct tree
  (substitute for the Sadakane--Navarro structure of [18]),
- :mod:`repro.index.labels` -- per-label node lists and O(1) global counts,
- :mod:`repro.index.jumping` -- the jumping functions ``dt``, ``ft``,
  ``lt``, ``rt`` of Definition 3.2.
"""

from repro.index.bitvector import BitVector
from repro.index.labels import LabelIndex
from repro.index.jumping import OMEGA, TreeIndex
from repro.index.succinct import SuccinctTree

__all__ = ["BitVector", "LabelIndex", "TreeIndex", "SuccinctTree", "OMEGA"]
