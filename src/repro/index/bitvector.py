"""Rank/select bitvector with o(n) extra space.

The classical two-level scheme: the bit array is stored in 64-bit words
(numpy); a superblock directory stores the rank at every superblock
boundary, so ``rank`` is one directory lookup plus popcounts within a
superblock, and ``select`` is a binary search over the directory followed
by a local scan.  This is the building block for the succinct tree of
:mod:`repro.index.succinct` (substituting for [18]).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

_WORD = 64
_WORDS_PER_SUPER = 8  # 512-bit superblocks


def _popcount64(words: np.ndarray) -> np.ndarray:
    """Vectorized popcount over a uint64 array."""
    x = words.copy()
    x = x - ((x >> np.uint64(1)) & np.uint64(0x5555555555555555))
    x = (x & np.uint64(0x3333333333333333)) + (
        (x >> np.uint64(2)) & np.uint64(0x3333333333333333)
    )
    x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    return (x * np.uint64(0x0101010101010101)) >> np.uint64(56)


class BitVector:
    """Static bitvector supporting O(1)-ish rank and O(log n) select.

    ``rank1(i)`` counts ones in ``bits[0:i]`` (exclusive prefix count);
    ``select1(k)`` returns the position of the k-th one (0-based).
    """

    def __init__(self, bits: Iterable[bool]) -> None:
        bit_list = [1 if b else 0 for b in bits]
        self.n = len(bit_list)
        nwords = (self.n + _WORD - 1) // _WORD or 1
        words = np.zeros(nwords, dtype=np.uint64)
        for i, b in enumerate(bit_list):
            if b:
                words[i // _WORD] |= np.uint64(1) << np.uint64(i % _WORD)
        self._words = words
        counts = _popcount64(words)
        # Superblock directory: cumulative ones before each superblock.
        nsuper = (nwords + _WORDS_PER_SUPER - 1) // _WORDS_PER_SUPER
        super_counts = np.zeros(nsuper + 1, dtype=np.int64)
        for s in range(nsuper):
            lo = s * _WORDS_PER_SUPER
            hi = min(lo + _WORDS_PER_SUPER, nwords)
            super_counts[s + 1] = super_counts[s] + int(counts[lo:hi].sum())
        self._super = super_counts
        # Per-word cumulative counts within the whole vector (small n keeps
        # this affordable and makes rank a single subtraction).
        self._word_prefix = np.concatenate(
            ([0], np.cumsum(counts.astype(np.int64)))
        )
        self.total_ones = int(self._word_prefix[-1])

    def __len__(self) -> int:
        return self.n

    def get(self, i: int) -> int:
        """The bit at position ``i``."""
        if not 0 <= i < self.n:
            raise IndexError(i)
        word = int(self._words[i // _WORD])
        return (word >> (i % _WORD)) & 1

    def rank1(self, i: int) -> int:
        """Number of ones in positions ``[0, i)``."""
        if i <= 0:
            return 0
        if i > self.n:
            i = self.n
        w, r = divmod(i, _WORD)
        count = int(self._word_prefix[w])
        if r:
            mask = (1 << r) - 1
            count += bin(int(self._words[w]) & mask).count("1")
        return count

    def rank0(self, i: int) -> int:
        """Number of zeros in positions ``[0, i)``."""
        if i <= 0:
            return 0
        if i > self.n:
            i = self.n
        return i - self.rank1(i)

    def select1(self, k: int) -> int:
        """Position of the k-th one (0-based); raises on out of range."""
        if not 0 <= k < self.total_ones:
            raise IndexError(f"select1({k}) of {self.total_ones} ones")
        # Binary search the per-word prefix directory.
        w = int(np.searchsorted(self._word_prefix, k + 1, side="left")) - 1
        remaining = k - int(self._word_prefix[w])
        word = int(self._words[w])
        pos = w * _WORD
        while True:
            if word & 1:
                if remaining == 0:
                    return pos
                remaining -= 1
            word >>= 1
            pos += 1

    def select0(self, k: int) -> int:
        """Position of the k-th zero (0-based)."""
        total_zeros = self.n - self.total_ones
        if not 0 <= k < total_zeros:
            raise IndexError(f"select0({k}) of {total_zeros} zeros")
        lo, hi = 0, self.n
        # rank0 is monotone; binary search the smallest i with rank0(i)=k+1.
        while lo < hi:
            mid = (lo + hi) // 2
            if self.rank0(mid + 1) >= k + 1:
                hi = mid
            else:
                lo = mid + 1
        return lo
