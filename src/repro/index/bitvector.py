"""Rank/select bitvector with o(n) extra space.

The bit array is stored in 64-bit words (numpy) with a per-word
cumulative popcount directory, so ``rank`` is one directory lookup plus
one masked popcount, and ``select`` is a directory search followed by a
byte-table scan.  This is the building block for the succinct tree of
:mod:`repro.index.succinct` (substituting for [18]).

Construction is vectorized (``np.packbits`` + cumulative popcounts), and
the inner loops of ``select1``/``select0`` step one *byte* at a time
through precomputed 8-bit popcount/select tables instead of one bit at a
time -- the word-parallel counterpart of the C implementations the paper
builds on.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

_WORD = 64

# -- 8-bit lookup tables (bit i of a byte = global position base + i) -------

_BYTE_CNT = tuple(bin(b).count("1") for b in range(256))
_SELECT_IN_BYTE = tuple(
    tuple(i for i in range(8) if (b >> i) & 1) for b in range(256)
)


def _popcount64(words: np.ndarray) -> np.ndarray:
    """Vectorized popcount over a uint64 array."""
    x = words.copy()
    x = x - ((x >> np.uint64(1)) & np.uint64(0x5555555555555555))
    x = (x & np.uint64(0x3333333333333333)) + (
        (x >> np.uint64(2)) & np.uint64(0x3333333333333333)
    )
    x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    return (x * np.uint64(0x0101010101010101)) >> np.uint64(56)


class BitVector:
    """Static bitvector supporting O(1)-ish rank and fast select.

    ``rank1(i)`` counts ones in ``bits[0:i]`` (exclusive prefix count);
    ``select1(k)`` returns the position of the k-th one (0-based).

    ``bits`` may be any iterable of truthy values; a ``np.ndarray`` or
    ``bytes`` of 0/1 values takes the vectorized construction fast path.
    """

    def __init__(self, bits: Union[Iterable[bool], np.ndarray, bytes]) -> None:
        if isinstance(bits, np.ndarray):
            arr = (bits != 0).astype(np.uint8) if bits.dtype != np.uint8 else bits
        elif isinstance(bits, (bytes, bytearray)):
            arr = np.frombuffer(bytes(bits), dtype=np.uint8)
        else:
            arr = np.array([1 if b else 0 for b in bits], dtype=np.uint8)
        self.n = int(arr.size)
        nwords = (self.n + _WORD - 1) // _WORD or 1
        packed = np.packbits(arr, bitorder="little")
        if packed.size < nwords * 8:
            packed = np.concatenate(
                [packed, np.zeros(nwords * 8 - packed.size, dtype=np.uint8)]
            )
        # Little-endian view: bit i of word w is global bit w*64 + i.
        self._words = packed.view(np.dtype("<u8"))
        # Plain-int byte mirror for the byte-at-a-time scan loops (small
        # ints are interned, so this is one pointer per 8 bits).
        self._bytes = packed.tolist()
        counts = _popcount64(self._words)
        # Per-word cumulative counts (rank is a single subtraction).
        self._word_prefix = np.concatenate(
            ([0], np.cumsum(counts.astype(np.int64)))
        )
        # Zero directory: cumulative zeros before each word (select0
        # reads it directly instead of binary-searching rank0).
        self._zero_word_prefix = (
            np.arange(nwords + 1, dtype=np.int64) * _WORD - self._word_prefix
        )
        self.total_ones = int(self._word_prefix[-1])

    @classmethod
    def from_state(
        cls,
        packed: np.ndarray,
        n: int,
        word_prefix: np.ndarray,
        zero_word_prefix: np.ndarray,
    ) -> "BitVector":
        """Rehydrate from persisted state (see :meth:`state`).

        ``packed`` is the little-endian bit-packed payload padded to a
        whole number of 64-bit words; the two prefix directories are
        taken as-is (they may be read-only memory-mapped views -- every
        consumer only reads them).  The plain-int byte mirror is the one
        structure rebuilt here, since Python ints cannot be mapped.
        """
        self = cls.__new__(cls)
        self.n = int(n)
        packed = np.ascontiguousarray(packed, dtype=np.uint8)
        if packed.size % 8:
            raise ValueError("packed payload must be word-padded")
        self._words = packed.view(np.dtype("<u8"))
        self._bytes = packed.tolist()
        self._word_prefix = word_prefix
        self._zero_word_prefix = zero_word_prefix
        self.total_ones = int(word_prefix[-1])
        return self

    def state(self) -> dict:
        """The persistable arrays: packed bits plus both directories."""
        return {
            "packed": self._words.view(np.uint8),
            "word_prefix": self._word_prefix,
            "zero_word_prefix": self._zero_word_prefix,
        }

    def __len__(self) -> int:
        return self.n

    def get(self, i: int) -> int:
        """The bit at position ``i``."""
        if not 0 <= i < self.n:
            raise IndexError(i)
        return (self._bytes[i >> 3] >> (i & 7)) & 1

    def rank1(self, i: int) -> int:
        """Number of ones in positions ``[0, i)``."""
        if i <= 0:
            return 0
        if i > self.n:
            i = self.n
        w, r = divmod(i, _WORD)
        count = int(self._word_prefix[w])
        if r:
            mask = (1 << r) - 1
            count += (int(self._words[w]) & mask).bit_count()
        return count

    def rank0(self, i: int) -> int:
        """Number of zeros in positions ``[0, i)``."""
        if i <= 0:
            return 0
        if i > self.n:
            i = self.n
        return i - self.rank1(i)

    def select1(self, k: int) -> int:
        """Position of the k-th one (0-based); raises on out of range."""
        if not 0 <= k < self.total_ones:
            raise IndexError(f"select1({k}) of {self.total_ones} ones")
        # Locate the word through the prefix directory, then step bytes.
        w = int(np.searchsorted(self._word_prefix, k + 1, side="left")) - 1
        remaining = k - int(self._word_prefix[w])
        bts = self._bytes
        bi = w * 8
        while True:
            b = bts[bi]
            c = _BYTE_CNT[b]
            if remaining < c:
                return (bi << 3) + _SELECT_IN_BYTE[b][remaining]
            remaining -= c
            bi += 1

    def select0(self, k: int) -> int:
        """Position of the k-th zero (0-based).

        Reads the zero directory directly (one ``searchsorted``), then
        steps bytes with the complemented select table -- no rank0
        binary-search probes.
        """
        total_zeros = self.n - self.total_ones
        if not 0 <= k < total_zeros:
            raise IndexError(f"select0({k}) of {total_zeros} zeros")
        w = int(np.searchsorted(self._zero_word_prefix, k + 1, side="left")) - 1
        remaining = k - int(self._zero_word_prefix[w])
        bts = self._bytes
        bi = w * 8
        while True:
            b = bts[bi] ^ 0xFF
            c = _BYTE_CNT[b]
            if remaining < c:
                return (bi << 3) + _SELECT_IN_BYTE[b][remaining]
            remaining -= c
            bi += 1
