"""Top-down jumping functions ``dt``, ``ft``, ``lt``, ``rt`` (Definition 3.2).

These are the primitives that let a run touch only (approximately) relevant
nodes.  Over our id scheme they reduce to range queries on the per-label
sorted lists of :class:`~repro.index.labels.LabelIndex`:

- the *binary* subtree of ``v`` is the id range ``[v, bend(v))``,
- the followings of ``v`` below ``v0`` are ``[bend(v), bend(v0))``,

so ``dt`` and ``ft`` are O(|L| log n) binary searches.  ``lt`` and ``rt``
walk the left/right spine (O(depth) / O(#siblings)); the paper's index also
implements these by search, but the spine walk is what its implementation
section describes for the non-indexed fallback and is exact.

All functions return :data:`OMEGA` when no qualifying node exists, matching
the paper's error node Ω.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Optional

from repro.index.labels import FusedLabels, LabelIndex
from repro.tree.binary import NIL, BinaryTree

OMEGA = -2
"""The error node Ω of Definition 3.2 (distinct from the # sentinel)."""


def postorder_from_xml_end(xml_end):
    """Postorder rank per node, derived from subtree end offsets alone.

    Node ids are preorder ranks and the XML subtree of ``v`` is the id
    range ``[v, xml_end[v])``, so a node *completes* (in postorder) when
    its subtree range closes: ascending ``xml_end``, with descending
    preorder id breaking ties (a node and its last-descendant chain all
    close at the same offset, deepest first).  One ``np.lexsort`` gives
    the completion order; scattering ``arange`` through it yields the
    rank array.  Used by :meth:`TreeIndex.post_array` and by
    :func:`repro.store.store.save_document` when persisting the optional
    ``post`` bundle column.
    """
    import numpy as np

    xml_end = np.asarray(xml_end, dtype=np.int64)
    n = xml_end.size
    pre = np.arange(n, dtype=np.int64)
    order = np.lexsort((-pre, xml_end))
    post = np.empty(n, dtype=np.int64)
    post[order] = pre
    return post


class TreeIndex:
    """Bundles a :class:`BinaryTree` with its label index and jump functions."""

    def __init__(self, tree: BinaryTree, labels: Optional[LabelIndex] = None) -> None:
        self.tree = tree
        self.labels = labels if labels is not None else LabelIndex(tree)

    def fused(self, label_ids: Iterable[int]) -> FusedLabels:
        """The cached merged node array of a label-id set (see
        :meth:`repro.index.labels.LabelIndex.fused`)."""
        return self.labels.fused(label_ids)

    def shard_slice(self, lo: int, hi: int) -> "TreeIndex":
        """A self-contained index for the re-rooted slice ``[lo, hi)``.

        The slice must cover whole top-level subtrees: ``lo`` is a child
        of the root and ``hi`` is either ``n`` or the next top-level
        sibling boundary.  The result is a :class:`TreeIndex` over a
        fresh :class:`BinaryTree` whose node 0 is (a copy of) the
        document root and whose node ``l >= 1`` is global node
        ``l + (lo - 1)`` -- the shard's global preorder offset.  The
        element-name table is shared with the parent tree, so compiled
        wildcard automata keyed by label inventory stay reusable across
        shards, and the label index is carved from the parent's sorted
        arrays (:meth:`LabelIndex.sliced`) instead of being re-sorted.
        """
        import numpy as np

        tree = self.tree
        if not isinstance(tree, BinaryTree):
            tree = tree.to_binary()
        root = 0
        if not 0 < lo < hi <= tree.n:
            raise ValueError(f"invalid shard range [{lo}, {hi}) for n={tree.n}")
        if tree.parent[lo] != root or (hi < tree.n and tree.parent[hi] != root):
            raise ValueError(
                f"shard range [{lo}, {hi}) is not a union of whole "
                "top-level subtrees"
            )
        off = lo - 1
        m = hi - lo + 1
        label_of = [tree.label_of[0]] + tree.label_of[lo:hi]
        par = np.asarray(tree.parent[lo:hi], dtype=np.int64)
        par = np.where(par == root, 0, par - off)
        xml_end = np.asarray(tree.xml_end[lo:hi], dtype=np.int64) - off
        left = np.asarray(tree.left[lo:hi], dtype=np.int64)
        left = np.where(left == NIL, NIL, left - off)
        right = np.asarray(tree.right[lo:hi], dtype=np.int64)
        # The last top-level child's next sibling lies outside the slice.
        right = np.where((right == NIL) | (right >= hi), NIL, right - off)
        shard_tree = BinaryTree(
            tree.labels,
            label_of,
            [1] + left.tolist(),
            [NIL] + right.tolist(),
            [NIL] + par.tolist(),
            [m] + xml_end.tolist(),
        )
        labels = LabelIndex.sliced(
            self.labels, shard_tree, lo, hi, off, tree.label_of[0]
        )
        return TreeIndex(shard_tree, labels)

    def xml_end_array(self):
        """``tree.xml_end`` as a cached ``np.int64`` array (for
        vectorized subtree-range slicing)."""
        arr = getattr(self, "_xml_end_arr", None)
        if arr is None:
            import numpy as np

            arr = self._xml_end_arr = np.asarray(
                self.tree.xml_end, dtype=np.int64
            )
        return arr

    def parent_array(self):
        """``tree.parent`` as a cached ``np.int64`` array."""
        arr = getattr(self, "_parent_arr", None)
        if arr is None:
            import numpy as np

            arr = self._parent_arr = np.asarray(
                self.tree.parent, dtype=np.int64
            )
        return arr

    def post_array(self):
        """Postorder rank per node as a cached ``np.int64`` array.

        Together with the preorder id this is the classic XPath-
        accelerator pre/post plane: ``u`` is an ancestor of ``v`` iff
        ``pre(u) < pre(v)`` and ``post(u) > post(v)``.  Store bundles
        persist this column as an optional array
        (:data:`repro.store.format.OPTIONAL_ARRAY_DTYPES`), in which case
        :func:`repro.store.store.open_document` seeds ``_post_arr`` and
        the rebuild below never runs; bundles written before the column
        existed (or freshly parsed documents) derive it lazily in one
        ``np.lexsort`` pass.
        """
        arr = getattr(self, "_post_arr", None)
        if arr is None:
            arr = self._post_arr = postorder_from_xml_end(
                self.xml_end_array()
            )
        return arr

    def depth_array(self):
        """Node depth (root = 0) as a cached ``np.int64`` array.

        Free given the postorder column: ``post = pre + size - 1 - depth``
        and ``size = xml_end - pre``, hence ``depth = xml_end - 1 - post``
        -- one vectorized subtraction, no tree walk.
        """
        arr = getattr(self, "_depth_arr", None)
        if arr is None:
            arr = self._depth_arr = (
                self.xml_end_array() - 1 - self.post_array()
            )
        return arr

    def label_of_array(self):
        """``tree.label_of`` as a cached ``np.int64`` array."""
        arr = getattr(self, "_label_of_arr", None)
        if arr is None:
            import numpy as np

            arr = self._label_of_arr = np.asarray(
                self.tree.label_of, dtype=np.int64
            )
        return arr

    # -- label helpers -------------------------------------------------------

    def label_ids(self, names: Iterable[str]) -> list[int]:
        """Intern a set of element names; silently drops absent labels.

        A label that never occurs in the document can never be jumped to,
        so dropping it is semantically transparent (the paper's index does
        the same: the jump simply returns Ω).
        """
        out = []
        for name in names:
            lab = self.tree.label_ids.get(name)
            if lab is not None:
                out.append(lab)
        return out

    def count(self, name: str) -> int:
        """Global count of a label, O(1) (used by the hybrid planner)."""
        return self.labels.count(name)

    # -- Definition 3.2 -------------------------------------------------------

    def dt(self, v: int, label_ids: Iterable[int]) -> int:
        """First (binary) descendant of ``v`` in document order with label in L."""
        hi = self.tree.bend(v)
        hit = self.labels.first_in_range(label_ids, v + 1, hi)
        return OMEGA if hit == -1 else hit

    def ft(self, v: int, label_ids: Iterable[int], v0: int) -> int:
        """First following node of ``v`` that is a (binary) descendant of ``v0``."""
        lo = self.tree.bend(v)
        hi = self.tree.bend(v0)
        if lo >= hi:
            return OMEGA
        hit = self.labels.first_in_range(label_ids, lo, hi)
        return OMEGA if hit == -1 else hit

    def lt(self, v: int, label_ids: Iterable[int]) -> int:
        """First node on the left-most path below ``v`` with label in L."""
        lab_set = set(label_ids)
        cur = self.tree.left[v]
        while cur != NIL:
            if self.tree.label_of[cur] in lab_set:
                return cur
            cur = self.tree.left[cur]
        return OMEGA

    def rt(self, v: int, label_ids: Iterable[int]) -> int:
        """First node on the right-most path below ``v`` with label in L."""
        lab_set = set(label_ids)
        cur = self.tree.right[v]
        while cur != NIL:
            if self.tree.label_of[cur] in lab_set:
                return cur
            cur = self.tree.right[cur]
        return OMEGA

    # -- derived enumerations --------------------------------------------------

    def topmost_in_subtree(self, v: int, label_ids: Iterable[int]) -> list[int]:
        """Top-most L-labelled nodes in the binary subtree of ``v``.

        Semantically ``pi0 = dt(v, L)``, then ``pi_{k+1} = ft(pi_k, L, v)``
        until Ω -- the recipe below Definition 3.2 -- but computed as a
        single walk over the fused label array: each step bisects the
        remaining suffix for ``bend(cur)`` instead of re-searching the
        whole array.
        """
        fused = self.labels.fused(label_ids)
        lst = fused.lst
        size = fused.size
        tree = self.tree
        hi = tree.bend(v)
        out: list[int] = []
        i = bisect_left(lst, v + 1)
        while i < size:
            cur = lst[i]
            if cur >= hi:
                break
            out.append(cur)
            i = bisect_left(lst, tree.bend(cur), i + 1)
        return out
