"""Per-label node lists with O(1) global counts.

SXSI's compressed text/tree indexes expose, for every element name, the
ability to jump to labelled descendants/followings and to read the global
count of a label in constant time (Section 5).  This module is the
Python-level equivalent: for each label, the sorted list of node ids
(document order).  Because :class:`~repro.tree.binary.BinaryTree` ids *are*
document order, these lists are produced already sorted.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Optional, Protocol, Sequence


class _LabelledTree(Protocol):
    n: int
    labels: list[str]
    label_of: Sequence[int]

    def label_id(self, name: str) -> Optional[int]: ...


class LabelIndex:
    """Sorted id lists per label, plus O(1) counts.

    Works over any tree exposing ``labels`` / ``label_of`` in preorder
    (both :class:`BinaryTree` and :class:`SuccinctTree` qualify).
    """

    def __init__(self, tree: _LabelledTree) -> None:
        self.tree = tree
        lists: list[list[int]] = [[] for _ in tree.labels]
        label_of = tree.label_of
        for v in range(tree.n):
            lists[label_of[v]].append(v)
        self._lists = lists

    def count(self, label: str) -> int:
        """Global number of nodes with this element name (O(1))."""
        lab = self.tree.label_ids.get(label) if hasattr(self.tree, "label_ids") else None
        if lab is None:
            lab = _label_id(self.tree, label)
        return 0 if lab is None else len(self._lists[lab])

    def nodes(self, label: str) -> list[int]:
        """All nodes with this label, in document order."""
        lab = _label_id(self.tree, label)
        return [] if lab is None else self._lists[lab]

    def first_in_range(self, label_ids: Iterable[int], lo: int, hi: int) -> int:
        """Smallest node id in ``[lo, hi)`` whose label id is in the set.

        Returns ``-1`` when no such node exists.  Cost is
        O(|L| log n), matching the paper's index cost model.
        """
        best = -1
        for lab in label_ids:
            lst = self._lists[lab]
            i = bisect_left(lst, lo)
            if i < len(lst):
                v = lst[i]
                if v < hi and (best == -1 or v < best):
                    best = v
        return best

    def count_in_range(self, label_ids: Iterable[int], lo: int, hi: int) -> int:
        """Number of nodes in ``[lo, hi)`` with a label in the set."""
        total = 0
        for lab in label_ids:
            lst = self._lists[lab]
            total += bisect_right(lst, hi - 1) - bisect_left(lst, lo)
        return total


def _label_id(tree: _LabelledTree, name: str) -> Optional[int]:
    ids = getattr(tree, "label_ids", None)
    if ids is not None:
        return ids.get(name)
    try:
        return tree.labels.index(name)
    except ValueError:
        return None
