"""Per-label node lists with O(1) global counts and fused jump arrays.

SXSI's compressed text/tree indexes expose, for every element name, the
ability to jump to labelled descendants/followings and to read the global
count of a label in constant time (Section 5).  This module is the
Python-level equivalent: for each label, the sorted array of node ids
(document order).  Because :class:`~repro.tree.binary.BinaryTree` ids *are*
document order, these arrays are produced already sorted.

Jump targets are label *sets* (the essential labels of a tda state set),
and a per-label search pays O(|L| log n) per jump.  :meth:`LabelIndex.fused`
therefore caches, per distinct label-id set, the *merged* sorted union of
the per-label arrays, so ``dt``/``ft`` collapse to a single binary search
over one fused array.  The fused cache never needs *invalidation*: a
:class:`LabelIndex` belongs to one immutable tree, so the per-label arrays
(and hence any union of them) are fixed for its lifetime.  It is,
however, LRU-*bounded* (:data:`FUSED_CACHE_SIZE` entries): a long-lived
service that streams distinct queries past one document would otherwise
accumulate one merged union per distinct label set forever.  Eviction is
semantically transparent -- a re-requested union is simply re-merged --
and :meth:`LabelIndex.cache_info` reports hits/misses/evictions.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

#: Default LRU capacity of the per-index fused-union cache (entries,
#: counting the as-given-ordering aliases).  Override per index via the
#: ``fused_cache_size`` attribute or globally via the environment.
FUSED_CACHE_SIZE = int(os.environ.get("REPRO_FUSED_CACHE_SIZE", "256"))


class _LabelledTree(Protocol):
    n: int
    labels: list[str]
    label_of: Sequence[int]

    def label_id(self, name: str) -> Optional[int]: ...


class FusedLabels:
    """The merged sorted node ids of one label-id set.

    ``arr`` is the fused ``np.int64`` array (for vectorized range slicing);
    ``lst`` is its plain-list mirror, which the evaluator's inner loop
    probes with :func:`bisect.bisect_left` (a C scalar search without the
    per-call ufunc overhead of ``np.searchsorted``).
    """

    __slots__ = ("arr", "lst", "size")

    def __init__(self, arr: np.ndarray) -> None:
        self.arr = arr
        self.lst: List[int] = arr.tolist()
        self.size = len(self.lst)

    def first_at_or_after(self, lo: int, hi: int) -> int:
        """Smallest fused id in ``[lo, hi)``, or ``-1``."""
        i = bisect_left(self.lst, lo)
        if i < self.size:
            v = self.lst[i]
            if v < hi:
                return v
        return -1


class LabelIndex:
    """Sorted id arrays per label, plus O(1) counts and fused unions.

    Works over any tree exposing ``labels`` / ``label_of`` in preorder
    (both :class:`BinaryTree` and :class:`SuccinctTree` qualify).
    """

    def __init__(self, tree: _LabelledTree) -> None:
        self.tree = tree
        label_of = np.asarray(tree.label_of, dtype=np.int64)
        order = np.argsort(label_of, kind="stable")
        sorted_labels = label_of[order]
        boundaries = np.searchsorted(
            sorted_labels, np.arange(len(tree.labels) + 1)
        )
        ids = np.arange(tree.n, dtype=np.int64)[order]
        self._arrays: List[np.ndarray] = [
            ids[boundaries[lab] : boundaries[lab + 1]]
            for lab in range(len(tree.labels))
        ]
        self._lists: List[List[int]] = [a.tolist() for a in self._arrays]
        self._init_fused_cache()

    fused_cache_size: int = FUSED_CACHE_SIZE

    def _init_fused_cache(self) -> None:
        self._fused: "OrderedDict[Tuple[int, ...], FusedLabels]" = (
            OrderedDict()
        )
        self._fused_hits = 0
        self._fused_misses = 0
        self._fused_evictions = 0
        # The LRU mutates on every lookup (move_to_end / eviction), and
        # pool threads of a QueryService drive one shard engine's index
        # concurrently -- unlike the old append-only dict, this needs a
        # lock.  Uncontended acquisition costs nanoseconds against the
        # merge/bisect work per call.
        self._fused_lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_fused_lock"]  # locks are not picklable; workers get a fresh one
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._fused_lock = threading.Lock()

    @classmethod
    def sliced(
        cls,
        parent: "LabelIndex",
        tree: _LabelledTree,
        lo: int,
        hi: int,
        offset: int,
        root_label: int,
    ) -> "LabelIndex":
        """Shard label index carved out of ``parent`` without re-sorting.

        ``parent`` indexes the full document; the shard covers the global
        preorder range ``[lo, hi)`` re-rooted under the document root, so
        local ids are ``global - offset`` (and local 0 is the root, whose
        label id is ``root_label``).  Each per-label array is a binary-
        search slice of the parent's already-sorted array -- O(|Σ| log n
        + m) total instead of the O(m log m) argsort of a fresh build.
        """
        self = cls.__new__(cls)
        self.tree = tree
        arrays: List[np.ndarray] = []
        root_arr = np.zeros(1, dtype=np.int64)
        for lab, arr in enumerate(parent._arrays):
            i0, i1 = np.searchsorted(arr, [lo, hi], side="left")
            local = arr[i0:i1] - offset
            if lab == root_label:
                local = np.concatenate([root_arr, local])
            arrays.append(local)
        self._arrays = arrays
        self._lists = [a.tolist() for a in arrays]
        self._init_fused_cache()
        return self

    @classmethod
    def from_state(
        cls,
        tree: _LabelledTree,
        ids: np.ndarray,
        boundaries: np.ndarray,
    ) -> "LabelIndex":
        """Rehydrate from persisted state (see :meth:`state`).

        ``ids`` is the concatenation of every label's sorted node-id
        array; ``boundaries[lab] : boundaries[lab + 1]`` delimits label
        ``lab``.  Per-label arrays become zero-copy views of ``ids`` (a
        memory-mapped store array stays mapped); only the plain-list
        mirrors used by the evaluator's scalar bisects are materialized.
        No argsort runs -- the sort was paid once at store-build time.
        """
        self = cls.__new__(cls)
        self.tree = tree
        if len(boundaries) != len(tree.labels) + 1:
            raise ValueError(
                f"label index has {len(boundaries) - 1} labels, "
                f"tree has {len(tree.labels)}"
            )
        self._arrays = [
            ids[int(boundaries[lab]) : int(boundaries[lab + 1])]
            for lab in range(len(tree.labels))
        ]
        self._lists = [a.tolist() for a in self._arrays]
        self._init_fused_cache()
        return self

    def state(self) -> tuple[np.ndarray, np.ndarray]:
        """The persistable ``(ids, boundaries)`` pair for :meth:`from_state`."""
        boundaries = np.zeros(len(self._arrays) + 1, dtype=np.int64)
        np.cumsum([len(a) for a in self._arrays], out=boundaries[1:])
        ids = (
            np.concatenate(self._arrays)
            if self._arrays
            else np.empty(0, dtype=np.int64)
        )
        return ids, boundaries

    def count(self, label: str) -> int:
        """Global number of nodes with this element name (O(1))."""
        lab = _label_id(self.tree, label)
        return 0 if lab is None else len(self._lists[lab])

    def nodes(self, label: str) -> list[int]:
        """All nodes with this label, in document order."""
        lab = _label_id(self.tree, label)
        return [] if lab is None else self._lists[lab]

    def nodes_array(self, label: str) -> np.ndarray:
        """All nodes with this label as a sorted ``np.int64`` array."""
        lab = _label_id(self.tree, label)
        if lab is None:
            return np.empty(0, dtype=np.int64)
        return self._arrays[lab]

    def fused(self, label_ids: Iterable[int]) -> FusedLabels:
        """The merged sorted union array of a label-id set (cached).

        Per-label arrays are disjoint (each node has one label), so the
        union is a plain merge.  The canonical cache key is the sorted id
        tuple; the as-given ordering is aliased to the same
        :class:`FusedLabels`, so repeated jumps with the same essential-id
        list (the common case: one list object per tda state set) hit the
        cache without re-sorting.
        """
        key = tuple(label_ids)
        with self._fused_lock:
            cache = self._fused
            hit = cache.get(key)
            if hit is not None:
                cache.move_to_end(key)
                self._fused_hits += 1
                return hit
            canonical = tuple(sorted(key))
            hit = cache.get(canonical) if canonical != key else None
            if hit is None:
                if not canonical:
                    merged = np.empty(0, dtype=np.int64)
                elif len(canonical) == 1:
                    merged = self._arrays[canonical[0]]
                else:
                    parts = [self._arrays[lab] for lab in canonical]
                    merged = np.sort(
                        np.concatenate(parts), kind="mergesort"
                    )
                hit = cache[canonical] = FusedLabels(merged)
                self._fused_misses += 1
            else:
                cache.move_to_end(canonical)
                self._fused_hits += 1
            if key != canonical:
                cache[key] = hit
            while len(cache) > self.fused_cache_size:
                cache.popitem(last=False)
                self._fused_evictions += 1
            return hit

    def cache_info(self) -> dict:
        """Fused-union cache statistics (LRU-bounded; see module docs)."""
        with self._fused_lock:
            return {
                "size": len(self._fused),
                "maxsize": self.fused_cache_size,
                "hits": self._fused_hits,
                "misses": self._fused_misses,
                "evictions": self._fused_evictions,
            }

    def first_in_range(self, label_ids: Iterable[int], lo: int, hi: int) -> int:
        """Smallest node id in ``[lo, hi)`` whose label id is in the set.

        Returns ``-1`` when no such node exists.  One binary search over
        the fused union array, not a per-label search loop.
        """
        return self.fused(label_ids).first_at_or_after(lo, hi)

    def count_in_range(self, label_ids: Iterable[int], lo: int, hi: int) -> int:
        """Number of nodes in ``[lo, hi)`` with a label in the set."""
        fused = self.fused(label_ids)
        lo_i, hi_i = np.searchsorted(fused.arr, [lo, hi], side="left")
        return int(hi_i - lo_i)


def _label_id(tree: _LabelledTree, name: str) -> Optional[int]:
    ids = getattr(tree, "label_ids", None)
    if ids is not None:
        return ids.get(name)
    try:
        return tree.labels.index(name)
    except ValueError:
        return None
