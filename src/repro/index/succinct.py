"""Balanced-parentheses succinct tree (substitute for Sadakane–Navarro [18]).

The paper's engine avoids pointer structures (5-10x memory blow-up) by
running over succinct trees.  This module implements the classical
balanced-parentheses (BP) representation with a block-accelerated
excess-search structure (a flat cousin of the range-min-max tree):

- the tree topology is the DFS parenthesis sequence stored in a
  :class:`~repro.index.bitvector.BitVector` (``(`` = 1, ``)`` = 0),
- per-block excess summaries (total delta, min, max) let ``findclose`` /
  ``enclose`` skip whole blocks,
- node ids are preorder numbers, so they coincide with the ids used by
  :class:`~repro.tree.binary.BinaryTree` and the two backends are
  interchangeable behind the navigation API.

This is a faithful functional substitute: same operation set, same
asymptotics at the API level; absolute constants obviously differ from the
authors' C++.
"""

from __future__ import annotations

import sys
from typing import Optional

import numpy as np

from repro.index.bitvector import BitVector
from repro.tree.binary import NIL, BinaryTree
from repro.tree.document import XMLDocument

_BLOCK = 256  # bits per excess-summary block


class SuccinctTree:
    """BP-encoded ordinal tree with firstChild/nextSibling/parent/subtree ops."""

    def __init__(self, parens: list[int], label_of: list[int], labels: list[str]) -> None:
        if len(parens) != 2 * len(label_of):
            raise ValueError("parenthesis sequence length must be 2 * #nodes")
        self.bv = BitVector(parens)
        self.n = len(label_of)
        self.labels = labels
        self.label_ids = {name: i for i, name in enumerate(labels)}
        self.label_of = label_of
        self._build_excess_blocks(parens)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_document(cls, doc: XMLDocument) -> "SuccinctTree":
        """Encode an XML document's element skeleton."""
        parens: list[int] = []
        labels: list[str] = []
        label_ids: dict[str, int] = {}
        label_of: list[int] = []
        stack = [(doc.root, 0)]
        while stack:
            node, phase = stack.pop()
            if phase == 1:
                parens.append(0)
                continue
            parens.append(1)
            lab = label_ids.get(node.label)
            if lab is None:
                lab = label_ids[node.label] = len(labels)
                labels.append(node.label)
            label_of.append(lab)
            stack.append((node, 1))
            stack.extend((c, 0) for c in reversed(node.children))
        return cls(parens, label_of, labels)

    @classmethod
    def from_binary(cls, tree: BinaryTree) -> "SuccinctTree":
        """Re-encode an existing pointer tree (shares label interning order)."""
        parens: list[int] = []
        stack: list[tuple[int, int]] = [(0, 0)]
        while stack:
            v, phase = stack.pop()
            if phase == 1:
                parens.append(0)
                continue
            parens.append(1)
            stack.append((v, 1))
            for c in reversed(list(tree.children(v))):
                stack.append((c, 0))
        return cls(parens, list(tree.label_of), list(tree.labels))

    def _build_excess_blocks(self, parens: list[int]) -> None:
        m = len(parens)
        nblocks = (m + _BLOCK - 1) // _BLOCK or 1
        total = np.zeros(nblocks, dtype=np.int64)
        bmin = np.zeros(nblocks, dtype=np.int64)
        bmax = np.zeros(nblocks, dtype=np.int64)
        for b in range(nblocks):
            lo = b * _BLOCK
            hi = min(lo + _BLOCK, m)
            exc = 0
            mn = 1 << 60
            mx = -(1 << 60)
            for i in range(lo, hi):
                exc += 1 if parens[i] else -1
                if exc < mn:
                    mn = exc
                if exc > mx:
                    mx = exc
            total[b] = exc
            bmin[b] = mn
            bmax[b] = mx
        # Absolute excess at each block start.
        starts = np.zeros(nblocks + 1, dtype=np.int64)
        starts[1:] = np.cumsum(total)
        self._block_total = total
        self._block_min = bmin
        self._block_max = bmax
        self._block_start_excess = starts
        self._m = m

    # -- excess machinery ---------------------------------------------------

    def _excess(self, i: int) -> int:
        """Excess of the prefix ``parens[0:i]``."""
        return 2 * self.bv.rank1(i) - i

    def _bit(self, i: int) -> int:
        return self.bv.get(i)

    def findclose(self, p: int) -> int:
        """Position of the ``)`` matching the ``(`` at position ``p``."""
        if self._bit(p) != 1:
            raise ValueError(f"position {p} is not an opening parenthesis")
        target = self._excess(p)  # excess returns to this level after match
        # Scan the rest of p's block.
        block = p // _BLOCK
        hi = min((block + 1) * _BLOCK, self._m)
        exc = self._excess(p + 1)
        i = p + 1
        while i < hi:
            if exc == target and self._bit(i - 1) == 0:
                return i - 1
            exc += 1 if self._bit(i) else -1
            i += 1
        if exc == target and i > p + 1 and self._bit(i - 1) == 0:
            return i - 1
        # Jump over blocks whose min excess stays above target.
        b = block + 1
        nblocks = len(self._block_total)
        while b < nblocks:
            start_exc = int(self._block_start_excess[b])
            if start_exc + int(self._block_min[b]) <= target:
                lo = b * _BLOCK
                bhi = min(lo + _BLOCK, self._m)
                exc = start_exc
                for j in range(lo, bhi):
                    exc += 1 if self._bit(j) else -1
                    if exc == target:
                        return j
            b += 1
        raise ValueError(f"unbalanced parentheses: no close for {p}")

    def enclose(self, p: int) -> int:
        """Opening position of the smallest pair strictly enclosing ``p``."""
        if self._bit(p) != 1:
            raise ValueError(f"position {p} is not an opening parenthesis")
        target = self._excess(p) - 1  # excess just before the enclosing '('
        if target < 0:
            return -1
        block = p // _BLOCK
        lo = block * _BLOCK
        exc = self._excess(p)
        i = p - 1
        while i >= lo:
            prev = exc - (1 if self._bit(i) else -1)
            if prev == target and self._bit(i) == 1:
                return i
            exc = prev
            i -= 1
        b = block - 1
        while b >= 0:
            start_exc = int(self._block_start_excess[b])
            if start_exc + int(self._block_min[b]) <= target <= start_exc + int(
                self._block_max[b]
            ) or start_exc == target:
                bhi = min((b + 1) * _BLOCK, self._m)
                blo = b * _BLOCK
                exc = int(self._block_start_excess[b + 1])
                for j in range(bhi - 1, blo - 1, -1):
                    prev = exc - (1 if self._bit(j) else -1)
                    if prev == target and self._bit(j) == 1:
                        return j
                    exc = prev
            b -= 1
        return -1

    # -- node <-> position mapping ------------------------------------------

    def open_pos(self, v: int) -> int:
        """BP position of the opening parenthesis of node ``v``."""
        return self.bv.select1(v)

    def node_at(self, pos: int) -> int:
        """Preorder id of the node whose ``(`` is at ``pos``."""
        return self.bv.rank1(pos)

    # -- navigation (BinaryTree-compatible surface) ---------------------------

    def label(self, v: int) -> str:
        """Element name of node ``v``."""
        return self.labels[self.label_of[v]]

    def first_child(self, v: int) -> int:
        p = self.open_pos(v)
        if p + 1 < self._m and self._bit(p + 1) == 1:
            return v + 1
        return NIL

    def next_sibling(self, v: int) -> int:
        close = self.findclose(self.open_pos(v))
        if close + 1 < self._m and self._bit(close + 1) == 1:
            return self.node_at(close + 1)
        return NIL

    def parent(self, v: int) -> int:
        enc = self.enclose(self.open_pos(v))
        return NIL if enc < 0 else self.node_at(enc)

    def subtree_size(self, v: int) -> int:
        """Number of nodes in the XML subtree of ``v``."""
        p = self.open_pos(v)
        return (self.findclose(p) - p + 1) // 2

    def xml_end(self, v: int) -> int:
        """Exclusive end of the contiguous preorder id range of ``v``."""
        return v + self.subtree_size(v)

    def is_leaf(self, v: int) -> bool:
        return self.first_child(v) == NIL

    def to_binary(self) -> BinaryTree:
        """Materialize the pointer representation (same preorder ids).

        The engines' hot loops index pointer arrays; this adapter lets a
        document stored succinctly be queried by them, demonstrating that
        the two backends are interchangeable (and what the pointer
        blow-up buys).
        """
        left = [NIL] * self.n
        right = [NIL] * self.n
        parent = [NIL] * self.n
        xml_end = [0] * self.n
        for v in range(self.n):
            left[v] = self.first_child(v)
            right[v] = self.next_sibling(v)
            parent[v] = self.parent(v)
            xml_end[v] = self.xml_end(v)
        return BinaryTree(
            list(self.labels), list(self.label_of), left, right, parent, xml_end
        )

    def __len__(self) -> int:
        return self.n

    # -- memory accounting (for the storage ablation bench) -------------------

    def memory_bytes(self) -> int:
        """Approximate resident bytes of the topology structures."""
        total = self.bv._words.nbytes
        total += self.bv._word_prefix.nbytes + self.bv._super.nbytes
        total += (
            self._block_total.nbytes
            + self._block_min.nbytes
            + self._block_max.nbytes
            + self._block_start_excess.nbytes
        )
        # Label array: one small int per node.
        total += 4 * self.n
        return total

    @staticmethod
    def pointer_memory_bytes(tree: BinaryTree) -> int:
        """Approximate bytes of the pointer representation, for contrast."""
        per_list = sys.getsizeof(tree.left) + 8 * tree.n  # CPython int refs
        # left, right, parent, bparent, xml_end, label_of
        return 6 * per_list
