"""Balanced-parentheses succinct tree (substitute for Sadakane–Navarro [18]).

The paper's engine avoids pointer structures (5-10x memory blow-up) by
running over succinct trees.  This module implements the classical
balanced-parentheses (BP) representation with a block-accelerated
excess-search structure (a flat cousin of the range-min-max tree):

- the tree topology is the DFS parenthesis sequence stored in a
  :class:`~repro.index.bitvector.BitVector` (``(`` = 1, ``)`` = 0),
- per-block excess summaries (total delta, min, max) let ``findclose`` /
  ``enclose`` skip whole blocks, and within candidate blocks the scans
  advance one *byte* at a time through precomputed 8-bit excess tables
  (total / min-prefix / min- and max-suffix excess per byte value) --
  the word-parallel technique of the C implementations, at Python scale;
- node ids are preorder numbers, so they coincide with the ids used by
  :class:`~repro.tree.binary.BinaryTree` and the two backends are
  interchangeable behind the navigation API.

This is a faithful functional substitute: same operation set, same
asymptotics at the API level; absolute constants obviously differ from the
authors' C++.
"""

from __future__ import annotations

import sys
from typing import Optional

import numpy as np

from repro.index.bitvector import BitVector
from repro.tree.binary import NIL, BinaryTree
from repro.tree.document import XMLDocument

_BLOCK = 256  # bits per excess-summary block

# -- 8-bit excess tables (bit i of a byte = BP position base + i) -----------
# For each byte value: the total excess over its 8 bits, the minimum
# excess over its non-empty prefixes, and the min/max excess over its
# non-empty suffixes (scanning backwards).

_B_EXC = [0] * 256
_B_MINPRE = [0] * 256
_B_MINSUF = [0] * 256
_B_MAXSUF = [0] * 256
for _b in range(256):
    _e = 0
    _mn = 8
    for _k in range(8):
        _e += 1 if (_b >> _k) & 1 else -1
        if _e < _mn:
            _mn = _e
    _B_EXC[_b] = _e
    _B_MINPRE[_b] = _mn
    _s = 0
    _mns = 8
    _mxs = -8
    for _k in range(7, -1, -1):
        _s += 1 if (_b >> _k) & 1 else -1
        if _s < _mns:
            _mns = _s
        if _s > _mxs:
            _mxs = _s
    _B_MINSUF[_b] = _mns
    _B_MAXSUF[_b] = _mxs
del _b, _e, _mn, _k, _s, _mns, _mxs


class SuccinctTree:
    """BP-encoded ordinal tree with firstChild/nextSibling/parent/subtree ops."""

    def __init__(self, parens, label_of: list[int], labels: list[str]) -> None:
        bits = np.asarray(parens, dtype=np.uint8)
        if int(bits.size) != 2 * len(label_of):
            raise ValueError("parenthesis sequence length must be 2 * #nodes")
        self.bv = BitVector(bits)
        self.n = len(label_of)
        self.labels = labels
        self.label_ids = {name: i for i, name in enumerate(labels)}
        self.label_of = label_of
        self._build_excess_blocks(bits)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_document(cls, doc: XMLDocument) -> "SuccinctTree":
        """Encode an XML document's element skeleton."""
        parens: list[int] = []
        labels: list[str] = []
        label_ids: dict[str, int] = {}
        label_of: list[int] = []
        stack = [(doc.root, 0)]
        while stack:
            node, phase = stack.pop()
            if phase == 1:
                parens.append(0)
                continue
            parens.append(1)
            lab = label_ids.get(node.label)
            if lab is None:
                lab = label_ids[node.label] = len(labels)
                labels.append(node.label)
            label_of.append(lab)
            stack.append((node, 1))
            stack.extend((c, 0) for c in reversed(node.children))
        return cls(parens, label_of, labels)

    @classmethod
    def from_binary(cls, tree: BinaryTree) -> "SuccinctTree":
        """Re-encode an existing pointer tree (shares label interning order)."""
        parens: list[int] = []
        stack: list[tuple[int, int]] = [(0, 0)]
        while stack:
            v, phase = stack.pop()
            if phase == 1:
                parens.append(0)
                continue
            parens.append(1)
            stack.append((v, 1))
            for c in reversed(list(tree.children(v))):
                stack.append((c, 0))
        return cls(parens, list(tree.label_of), list(tree.labels))

    @classmethod
    def from_state(
        cls,
        bv: BitVector,
        label_of: list[int],
        labels: list[str],
        block_total: np.ndarray,
        block_min: np.ndarray,
        block_max: np.ndarray,
        block_start_excess: np.ndarray,
    ) -> "SuccinctTree":
        """Rehydrate from persisted state (see :meth:`state`).

        The excess-summary tables are taken as-is (read-only views are
        fine); nothing is re-derived from the parenthesis sequence.
        """
        self = cls.__new__(cls)
        self.bv = bv
        self.n = len(label_of)
        self.labels = labels
        self.label_ids = {name: i for i, name in enumerate(labels)}
        self.label_of = label_of
        self._block_total = block_total
        self._block_min = block_min
        self._block_max = block_max
        self._block_start_excess = block_start_excess
        self._m = bv.n
        return self

    def state(self) -> dict:
        """The persistable excess-summary arrays (BP bits live in ``bv``)."""
        return {
            "block_total": self._block_total,
            "block_min": self._block_min,
            "block_max": self._block_max,
            "block_start_excess": self._block_start_excess,
        }

    def _build_excess_blocks(self, bits: np.ndarray) -> None:
        m = int(bits.size)
        nblocks = (m + _BLOCK - 1) // _BLOCK or 1
        deltas = np.zeros(nblocks * _BLOCK, dtype=np.int64)
        deltas[:m] = bits.astype(np.int64) * 2 - 1
        cum = np.cumsum(deltas).reshape(nblocks, _BLOCK)
        starts = np.zeros(nblocks + 1, dtype=np.int64)
        starts[1:] = cum[:, -1]
        # (Padding repeats the final excess, which never tightens min/max.)
        self._block_total = starts[1:] - starts[:-1]
        self._block_min = cum.min(axis=1) - starts[:-1]
        self._block_max = cum.max(axis=1) - starts[:-1]
        self._block_start_excess = starts
        self._m = m

    # -- excess machinery ---------------------------------------------------

    def _excess(self, i: int) -> int:
        """Excess of the prefix ``parens[0:i]``."""
        return 2 * self.bv.rank1(i) - i

    def _bit(self, i: int) -> int:
        return self.bv.get(i)

    def findclose(self, p: int) -> int:
        """Position of the ``)`` matching the ``(`` at position ``p``."""
        bts = self.bv._bytes
        if not (bts[p >> 3] >> (p & 7)) & 1:
            raise ValueError(f"position {p} is not an opening parenthesis")
        target = self._excess(p)  # excess returns to this level after match
        m = self._m
        # Bit-scan the rest of p's byte.
        cur = target + 1
        j = p + 1
        stop = min((p >> 3) * 8 + 8, m)
        while j < stop:
            cur += 1 if (bts[j >> 3] >> (j & 7)) & 1 else -1
            if cur == target:
                return j
            j += 1
        # Byte-scan the rest of p's block through the excess tables.
        block = p // _BLOCK
        hit = self._scan_fwd(j >> 3, min((block + 1) * _BLOCK, m + 7) >> 3, cur, target)
        if hit >= 0:
            if hit < m:
                return hit
            raise ValueError(f"unbalanced parentheses: no close for {p}")
        # Jump over blocks whose min excess stays above target.
        bse = self._block_start_excess
        bmin = self._block_min
        nblocks = len(self._block_total)
        b = block + 1
        while b < nblocks:
            start_exc = int(bse[b])
            if start_exc + int(bmin[b]) <= target:
                hit = self._scan_fwd(
                    (b * _BLOCK) >> 3,
                    min((b + 1) * _BLOCK, m + 7) >> 3,
                    start_exc,
                    target,
                )
                if 0 <= hit < m:
                    return hit
            b += 1
        raise ValueError(f"unbalanced parentheses: no close for {p}")

    def _scan_fwd(self, bi: int, bhi: int, cur: int, target: int) -> int:
        """First position in bytes ``[bi, bhi)`` where the running excess
        (``cur`` at byte ``bi``'s start) drops to ``target``; -1 if none."""
        bts = self.bv._bytes
        minpre = _B_MINPRE
        exc = _B_EXC
        while bi < bhi:
            b = bts[bi]
            if cur + minpre[b] <= target:
                base = bi << 3
                for k in range(8):
                    cur += 1 if (b >> k) & 1 else -1
                    if cur == target:
                        return base + k
            else:
                cur += exc[b]
            bi += 1
        return -1

    def enclose(self, p: int) -> int:
        """Opening position of the smallest pair strictly enclosing ``p``."""
        bts = self.bv._bytes
        if not (bts[p >> 3] >> (p & 7)) & 1:
            raise ValueError(f"position {p} is not an opening parenthesis")
        target = self._excess(p) - 1  # excess just before the enclosing '('
        if target < 0:
            return -1
        # Bit-scan backwards to p's byte boundary.
        cur = target + 1  # excess of prefix [0, p)... plus the scan invariant
        j = p - 1
        byte_start = (p >> 3) * 8
        while j >= byte_start:
            bit = (bts[j >> 3] >> (j & 7)) & 1
            prev = cur - (1 if bit else -1)
            if prev == target and bit:
                return j
            cur = prev
            j -= 1
        # Byte-scan backwards through p's block.
        block = p // _BLOCK
        hit = self._scan_bwd((byte_start >> 3) - 1, (block * _BLOCK) >> 3, cur, target)
        if hit >= 0:
            return hit
        # Block jumps: only blocks whose interior excess window reaches
        # the target are scanned; a block whose *start* excess alone
        # matches cannot contain the answer anywhere but its first
        # position, which is checked in O(1) (no scan).
        bse = self._block_start_excess
        bmin = self._block_min
        bmax = self._block_max
        b = block - 1
        while b >= 0:
            start_exc = int(bse[b])
            if start_exc + int(bmin[b]) <= target <= start_exc + int(bmax[b]):
                hit = self._scan_bwd(
                    (((b + 1) * _BLOCK) >> 3) - 1,
                    (b * _BLOCK) >> 3,
                    int(bse[b + 1]),
                    target,
                )
                if hit >= 0:
                    return hit
            elif start_exc == target:
                pos = b * _BLOCK
                if (bts[pos >> 3] >> (pos & 7)) & 1:
                    return pos
            b -= 1
        return -1

    def _scan_bwd(self, bi: int, blo: int, cur: int, target: int) -> int:
        """Last position in bytes ``[blo, bi]`` whose preceding excess is
        ``target`` at an opening parenthesis; ``cur`` is the running
        excess at byte ``bi``'s *end*.  Returns -1 if none."""
        bts = self.bv._bytes
        minsuf = _B_MINSUF
        maxsuf = _B_MAXSUF
        exc = _B_EXC
        while bi >= blo:
            b = bts[bi]
            if cur - maxsuf[b] <= target <= cur - minsuf[b]:
                base = bi << 3
                c2 = cur
                for k in range(7, -1, -1):
                    bit = (b >> k) & 1
                    prev = c2 - (1 if bit else -1)
                    if prev == target and bit:
                        return base + k
                    c2 = prev
            cur -= exc[b]
            bi -= 1
        return -1

    # -- node <-> position mapping ------------------------------------------

    def open_pos(self, v: int) -> int:
        """BP position of the opening parenthesis of node ``v``."""
        return self.bv.select1(v)

    def node_at(self, pos: int) -> int:
        """Preorder id of the node whose ``(`` is at ``pos``."""
        return self.bv.rank1(pos)

    # -- navigation (BinaryTree-compatible surface) ---------------------------

    def label(self, v: int) -> str:
        """Element name of node ``v``."""
        return self.labels[self.label_of[v]]

    def first_child(self, v: int) -> int:
        p = self.open_pos(v)
        if p + 1 < self._m and self._bit(p + 1) == 1:
            return v + 1
        return NIL

    def next_sibling(self, v: int) -> int:
        close = self.findclose(self.open_pos(v))
        if close + 1 < self._m and self._bit(close + 1) == 1:
            return self.node_at(close + 1)
        return NIL

    def parent(self, v: int) -> int:
        enc = self.enclose(self.open_pos(v))
        return NIL if enc < 0 else self.node_at(enc)

    def subtree_size(self, v: int) -> int:
        """Number of nodes in the XML subtree of ``v``."""
        p = self.open_pos(v)
        return (self.findclose(p) - p + 1) // 2

    def xml_end(self, v: int) -> int:
        """Exclusive end of the contiguous preorder id range of ``v``."""
        return v + self.subtree_size(v)

    def is_leaf(self, v: int) -> bool:
        return self.first_child(v) == NIL

    def to_binary(self) -> BinaryTree:
        """Materialize the pointer representation (same preorder ids).

        The engines' hot loops index pointer arrays; this adapter lets a
        document stored succinctly be queried by them, demonstrating that
        the two backends are interchangeable (and what the pointer
        blow-up buys).  One linear pass over the parenthesis sequence
        with an explicit stack -- O(n), not O(n * depth).
        """
        n = self.n
        left = [NIL] * n
        right = [NIL] * n
        parent = [NIL] * n
        xml_end = [0] * n
        bts = self.bv._bytes
        stack: list[list[int]] = []  # [node, last child seen]
        nid = -1
        for pos in range(self._m):
            if (bts[pos >> 3] >> (pos & 7)) & 1:
                nid += 1
                if stack:
                    top = stack[-1]
                    parent[nid] = top[0]
                    if top[1] == NIL:
                        left[top[0]] = nid
                    else:
                        right[top[1]] = nid
                    top[1] = nid
                stack.append([nid, NIL])
            else:
                xml_end[stack.pop()[0]] = nid + 1
        return BinaryTree(
            list(self.labels), list(self.label_of), left, right, parent, xml_end
        )

    def __len__(self) -> int:
        return self.n

    # -- memory accounting (for the storage ablation bench) -------------------

    def memory_bytes(self) -> int:
        """Approximate resident bytes of the topology structures."""
        total = self.bv._words.nbytes
        total += self.bv._word_prefix.nbytes
        total += self.bv._zero_word_prefix.nbytes
        total += len(self.bv._bytes) * 8  # byte-mirror (interned-int refs)
        total += (
            self._block_total.nbytes
            + self._block_min.nbytes
            + self._block_max.nbytes
            + self._block_start_excess.nbytes
        )
        # Label array: one small int per node.
        total += 4 * self.n
        return total

    @staticmethod
    def pointer_memory_bytes(tree: BinaryTree) -> int:
        """Approximate bytes of the pointer representation, for contrast."""
        per_list = sys.getsizeof(tree.left) + 8 * tree.n  # CPython int refs
        # left, right, parent, bparent, xml_end, label_of
        return 6 * per_list
