"""``repro serve``: a persistent query daemon over mmap store corpora.

The package turns the single-shot library into a long-running system:

- :class:`~repro.serve.daemon.QueryDaemon` mounts one or more
  :class:`~repro.store.DocumentStore` corpora via zero-copy mmap reopen
  and keeps :class:`~repro.engine.workspace.Workspace` /
  :class:`~repro.engine.plan.PreparedQuery` / planner state hot across
  requests, behind a stdlib-only asyncio HTTP/JSON front
  (:mod:`repro.serve.http`) with a bounded worker pool, admission
  control, and per-request timeouts.  It self-heals: corrupt bundles
  are skipped at mount, a failing strategy retries once on the
  reference path, repeatedly failing documents are quarantined behind
  structured 503s (``/healthz`` reports ``degraded``), and shutdown is
  a graceful drain.
- :class:`~repro.serve.client.ServeClient` is the matching stdlib
  client (``repro client query/batch/stats`` in the CLI), with an
  exponential-backoff retry budget (seeded jitter) on connection
  errors, 429 and 503.
- :class:`~repro.serve.daemon.DaemonThread` runs a daemon on a
  background thread for tests and benchmarks.
"""

from repro.serve.client import ServeClient, ServeError, format_rows
from repro.serve.daemon import DaemonThread, QueryDaemon

__all__ = [
    "DaemonThread",
    "QueryDaemon",
    "ServeClient",
    "ServeError",
    "format_rows",
]
