"""Stdlib client for the query daemon (and the ``repro client`` CLI).

:class:`ServeClient` speaks the daemon's HTTP/JSON protocol over a
persistent keep-alive :class:`http.client.HTTPConnection`.  Error
responses raise :class:`ServeError` carrying the daemon's structured
payload.

Retry policy
------------

Every endpoint the daemon exposes is a read (idempotent), so transient
failures are safely retried: connection errors (daemon restarting, a
dropped keep-alive socket), ``429 overloaded`` and ``503`` (quarantine
lifting, a drain on one replica) are re-attempted up to ``retries``
times with exponential backoff -- ``backoff_s * 2**attempt`` capped at
``backoff_max_s`` -- multiplied by *seeded* jitter in ``[0.5, 1.5)``
(a fleet of clients with distinct seeds de-synchronizes; a test with a
fixed seed replays exact delays).  Any other error, and any response at
all from a non-idempotent future endpoint, is surfaced immediately.
``retries=0`` restores fail-fast behaviour.

:func:`format_rows` renders result rows as an aligned plain-text table,
CSV, or JSON -- the same three output modes for every ``repro client``
subcommand.
"""

from __future__ import annotations

import csv
import http.client
import io
import json
import random
import time
from typing import Any, Dict, List, Optional
from urllib.parse import urlencode

#: HTTP statuses worth retrying for an idempotent request: transient
#: overload/unavailability, not client or evaluation errors.
RETRY_STATUSES = (429, 503)


class ServeError(Exception):
    """A non-2xx daemon response, with its structured error payload."""

    def __init__(self, status: int, payload: dict) -> None:
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        self.status = status
        self.payload = payload
        self.kind = error.get("kind", "unknown")
        message = error.get("message", "unknown error")
        super().__init__(f"HTTP {status} [{self.kind}]: {message}")


class ServeClient:
    """A thin blocking client bound to one daemon address."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8726,
        *,
        timeout: float = 60.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        backoff_max_s: float = 2.0,
        retry_seed: Optional[int] = None,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self._rng = random.Random(
            retry_seed if retry_seed is not None else hash((host, port))
        )
        self._conn: Optional[http.client.HTTPConnection] = None
        #: Seam for tests (and callers embedding the client in an event
        #: loop) to observe or replace the backoff sleeps.
        self._sleep = time.sleep

    # -- transport -----------------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        """The jittered delay before retry ``attempt`` (0-based)."""
        base = min(self.backoff_max_s, self.backoff_s * (2.0**attempt))
        return base * (0.5 + self._rng.random())

    def close(self) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        *,
        body: Optional[dict] = None,
        params: Optional[Dict[str, str]] = None,
        idempotent: bool = True,
    ) -> dict:
        if params:
            path = f"{path}?{urlencode(params)}"
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        attempts = (self.retries + 1) if idempotent else 1
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt:
                self._sleep(self._backoff(attempt - 1))
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(method, path, body=data, headers=headers)
                response = self._conn.getresponse()
                raw = response.read()
            except (ConnectionError, http.client.HTTPException, OSError) as exc:
                # Daemon unreachable, restarting, or it dropped the
                # keep-alive socket: reconnect and (maybe) retry.
                self.close()
                last_error = exc
                continue
            try:
                payload = json.loads(raw)
            except ValueError:
                raise ServeError(
                    response.status,
                    {
                        "error": {
                            "kind": "protocol",
                            "message": raw[:200].decode("utf-8", "replace"),
                        }
                    },
                ) from None
            if response.status in RETRY_STATUSES and attempt < attempts - 1:
                last_error = ServeError(response.status, payload)
                continue
            if response.status >= 400:
                raise ServeError(response.status, payload)
            return payload
        if isinstance(last_error, ServeError):
            raise last_error
        raise ConnectionError(
            f"cannot reach daemon at {self.host}:{self.port} "
            f"after {attempts} attempt(s): {last_error}"
        ) from last_error

    # -- endpoints -----------------------------------------------------------

    def query(
        self,
        query: str,
        *,
        document: Optional[str] = None,
        count: bool = False,
        labels: bool = False,
        stats: bool = False,
        strategy: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> dict:
        body: Dict[str, Any] = {"query": query}
        if document is not None:
            body["document"] = document
        if count:
            body["count"] = True
        if labels:
            body["labels"] = True
        if stats:
            body["stats"] = True
        if strategy is not None:
            body["strategy"] = strategy
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._request("POST", "/query", body=body)

    def batch(
        self,
        queries: List[str],
        *,
        document: Optional[str] = None,
        count: bool = False,
        strategy: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> dict:
        body: Dict[str, Any] = {"queries": list(queries)}
        if document is not None:
            body["document"] = document
        if count:
            body["count"] = True
        if strategy is not None:
            body["strategy"] = strategy
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._request("POST", "/batch", body=body)

    def explain(
        self, query: str, *, document: Optional[str] = None
    ) -> dict:
        params = {"query": query}
        if document is not None:
            params["document"] = document
        return self._request("GET", "/explain", params=params)

    def reload(self) -> dict:
        """Ask the daemon to re-mount its corpora (``POST /reload``).

        Idempotent by construction -- a reload against an unchanged
        corpus is a no-op answering ``{"reloaded": false}`` -- so the
        standard retry policy applies.
        """
        return self._request("POST", "/reload", body={})

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")


def format_rows(
    rows: List[Dict[str, Any]], columns: List[str], fmt: str
) -> str:
    """Render ``rows`` (dicts keyed by ``columns``) in one of the three
    client output formats: an aligned plain-text ``table``, ``csv``, or
    ``json`` (the rows verbatim)."""
    if fmt == "json":
        return json.dumps(rows, indent=2, sort_keys=True)
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(columns)
        for row in rows:
            writer.writerow([row.get(c, "") for c in columns])
        return buffer.getvalue().rstrip("\n")
    if fmt != "table":
        raise ValueError(f"unknown format {fmt!r}")
    cells = [[str(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    lines = [
        "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns)),
        "  ".join("-" * w for w in widths),
    ]
    for line in cells:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(line.rstrip() for line in lines)
