"""The persistent query daemon: warm engine state behind asyncio HTTP.

:class:`QueryDaemon` is the long-running counterpart of the one-shot
CLI.  At startup it mounts one or more :class:`~repro.store.DocumentStore`
corpora into a single :class:`~repro.engine.workspace.Workspace` via the
zero-copy mmap reopen path (no XML parsing, no index rebuild), and then
keeps everything the single-shot paths throw away hot across requests:
the shared compiled-automaton cache, each engine's prepared-plan LRU,
the fused label-union caches, and -- under the default ``auto``
strategy -- the cost-based planner's converged, frozen per-query
choices.  A repeated ``POST /query`` therefore does *zero* re-parsing,
re-compilation, or re-planning: the daemon resolves it through its own
``(document, query, strategy)`` -> :class:`PreparedQuery` map and goes
straight to execution (the response's ``warm`` flag and ``timing_ms``
breakdown make that observable, and ``GET /stats`` exposes every cache's
counters).

Concurrency model
-----------------

One asyncio event loop owns the sockets and all admission bookkeeping
(single-threaded, so the in-flight counter needs no lock); query
evaluation -- pure CPU work -- runs on a bounded
:class:`~concurrent.futures.ThreadPoolExecutor` of ``workers`` threads.
Admission control is a hard cap of ``workers + queue_depth`` pool-bound
requests in flight: request ``workers + queue_depth + 1`` is answered
``429`` immediately instead of queueing without bound (degrading every
other client's latency).  Each pool-bound request runs under
``asyncio.wait_for``: on timeout the client gets a structured ``504``
and the task is cancelled -- a still-queued task is truly cancelled and
never runs; a task already on a worker thread finishes and its result is
discarded (the admission slot is released either way).  Executions of
one prepared plan are serialized by the plan's own lock
(:meth:`~repro.engine.plan.PreparedQuery.execute`), so concurrent
identical queries stay correct; distinct queries run concurrently.

With ``pool_workers > 0`` (``repro serve --pool-workers N``) a third
tier joins: a persistent :class:`~repro.engine.pool.WorkerPool` of
shared-memory worker *processes*, forked at construction time while the
daemon is still single-threaded.  ``/batch`` requests -- and ``/query``
on documents of at least ``pool_min_nodes`` nodes -- occupy one
admission slot and one executor thread as before, but that thread only
*waits*: the evaluation itself fans out across the pool's warm workers
(query-granularity stealing, zero-copy mmap shares, per-worker compiled
caches).  Pool health lives under ``"pool"`` in ``GET /stats``; any
pool failure degrades to the thread path and counts as a
``pool_fallback``.

Endpoints
---------

- ``POST /query``  -- one query: ``{"query": ..., "document": ...}``
- ``POST /batch``  -- a list of queries, one admission slot
- ``GET /explain`` -- resolved strategy + planner verdict for a query
- ``POST /reload`` -- re-mount every corpus at its current generation
  (see *Hot reload* below)
- ``GET /stats``   -- daemon counters, admission state, cache statistics,
  error rates, quarantine/skip state, reload/generation state
- ``GET /healthz`` -- liveness + mounted documents + degraded status

Hot reload
----------

Mutable corpora (``DocumentStore.add/replace/remove``, ``repro store
sync``) publish new bundle generations while a daemon serves the old
one.  ``POST /reload`` -- or the optional change-stamp poller
(``reload_poll`` / ``REPRO_SERVE_RELOAD_POLL``) -- picks them up without
a restart and without failing a single in-flight request: bundle opens
happen off-loop against the new generation, the engine/mount swap is
one synchronous step on the event loop, prepared plans and planner
state are invalidated *per changed document only* (version-stamped
cache keys make concurrently-built stale plans unreachable), and the
old generation's mmaps close only after every request admitted before
the swap has drained (epoch-tagged admission).  Documents skipped as
corrupt at mount time are retried on every reload; quarantines and
failure streaks reset for changed documents, because new content
invalidates old evidence.

Errors are structured JSON (``{"error": {"kind", "message", ...}}``);
malformed XPath answers ``400`` with the parser's offset-carrying
payload (:meth:`repro.xpath.parser.XPathSyntaxError.to_dict`).

Self-healing
------------

A production daemon must degrade, not die.  Three layers:

- **Mount-time skip.**  A corrupt bundle (truncated array, mangled
  header -- anything :func:`repro.store.open_document` rejects) is
  skipped with a stderr warning and recorded under ``skipped`` in
  ``/healthz``/``/stats``; the rest of the corpus serves.  Startup only
  fails when *no* bundle is usable (or on a genuine configuration
  error, e.g. duplicate names).
- **One-shot strategy fallback.**  An unexpected exception during
  evaluation (a strategy bug, injected or real) retries the request
  once on the ``naive`` reference path before failing; a fallback
  answer is correct by construction (the oracle every other strategy
  is differential-tested against) and the response carries
  ``"fallback": "naive"``.
- **Per-document quarantine.**  ``fail_threshold`` *consecutive*
  ultimately-failed evaluations (fallback included) quarantine the
  document: further requests answer a structured ``503 quarantined``
  without touching the engine, ``/healthz`` flips to ``degraded`` with
  the quarantine list, and healthy documents keep serving.  Any
  successfully answered request resets its document's failure streak.

Shutdown (SIGTERM/SIGINT, or :meth:`QueryDaemon.stop`) is a graceful
drain: stop accepting, let in-flight requests finish or hit their own
``504`` budgets, close idle keep-alive connections, then release the
worker pool and every mmap handle.
"""

from __future__ import annotations

import asyncio
import os
import sys
import threading
import time
import traceback
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import faults
from repro.engine import registry
from repro.engine.planner import planner_fields
from repro.engine.workspace import Workspace
from repro.serve.http import HttpError, Request, read_request, send_response
from repro.store import (
    DocumentStore,
    StoreError,
    bundle_identity,
    corpus_stamp,
    read_manifest,
)
from repro.xpath.parser import XPathSyntaxError

#: Default admission queue depth beyond the worker threads.
QUEUE_DEPTH = int(os.environ.get("REPRO_SERVE_QUEUE_DEPTH", "16"))
#: Default per-request timeout in seconds.
TIMEOUT_S = float(os.environ.get("REPRO_SERVE_TIMEOUT_S", "30"))
#: Bound on the daemon's (document, query, strategy) -> plan map.
PREPARED_CACHE_SIZE = int(os.environ.get("REPRO_SERVE_PREPARED_CACHE", "1024"))
#: Consecutive ultimately-failed evaluations before a document is
#: quarantined (0 disables quarantine).
FAIL_THRESHOLD = int(os.environ.get("REPRO_SERVE_FAIL_THRESHOLD", "3"))
#: The strategy a failed evaluation is retried on, once, before giving
#: up -- the reference oracle every fast path is differential-tested
#: against.
FALLBACK_STRATEGY = "naive"
#: Seconds between corpus change-stamp polls (0 disables polling; the
#: explicit ``POST /reload`` endpoint always works).
RELOAD_POLL_S = float(os.environ.get("REPRO_SERVE_RELOAD_POLL", "0"))
#: Worker *processes* for the persistent shared-memory pool
#: (:class:`repro.engine.pool.WorkerPool`); 0 disables the pool and
#: every request runs on the thread executor as before.
POOL_WORKERS = int(os.environ.get("REPRO_SERVE_POOL_WORKERS", "0"))
#: Documents at or above this node count route single ``/query``
#: requests through the pool too (batches always use it when enabled).
POOL_MIN_NODES = int(os.environ.get("REPRO_SERVE_POOL_MIN_NODES", "65536"))


class QueryDaemon:
    """A long-lived HTTP/JSON query service over store corpora.

    Parameters
    ----------
    stores:
        One corpus directory, or a sequence of them.  Every bundle of
        every directory is mounted by its bundle name (duplicate names
        across directories are rejected at startup).
    strategy:
        The workspace-wide evaluation strategy (default ``auto``, the
        cost-based planner -- whose freeze-after-convergence is exactly
        what a long-lived process amortizes).
    workers:
        Worker-thread count for query evaluation (default: CPU count).
    queue_depth:
        Extra requests allowed to wait beyond the busy workers before
        new ones are refused with 429.
    timeout:
        Per-request wall-clock budget in seconds; requests may lower
        (never raise) it per call via ``"timeout_s"``.  Also the
        default graceful-drain budget on shutdown.
    host / port:
        Bind address.  ``port=0`` picks a free port; :attr:`port` holds
        the bound one after :meth:`start`.
    fail_threshold:
        Consecutive ultimately-failed evaluations (the reference-path
        retry included) before a document is quarantined; ``0``
        disables quarantine.
    reload_poll:
        Seconds between corpus change-stamp checks; when a stamp moves,
        the daemon reloads itself exactly as ``POST /reload`` would.
        ``0`` (the default) disables polling -- the endpoint is always
        available either way.
    pool_workers:
        Worker *processes* for the persistent shared-memory pool
        (:class:`repro.engine.pool.WorkerPool`).  When > 0, ``/batch``
        requests (and ``/query`` on documents of at least
        ``pool_min_nodes`` nodes) run on the pool instead of a single
        worker thread: zero-copy mmap reopens, warm per-worker caches,
        query-granularity stealing.  The pool is created eagerly at
        construction -- before the event loop or any worker thread
        exists, so the fork is clean -- survives hot reloads via
        generation-versioned invalidation, and is torn down by
        :meth:`stop`.  Any pool failure falls back to the thread path
        (counted under ``pool_fallbacks``).  ``0`` (default) disables.
    pool_min_nodes:
        Node-count threshold for routing single ``/query`` requests
        through the pool; small documents stay on the (cheaper)
        thread executor.
    """

    def __init__(
        self,
        stores: Union[str, Sequence[str]],
        *,
        strategy: str = "auto",
        workers: Optional[int] = None,
        queue_depth: int = QUEUE_DEPTH,
        timeout: float = TIMEOUT_S,
        host: str = "127.0.0.1",
        port: int = 0,
        mmap: bool = True,
        max_body: int = 8 * 1024 * 1024,
        prepared_cache_size: int = PREPARED_CACHE_SIZE,
        fail_threshold: int = FAIL_THRESHOLD,
        reload_poll: float = RELOAD_POLL_S,
        pool_workers: Optional[int] = None,
        pool_min_nodes: int = POOL_MIN_NODES,
    ) -> None:
        if isinstance(stores, str):
            stores = [stores]
        if not stores:
            raise ValueError("at least one store directory is required")
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth}")
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.workers = max(1, workers if workers is not None else (os.cpu_count() or 1))
        self.queue_depth = queue_depth
        self.admission_limit = self.workers + self.queue_depth
        if fail_threshold < 0:
            raise ValueError(
                f"fail_threshold must be >= 0, got {fail_threshold}"
            )
        self.max_body = max_body
        self.prepared_cache_size = prepared_cache_size
        self.fail_threshold = fail_threshold
        if reload_poll < 0:
            raise ValueError(f"reload_poll must be >= 0, got {reload_poll}")
        self.reload_poll = reload_poll
        self.pool_workers = (
            pool_workers if pool_workers is not None else POOL_WORKERS
        )
        if self.pool_workers < 0:
            raise ValueError(
                f"pool_workers must be >= 0, got {self.pool_workers}"
            )
        self.pool_min_nodes = pool_min_nodes
        self.mmap = mmap
        self.workspace = Workspace(strategy=strategy)
        self.mounts: Dict[str, List[str]] = {}
        self._store_dirs: List[str] = [os.path.abspath(s) for s in stores]
        #: Per-document mount provenance: the owning store, the bundle
        #: identity ((st_dev, st_ino) of its header) captured when the
        #: mmaps were opened, and the manifest's generation/fingerprint.
        #: A reload republishes a document exactly when the identity on
        #: disk differs from the one mounted.
        self._mounted_info: Dict[str, dict] = {}
        #: Bundles that failed to open at mount time (corrupt on disk),
        #: name -> structured detail.  Serving continues without them;
        #: a later reload retries them against the current disk state.
        self.skipped: Dict[str, dict] = {}
        for store_dir in self._store_dirs:
            store = DocumentStore(store_dir)
            manifest = read_manifest(store_dir)
            mounted: List[str] = []
            for name in store.names():
                try:
                    document = store.open(name, mmap=mmap)
                except (StoreError, OSError) as exc:
                    self.skipped[name] = {
                        "store": store_dir,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                    print(
                        f"warning: skipping corrupt bundle {name!r} in "
                        f"{store_dir}: {exc}",
                        file=sys.stderr,
                    )
                    continue
                try:
                    self.workspace.add_stored(name, document)
                except BaseException:
                    # e.g. a duplicate name across stores: a genuine
                    # configuration error, not corruption -- re-raise,
                    # but never leak the mmap handles just opened.
                    document.close()
                    raise
                entry = manifest.documents.get(name) or {}
                self._mounted_info[name] = {
                    "store": store_dir,
                    "identity": bundle_identity(store.path_for(name)),
                    "generation": entry.get("generation"),
                    "fingerprint": entry.get("fingerprint"),
                }
                mounted.append(name)
            self.mounts[store_dir] = mounted
        #: Per-store change stamps the reload poller compares against.
        self._stamps: Dict[str, Optional[int]] = {
            store_dir: corpus_stamp(store_dir)
            for store_dir in self._store_dirs
        }
        if not self.workspace.documents():
            detail = (
                f" ({len(self.skipped)} corrupt bundle(s) skipped)"
                if self.skipped
                else ""
            )
            raise ValueError(
                f"no document bundles usable in {list(stores)!r}{detail}"
            )
        # The persistent shared-memory pool forks *now*, while this
        # process is still single-threaded (the event loop, the thread
        # executor's threads, and the pool's own collector all come
        # later) -- the one moment a fork is unconditionally safe.
        self._pool_service = None
        if self.pool_workers > 0:
            self._pool_service = self.workspace.service(
                jobs=self.pool_workers, executor="pool"
            )
            self._pool_service.ensure_pool()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._prepared: "OrderedDict[Tuple[str, str, str], object]" = (
            OrderedDict()
        )
        self._prepared_lock = threading.Lock()
        # Per-document version counter, bumped on every reload swap.
        # Prepared-plan keys embed it, so a worker thread that resolved
        # the *old* engine and finishes building its plan after the swap
        # inserts under a version no future lookup uses -- the stale
        # plan is unreachable, not poisonous.  Written on the event
        # loop, read from pool threads (GIL-atomic dict ops).
        self._doc_versions: Dict[str, int] = {}
        # Touched from the event-loop thread only.
        self._in_flight = 0
        self._requests_open = 0
        self._draining = False
        # Reload epoch: every admitted request is tagged with the epoch
        # current at admission; a reload bumps the epoch after swapping
        # engines and then drains the older epochs' counts to zero
        # before closing the superseded mmaps.
        self._epoch = 0
        self._epoch_inflight: Dict[int, int] = {}
        self._reload_lock = asyncio.Lock()
        self._poll_task: Optional[asyncio.Task] = None
        self._last_reload: Optional[dict] = None
        self._connections: set = set()
        self._server: Optional[asyncio.base_events.Server] = None
        self._started = time.monotonic()
        # warm/cold are bumped from pool threads; everything else from
        # the event loop.  One lock keeps all of them exact.
        self._counters_lock = threading.Lock()
        # Quarantine bookkeeping, guarded by the same lock (failure
        # notes arrive from pool threads, rejects from the event loop).
        self._doc_failures: Dict[str, int] = {}
        self._quarantined: Dict[str, dict] = {}
        self.counters: Dict[str, int] = {
            "requests": 0,
            "queries": 0,
            "batches": 0,
            "batch_queries": 0,
            "explains": 0,
            "rejected": 0,
            "timeouts": 0,
            "syntax_errors": 0,
            "bad_requests": 0,
            "internal_errors": 0,
            "warm_hits": 0,
            "cold_misses": 0,
            "eval_failures": 0,
            "fallbacks": 0,
            "fallback_successes": 0,
            "quarantine_rejects": 0,
            "drain_rejects": 0,
            "reloads": 0,
            "reload_noops": 0,
            "reload_failures": 0,
            "pool_batches": 0,
            "pool_queries": 0,
            "pool_fallbacks": 0,
        }

    # -- bookkeeping ---------------------------------------------------------

    def _bump(self, counter: str, by: int = 1) -> None:
        with self._counters_lock:
            self.counters[counter] += by

    def documents(self) -> List[str]:
        return self.workspace.documents()

    # -- quarantine state machine --------------------------------------------

    def quarantined(self) -> Dict[str, dict]:
        """Quarantined documents and why (a snapshot)."""
        with self._counters_lock:
            return {name: dict(info) for name, info in self._quarantined.items()}

    def health_status(self) -> str:
        """``ok``, or ``degraded`` when anything is quarantined/skipped."""
        with self._counters_lock:
            degraded = bool(self._quarantined) or bool(self.skipped)
        return "degraded" if degraded else "ok"

    def _note_eval_failure(self, document: str, exc: BaseException) -> None:
        """One ultimately-failed evaluation; quarantine on a streak."""
        with self._counters_lock:
            self.counters["eval_failures"] += 1
            streak = self._doc_failures.get(document, 0) + 1
            self._doc_failures[document] = streak
            if (
                self.fail_threshold
                and streak >= self.fail_threshold
                and document not in self._quarantined
            ):
                self._quarantined[document] = {
                    "failures": streak,
                    "error": f"{type(exc).__name__}: {exc}",
                    "uptime_s": round(time.monotonic() - self._started, 3),
                }

    def _note_eval_success(self, document: str) -> None:
        """An answered request breaks the document's failure streak."""
        with self._counters_lock:
            self._doc_failures.pop(document, None)

    def unquarantine(self, document: str) -> bool:
        """Lift a quarantine (operator override / after a repair)."""
        with self._counters_lock:
            self._doc_failures.pop(document, None)
            return self._quarantined.pop(document, None) is not None

    # -- request-payload helpers ---------------------------------------------

    def _resolve_document(self, name: Optional[str]):
        """The named engine, defaulting to a single mounted document."""
        docs = self.workspace.documents()
        if name is None:
            if len(docs) == 1:
                name = docs[0]
            else:
                raise HttpError(
                    400,
                    "bad_request",
                    "'document' is required when several are mounted",
                    {"documents": docs},
                )
        if name not in self.workspace:
            raise HttpError(
                404,
                "unknown_document",
                f"no document {name!r}",
                {"documents": docs},
            )
        with self._counters_lock:
            info = self._quarantined.get(name)
        if info is not None:
            self._bump("quarantine_rejects")
            raise HttpError(
                503,
                "quarantined",
                f"document {name!r} is quarantined after "
                f"{info['failures']} consecutive evaluation failures",
                {"document": name, "detail": dict(info)},
            )
        return name, self.workspace.engine(name)

    def _resolve_strategy(self, payload: dict) -> str:
        strategy = payload.get("strategy", self.workspace.strategy)
        if not isinstance(strategy, str) or strategy not in registry.strategy_names():
            raise HttpError(
                400,
                "bad_request",
                f"unknown strategy {strategy!r}",
                {"strategies": registry.strategy_names()},
            )
        return strategy

    def _resolve_timeout(self, payload: dict) -> float:
        timeout_s = payload.get("timeout_s", self.timeout)
        if not isinstance(timeout_s, (int, float)) or isinstance(timeout_s, bool):
            raise HttpError(400, "bad_request", "'timeout_s' must be a number")
        if timeout_s <= 0:
            raise HttpError(400, "bad_request", "'timeout_s' must be > 0")
        # Clients may tighten the budget, never widen the daemon's cap.
        return min(float(timeout_s), self.timeout)

    @staticmethod
    def _query_field(payload: dict, key: str = "query") -> str:
        query = payload.get(key)
        if not isinstance(query, str) or not query.strip():
            raise HttpError(
                400, "bad_request", f"{key!r} must be a non-empty string"
            )
        return query

    @staticmethod
    def _flag(payload: dict, key: str) -> bool:
        value = payload.get(key, False)
        if not isinstance(value, bool):
            raise HttpError(400, "bad_request", f"{key!r} must be a boolean")
        return value

    # -- warm prepared-plan map ----------------------------------------------

    def _prepared_plan(self, document: str, query: str, strategy: str):
        """The (daemon-cached) prepared plan; ``(plan, warm)``.

        A hit means the request does zero parsing, zero compilation and
        zero plan resolution -- including zero planner work once the
        ``auto`` planner froze the plan's converged choice -- which is
        the whole point of serving from one process.

        The key embeds the document's reload version, read *before* the
        engine is resolved: a reload swap (engine first, version second,
        both synchronous on the event loop) therefore can never let an
        old-engine plan land under the new version's key.
        """
        version = self._doc_versions.get(document, 0)
        key = (document, version, query, strategy)
        with self._prepared_lock:
            plan = self._prepared.get(key)
            if plan is not None:
                self._prepared.move_to_end(key)
        if plan is not None:
            self._bump("warm_hits")
            return plan, True
        engine = self.workspace.engine(document)
        plan = engine.prepare(query, strategy=strategy)
        with self._prepared_lock:
            self._prepared[key] = plan
            while len(self._prepared) > self.prepared_cache_size:
                self._prepared.popitem(last=False)
        self._bump("cold_misses")
        return plan, False

    def _purge_prepared(self, document: str) -> int:
        """Drop every cached plan for ``document`` (any version)."""
        with self._prepared_lock:
            stale = [k for k in self._prepared if k[0] == document]
            for k in stale:
                del self._prepared[k]
        return len(stale)

    # -- pool-side work ------------------------------------------------------

    def _evaluate(
        self,
        document: str,
        query: str,
        strategy: str,
        *,
        count_only: bool,
        with_labels: bool,
        with_stats: bool,
    ) -> dict:
        """One query, start to finish, on a worker thread.

        An unexpected exception from the chosen strategy is retried
        exactly once on the ``naive`` reference path (the correctness
        oracle); only if that also fails does the request fail -- and
        count toward the document's quarantine streak.  Syntax errors
        and structured HTTP errors pass straight through: they are the
        client's problem, not the document's.
        """
        if (
            not with_labels
            and self._pool_routable(strategy)
            and self.workspace.engine(document).tree.n >= self.pool_min_nodes
        ):
            # An oversized document: let the pool shard it across worker
            # processes.  (Labelled requests stay on-thread -- labels
            # must come from the same engine that produced the ids.)
            try:
                return self._evaluate_query_pool(
                    document,
                    query,
                    count_only=count_only,
                    with_stats=with_stats,
                )
            except (HttpError, XPathSyntaxError):
                raise
            except Exception:
                # Pool trouble (worker died twice, pool closing mid-
                # request) must degrade to the thread path, never fail
                # the client.
                self._bump("pool_fallbacks")
        t0 = time.perf_counter()
        plan, warm = self._prepared_plan(document, query, strategy)
        t1 = time.perf_counter()
        fallback = None
        try:
            faults.check("serve.evaluate", document=document, strategy=strategy)
            result = plan.execute()
        except (HttpError, XPathSyntaxError):
            raise
        except Exception as primary:
            if strategy == FALLBACK_STRATEGY:
                self._note_eval_failure(document, primary)
                raise HttpError(
                    500,
                    "evaluation_failed",
                    f"evaluation failed on the reference path: "
                    f"{type(primary).__name__}: {primary}",
                    {"document": document, "strategy": strategy},
                ) from primary
            self._bump("fallbacks")
            try:
                plan, _ = self._prepared_plan(
                    document, query, FALLBACK_STRATEGY
                )
                faults.check(
                    "serve.evaluate",
                    document=document,
                    strategy=FALLBACK_STRATEGY,
                )
                result = plan.execute()
            except (HttpError, XPathSyntaxError):
                raise
            except Exception as secondary:
                self._note_eval_failure(document, secondary)
                raise HttpError(
                    500,
                    "evaluation_failed",
                    f"evaluation failed ({type(primary).__name__}: "
                    f"{primary}); reference-path retry also failed "
                    f"({type(secondary).__name__}: {secondary})",
                    {"document": document, "strategy": strategy},
                ) from secondary
            self._bump("fallback_successes")
            fallback = FALLBACK_STRATEGY
        self._note_eval_success(document)
        t2 = time.perf_counter()
        payload = {
            "document": document,
            "query": query,
            "strategy": plan.strategy.name,
            "count": len(result.ids),
            "warm": warm,
            "timing_ms": {
                "prepare": round((t1 - t0) * 1000.0, 4),
                "execute": round((t2 - t1) * 1000.0, 4),
                "total": round((t2 - t0) * 1000.0, 4),
            },
        }
        if fallback is not None:
            payload["fallback"] = fallback
        payload.update(planner_fields(plan))
        if not count_only:
            payload["ids"] = list(result.ids)
        if with_labels:
            # The plan's own engine, not a fresh workspace lookup: a
            # reload swap between execute and here must not label old-
            # generation ids against the new generation's tree.
            payload["labels"] = plan.engine.labels_of(list(result.ids))
        if with_stats:
            payload["stats"] = result.stats.snapshot()
        return payload

    def _pool_routable(self, strategy: str) -> bool:
        """Whether this request may run on the shared-memory pool.

        The pool's workers were built with the workspace strategy; a
        request overriding the strategy keeps the thread path.
        """
        return (
            self._pool_service is not None
            and strategy == self.workspace.strategy
        )

    def _evaluate_query_pool(
        self, document: str, query: str, *, count_only: bool, with_stats: bool
    ) -> dict:
        """One oversized query on the worker pool (still one admission slot)."""
        t0 = time.perf_counter()
        result = self._pool_service.execute(query, document)
        self._note_eval_success(document)
        self._bump("pool_queries")
        payload = {
            "document": document,
            "query": query,
            "strategy": self.workspace.strategy,
            "count": len(result.ids),
            "executor": "pool",
            "timing_ms": {
                "total": round((time.perf_counter() - t0) * 1000.0, 4)
            },
        }
        if not count_only:
            payload["ids"] = list(result.ids)
        if with_stats:
            payload["stats"] = result.stats.snapshot()
        return payload

    def _evaluate_batch_pool(
        self, document: str, queries: List[str], *, count_only: bool
    ) -> dict:
        """A whole batch on the worker pool: one submit, dynamic stealing."""
        t0 = time.perf_counter()
        batch = self._pool_service._run_batch([document], queries)[document]
        self._note_eval_success(document)
        self._bump("pool_batches")
        self._bump("pool_queries", len(batch))
        results = []
        for query in queries:
            result = batch[query]
            entry = {
                "query": query,
                "strategy": self.workspace.strategy,
                "count": len(result.ids),
            }
            if not count_only:
                entry["ids"] = list(result.ids)
            results.append(entry)
        return {
            "document": document,
            "results": results,
            "executor": "pool",
            "timing_ms": {
                "total": round((time.perf_counter() - t0) * 1000.0, 4)
            },
        }

    def _evaluate_batch(
        self,
        document: str,
        queries: List[str],
        strategy: str,
        *,
        count_only: bool,
    ) -> dict:
        if self._pool_routable(strategy):
            try:
                return self._evaluate_batch_pool(
                    document, queries, count_only=count_only
                )
            except (HttpError, XPathSyntaxError):
                raise
            except Exception:
                self._bump("pool_fallbacks")
        t0 = time.perf_counter()
        results = [
            self._evaluate(
                document,
                query,
                strategy,
                count_only=count_only,
                with_labels=False,
                with_stats=False,
            )
            for query in queries
        ]
        for entry in results:
            entry.pop("document", None)
        return {
            "document": document,
            "results": results,
            "timing_ms": {
                "total": round((time.perf_counter() - t0) * 1000.0, 4)
            },
        }

    def _explain(self, document: str, query: str, strategy: str) -> dict:
        plan, warm = self._prepared_plan(document, query, strategy)
        payload = {
            "document": document,
            "query": query,
            "strategy": plan.strategy.name,
            "warm": warm,
            "text": plan.explain(),
        }
        payload.update(planner_fields(plan))
        return payload

    # -- admission + timeout -------------------------------------------------

    async def _admit(self, fn, timeout_s: float):
        """Run ``fn`` on the pool under admission control and a deadline.

        Runs on the event loop, whose single thread makes the
        check-then-increment on :attr:`_in_flight` race-free without a
        lock.
        """
        if self._in_flight >= self.admission_limit:
            self._bump("rejected")
            raise HttpError(
                429,
                "overloaded",
                f"{self._in_flight} requests in flight "
                f"(limit {self.admission_limit}); retry later",
                {"limit": self.admission_limit},
            )
        self._in_flight += 1
        # Tag the request with the current reload epoch so a concurrent
        # reload knows when everything that may touch the old engines
        # has left the building (see :meth:`reload`).
        epoch = self._epoch
        self._epoch_inflight[epoch] = self._epoch_inflight.get(epoch, 0) + 1
        try:
            loop = asyncio.get_running_loop()
            future = loop.run_in_executor(self._pool, fn)
            try:
                return await asyncio.wait_for(future, timeout_s)
            except asyncio.TimeoutError:
                # wait_for already cancelled the future: a still-queued
                # task never runs; one mid-execution finishes on its
                # worker thread and the result is dropped.
                self._bump("timeouts")
                raise HttpError(
                    504,
                    "timeout",
                    f"request exceeded its {timeout_s}s budget",
                    {"timeout_s": timeout_s},
                ) from None
        finally:
            self._in_flight -= 1
            left = self._epoch_inflight.get(epoch, 1) - 1
            if left > 0:
                self._epoch_inflight[epoch] = left
            else:
                self._epoch_inflight.pop(epoch, None)

    # -- hot reload ----------------------------------------------------------

    def _reload_prepare(self) -> dict:
        """Blocking half of a reload: diff the disk, open new bundles.

        Runs on a plain executor thread (never the query pool, whose
        slots a saturated daemon may not free while the reload holds its
        lock) while the event loop keeps serving the old generation.
        Returns everything the synchronous swap needs: freshly opened
        :class:`StoredDocument` handles for added/changed bundles, the
        removal list, the new skip map, mount/stamp/manifest snapshots.
        Nothing daemon-visible is mutated here.
        """
        mounted = dict(self._mounted_info)
        desired: Dict[str, dict] = {}
        new_skipped: Dict[str, dict] = {}
        stamps: Dict[str, Optional[int]] = {}
        generations: Dict[str, int] = {}
        stores: Dict[str, DocumentStore] = {}
        for store_dir in self._store_dirs:
            stamps[store_dir] = corpus_stamp(store_dir)
            store = DocumentStore(store_dir)
            stores[store_dir] = store
            manifest = read_manifest(store_dir)
            generations[store_dir] = manifest.generation
            for name in store.names():
                if name in desired:
                    new_skipped[name] = {
                        "store": store_dir,
                        "error": (
                            f"duplicate bundle name (already mounted from "
                            f"{desired[name]['store']!r})"
                        ),
                    }
                    continue
                entry = manifest.documents.get(name) or {}
                desired[name] = {
                    "store": store_dir,
                    "identity": bundle_identity(store.path_for(name)),
                    "generation": entry.get("generation"),
                    "fingerprint": entry.get("fingerprint"),
                }
        opened: Dict[str, object] = {}
        added: List[str] = []
        replaced: List[str] = []
        unchanged: List[str] = []
        try:
            for name, info in desired.items():
                current = mounted.get(name)
                if current is None:
                    kind = added
                elif current["identity"] != info["identity"]:
                    kind = replaced
                else:
                    unchanged.append(name)
                    continue
                try:
                    opened[name] = stores[info["store"]].open(
                        name, mmap=self.mmap
                    )
                except (StoreError, OSError) as exc:
                    new_skipped[name] = {
                        "store": info["store"],
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                    continue
                kind.append(name)
        except BaseException:
            for document in opened.values():
                document.close()
            raise
        removed = sorted(set(mounted) - set(desired))
        return {
            "desired": desired,
            "opened": opened,
            "added": added,
            "replaced": replaced,
            "removed": removed,
            "unchanged": unchanged,
            "skipped": new_skipped,
            "stamps": stamps,
            "generations": generations,
        }

    async def reload(self) -> dict:
        """Re-mount every corpus at its current generation, atomically.

        The daemon keeps answering throughout: the disk diff and bundle
        opens run off-loop (:meth:`_reload_prepare`); the swap itself --
        engines into the workspace, per-document plan purge + version
        bump, quarantine/streak reset, mount-table update -- happens
        synchronously on the event loop, so no request ever observes a
        half-swapped state.  The old generation's mmaps close only
        after every request admitted before the swap has drained (the
        epoch counts from :meth:`_admit`); a straggler that outlives the
        drain budget merely defers its mmap close to its final array
        reference (:meth:`repro.store.StoredDocument.close` tolerates
        pinned exports), it can never crash.

        Single-flight: concurrent ``POST /reload`` requests serialize on
        a lock, each performing its own (by then usually no-op) pass.
        Returns the structured change report ``/reload`` answers with.
        """
        if self._draining:
            raise HttpError(
                503, "shutting_down", "daemon is draining; reload refused"
            )
        async with self._reload_lock:
            t0 = time.perf_counter()
            loop = asyncio.get_running_loop()
            try:
                prepared = await loop.run_in_executor(
                    None, self._reload_prepare
                )
            except BaseException as exc:
                self._bump("reload_failures")
                raise HttpError(
                    500,
                    "reload_failed",
                    f"reload failed: {type(exc).__name__}: {exc}",
                ) from exc
            desired = prepared["desired"]
            opened = prepared["opened"]
            changed = sorted(
                set(prepared["added"])
                | set(prepared["replaced"])
                | set(prepared["removed"])
            )
            # -- synchronous swap: no awaits until the epoch bump ------
            superseded: List[object] = []
            for name, document in opened.items():
                if name in self.workspace:
                    old = self.workspace.swap_stored(name, document)
                else:
                    self.workspace.add_stored(name, document)
                    old = None
                if old is not None:
                    superseded.append(old)
            for name in prepared["removed"]:
                old = self.workspace.pop_stored(name)
                if old is not None:
                    superseded.append(old)
            for name in changed:
                self._purge_prepared(name)
                self._doc_versions[name] = (
                    self._doc_versions.get(name, 0) + 1
                )
                if name in self.workspace:
                    # Re-plan any cached ``auto`` plans against the new
                    # bundle's statistics.  A swap installs a fresh
                    # engine (empty plan cache), so today this is a
                    # no-op guard; it exists so a future in-place delta
                    # update -- which mutates an engine instead of
                    # swapping it -- cannot leave frozen planner
                    # verdicts keyed to the old document's shape.
                    self.workspace.engine(name).refresh_planner()
                with self._counters_lock:
                    self._doc_failures.pop(name, None)
                    self._quarantined.pop(name, None)
                if name not in desired or name in prepared["skipped"]:
                    self._mounted_info.pop(name, None)
                else:
                    self._mounted_info[name] = desired[name]
            self.skipped = prepared["skipped"]
            self.mounts = {
                store_dir: sorted(
                    name
                    for name, info in self._mounted_info.items()
                    if info["store"] == store_dir
                )
                for store_dir in self._store_dirs
            }
            self._stamps = prepared["stamps"]
            old_epoch = self._epoch
            self._epoch += 1
            # -- drain the old epochs, then close the old generation ---
            drained = True
            if superseded:
                deadline = time.monotonic() + self.timeout

                def older_inflight() -> int:
                    return sum(
                        count
                        for epoch, count in self._epoch_inflight.items()
                        if epoch <= old_epoch
                    )

                while older_inflight() > 0:
                    if time.monotonic() >= deadline:
                        drained = False
                        break
                    await asyncio.sleep(0.005)
                for document in superseded:
                    document.close()
            report = {
                "reloaded": bool(changed),
                "added": sorted(prepared["added"]),
                "replaced": sorted(prepared["replaced"]),
                "removed": prepared["removed"],
                "unchanged": sorted(prepared["unchanged"]),
                "skipped": {
                    name: info["error"]
                    for name, info in prepared["skipped"].items()
                },
                "generations": prepared["generations"],
                "drained": drained,
                "duration_ms": round(
                    (time.perf_counter() - t0) * 1000.0, 3
                ),
            }
            self._bump("reloads" if changed else "reload_noops")
            self._last_reload = report
            return report

    async def _reload_poll_loop(self) -> None:
        """Watch each corpus' change stamp; reload when one moves."""
        while True:
            await asyncio.sleep(self.reload_poll)
            if self._draining:
                return
            loop = asyncio.get_running_loop()
            stamps = await loop.run_in_executor(
                None,
                lambda: {d: corpus_stamp(d) for d in self._store_dirs},
            )
            if stamps == self._stamps:
                continue
            try:
                await self.reload()
            except HttpError as exc:
                print(
                    f"warning: polled reload failed: {exc.message}",
                    file=sys.stderr,
                )

    # -- dispatch ------------------------------------------------------------

    async def _dispatch(self, request: Request) -> Tuple[int, dict]:
        path, method = request.path, request.method
        if path == "/healthz":
            self._require(method, "GET")
            status = (
                "draining" if self._draining else self.health_status()
            )
            return 200, {
                "ok": status == "ok",
                "status": status,
                "documents": self.documents(),
                "quarantined": sorted(self.quarantined()),
                "skipped": {
                    name: info["error"] for name, info in self.skipped.items()
                },
                "uptime_s": round(time.monotonic() - self._started, 3),
            }
        if path == "/stats":
            self._require(method, "GET")
            return 200, self.stats()
        if self._draining:
            # Evaluation endpoints refuse new work during the drain;
            # probes above keep answering so orchestration can watch.
            self._bump("drain_rejects")
            raise HttpError(
                503, "shutting_down", "daemon is draining; connection closing"
            )
        if path == "/reload":
            # Not pool-admitted: a reload waits for admitted requests
            # to drain, so counting it among them would deadlock.
            self._require(method, "POST")
            return 200, await self.reload()
        if path == "/query":
            self._require(method, "POST")
            payload = request.json()
            name, _ = self._resolve_document(payload.get("document"))
            strategy = self._resolve_strategy(payload)
            query = self._query_field(payload)
            count_only = self._flag(payload, "count")
            with_labels = self._flag(payload, "labels")
            with_stats = self._flag(payload, "stats")
            timeout_s = self._resolve_timeout(payload)
            self._bump("queries")
            out = await self._admit(
                lambda: self._evaluate(
                    name,
                    query,
                    strategy,
                    count_only=count_only,
                    with_labels=with_labels,
                    with_stats=with_stats,
                ),
                timeout_s,
            )
            return 200, out
        if path == "/batch":
            self._require(method, "POST")
            payload = request.json()
            name, _ = self._resolve_document(payload.get("document"))
            strategy = self._resolve_strategy(payload)
            queries = payload.get("queries")
            if (
                not isinstance(queries, list)
                or not queries
                or not all(isinstance(q, str) and q.strip() for q in queries)
            ):
                raise HttpError(
                    400,
                    "bad_request",
                    "'queries' must be a non-empty list of query strings",
                )
            count_only = self._flag(payload, "count")
            timeout_s = self._resolve_timeout(payload)
            self._bump("batches")
            self._bump("batch_queries", len(queries))
            out = await self._admit(
                lambda: self._evaluate_batch(
                    name, queries, strategy, count_only=count_only
                ),
                timeout_s,
            )
            return 200, out
        if path == "/explain":
            self._require(method, "GET")
            params = request.params
            name, _ = self._resolve_document(params.get("document"))
            strategy = self._resolve_strategy(params)
            query = self._query_field(params)
            self._bump("explains")
            out = await self._admit(
                lambda: self._explain(name, query, strategy), self.timeout
            )
            return 200, out
        raise HttpError(
            404,
            "not_found",
            f"no route {path!r}",
            {
                "routes": [
                    "/query",
                    "/batch",
                    "/explain",
                    "/reload",
                    "/stats",
                    "/healthz",
                ]
            },
        )

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise HttpError(
                405, "method_not_allowed", f"use {expected}, not {method}"
            )

    def stats(self) -> dict:
        """The ``GET /stats`` payload (also handy in-process)."""
        with self._counters_lock:
            counters = dict(self.counters)
            quarantined = {
                name: dict(info) for name, info in self._quarantined.items()
            }
            failure_streaks = dict(self._doc_failures)
        with self._prepared_lock:
            prepared = {
                "size": len(self._prepared),
                "maxsize": self.prepared_cache_size,
            }
        answered = max(
            1, counters["queries"] + counters["batch_queries"]
        )
        return {
            "uptime_s": round(time.monotonic() - self._started, 3),
            "strategy": self.workspace.strategy,
            "health": {
                "status": (
                    "draining" if self._draining else self.health_status()
                ),
                "fail_threshold": self.fail_threshold,
                "quarantined": quarantined,
                "failure_streaks": failure_streaks,
                "skipped": {
                    name: dict(info) for name, info in self.skipped.items()
                },
            },
            "errors": {
                "eval_failures": counters["eval_failures"],
                "fallbacks": counters["fallbacks"],
                "fallback_successes": counters["fallback_successes"],
                "quarantine_rejects": counters["quarantine_rejects"],
                "internal_errors": counters["internal_errors"],
                "error_rate": round(counters["eval_failures"] / answered, 6),
            },
            "admission": {
                "workers": self.workers,
                "queue_depth": self.queue_depth,
                "limit": self.admission_limit,
                "in_flight": self._in_flight,
            },
            "timeout_s": self.timeout,
            "documents": {
                name: {"nodes": self.workspace.engine(name).tree.n}
                for name in self.documents()
            },
            "mounts": {path: names for path, names in self.mounts.items()},
            "reload": {
                "reloads": counters["reloads"],
                "noops": counters["reload_noops"],
                "failures": counters["reload_failures"],
                "poll_s": self.reload_poll,
                "epoch": self._epoch,
                "generations": {
                    name: {
                        "generation": info["generation"],
                        "fingerprint": info["fingerprint"],
                    }
                    for name, info in sorted(self._mounted_info.items())
                },
                "last": self._last_reload,
            },
            "pool": (
                {
                    "enabled": True,
                    "workers": self.pool_workers,
                    "min_nodes": self.pool_min_nodes,
                    "batches": counters["pool_batches"],
                    "queries": counters["pool_queries"],
                    "fallbacks": counters["pool_fallbacks"],
                    # Queue depth, in-flight, steals, warm-hit rate,
                    # respawns/retries, per-worker task counts.
                    "health": self._pool_service.pool_stats(),
                }
                if self._pool_service is not None
                else {"enabled": False}
            ),
            "counters": counters,
            "prepared": prepared,
            "caches": self.workspace.cache_info(),
        }

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.max_body
                    )
                except HttpError as exc:
                    # The stream is unparseable past this point: answer
                    # and drop the connection.
                    self._bump("bad_requests")
                    await send_response(
                        writer, exc.status, exc.to_payload(), keep_alive=False
                    )
                    return
                if request is None:
                    return
                self._bump("requests")
                # _requests_open covers read-to-written, so the drain in
                # stop() never closes a socket between a worker finishing
                # and its response leaving the process.
                self._requests_open += 1
                try:
                    status, payload = await self._answer(request)
                    keep_alive = request.keep_alive and not self._draining
                    await send_response(
                        writer, status, payload, keep_alive=keep_alive
                    )
                finally:
                    self._requests_open -= 1
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError: the loop is shutting down mid-close;
                # the transport is torn down with it either way.
                pass

    async def _answer(self, request: Request) -> Tuple[int, dict]:
        """Dispatch one request; every failure becomes structured JSON."""
        try:
            return await self._dispatch(request)
        except HttpError as exc:
            if exc.status == 400 and exc.kind == "bad_request":
                self._bump("bad_requests")
            return exc.status, exc.to_payload()
        except XPathSyntaxError as exc:
            # The same offset-carrying payload the CLI renders a caret
            # from -- satellite and daemon share one error type.
            self._bump("syntax_errors")
            return 400, {"error": exc.to_dict()}
        except Exception:
            self._bump("internal_errors")
            traceback.print_exc(file=sys.stderr)
            return 500, {
                "error": {
                    "kind": "internal",
                    "message": "internal error (see daemon log)",
                }
            }

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (updates :attr:`port`)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.reload_poll > 0:
            self._poll_task = asyncio.create_task(self._reload_poll_loop())

    async def stop(self, *, drain_timeout: Optional[float] = None) -> None:
        """Graceful shutdown: drain, then tear down.

        Stops accepting new connections and new evaluation work
        (in-progress reads answer ``503 shutting_down``), then waits up
        to ``drain_timeout`` (default: the per-request budget, which
        upper-bounds every in-flight request anyway -- each either
        finishes or gets its own ``504``) for open requests to be fully
        *written back*, closes surviving keep-alive connections, shuts
        the worker pool down (cancelling anything still queued), and
        releases every mmap handle.
        """
        self._draining = True
        poll_task, self._poll_task = self._poll_task, None
        if poll_task is not None:
            poll_task.cancel()
            try:
                await poll_task
            except (asyncio.CancelledError, Exception):
                pass
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        budget = self.timeout if drain_timeout is None else drain_timeout
        deadline = time.monotonic() + budget
        while self._requests_open > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        drained = self._requests_open == 0
        # Idle keep-alive connections (and, past the deadline, any
        # stragglers) are torn down; their handler tasks exit on the
        # resulting connection error.
        for writer in list(self._connections):
            writer.close()
        self._pool.shutdown(wait=drained, cancel_futures=True)
        # Workspace.close() shuts every QueryService -- including the
        # shared-memory worker pool, whose processes are joined (or
        # terminated past the timeout): no orphans after a drain.
        self.workspace.close()

    async def run_async(self, ready=None) -> None:
        """Start, optionally announce, and serve until cancelled/signalled."""
        await self.start()
        if ready is not None:
            ready(self)
        loop = asyncio.get_running_loop()
        stop_event = asyncio.Event()
        try:
            import signal

            for sig in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(sig, stop_event.set)
        except (ImportError, NotImplementedError, RuntimeError):
            pass  # e.g. non-main thread; callers cancel instead
        try:
            await stop_event.wait()
        finally:
            await self.stop()

    def run(self, ready=None) -> None:
        """Blocking entry point (what ``repro serve`` calls)."""
        try:
            asyncio.run(self.run_async(ready=ready))
        except KeyboardInterrupt:
            pass


class DaemonThread:
    """Run a :class:`QueryDaemon` on a background thread.

    The harness tests and the load-generator benchmark use this to get a
    live daemon inside one process::

        with DaemonThread(QueryDaemon(store_dir)) as handle:
            client = ServeClient(port=handle.port)
            ...

    ``start()`` returns once the daemon is accepting connections (or
    re-raises its startup failure); ``stop()`` shuts it down cleanly
    from the calling thread.
    """

    def __init__(self, daemon: QueryDaemon) -> None:
        self.daemon = daemon
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.daemon.port

    def start(self) -> "DaemonThread":
        if self._thread is not None:
            raise RuntimeError("daemon thread already started")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-serve-daemon",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    async def _main(self) -> None:
        try:
            await self.daemon.start()
        except BaseException as exc:  # surfaced to start()'s caller
            self._startup_error = exc
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await self.daemon.stop()

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "DaemonThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
