"""Minimal stdlib HTTP/1.1 layer for the query daemon.

Just enough of the protocol for a JSON service -- request-line +
headers + ``Content-Length`` bodies in, JSON responses out, with
keep-alive -- on plain :mod:`asyncio` streams.  No routing framework,
no chunked encoding, no external dependencies; the daemon
(:mod:`repro.serve.daemon`) does its own dispatch on ``(method, path)``.

Every error path surfaces as :class:`HttpError`, whose
:meth:`~HttpError.to_payload` is the one structured-error JSON shape the
daemon returns (the same ``{"error": {"kind", "message", ...}}``
envelope the CLI's structured XPath syntax errors map into).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.parse import parse_qsl, urlsplit

#: Reason phrases for the statuses the daemon actually emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

MAX_HEADER_BYTES = 16 * 1024
MAX_HEADERS = 64


class HttpError(Exception):
    """A protocol- or application-level failure with an HTTP status.

    ``kind`` is a stable machine-readable discriminator (``syntax``,
    ``bad_request``, ``unknown_document``, ``overloaded``, ``timeout``,
    ``internal``, ...); ``extra`` carries structured detail (e.g. the
    offset of a syntax error).
    """

    def __init__(
        self, status: int, kind: str, message: str, extra: Optional[dict] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.message = message
        self.extra = dict(extra or {})

    def to_payload(self) -> dict:
        """The ``{"error": {...}}`` JSON envelope for this failure."""
        error = {"kind": self.kind, "message": self.message}
        error.update(self.extra)
        return {"error": error}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    params: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> dict:
        """The request body as a JSON object (400 on anything else)."""
        if not self.body:
            raise HttpError(400, "bad_request", "request body required")
        try:
            payload = json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(
                400, "bad_request", f"invalid JSON body: {exc}"
            ) from None
        if not isinstance(payload, dict):
            raise HttpError(
                400, "bad_request", "request body must be a JSON object"
            )
        return payload


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int = 8 * 1024 * 1024
) -> Optional[Request]:
    """Read one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` on malformed input or oversize
    headers/body -- callers should answer with the error payload and
    close the connection (the stream position is unrecoverable).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "bad_request", "truncated request") from None
    except asyncio.LimitOverrunError:
        raise HttpError(431, "bad_request", "request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(431, "bad_request", "request head too large")
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError):
        raise HttpError(400, "bad_request", "malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise HttpError(400, "bad_request", f"unsupported {version!r}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if len(headers) >= MAX_HEADERS:
            raise HttpError(431, "bad_request", "too many headers")
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, "bad_request", f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(
                400, "bad_request", "malformed Content-Length"
            ) from None
        if length < 0:
            raise HttpError(400, "bad_request", "malformed Content-Length")
        if length > max_body:
            raise HttpError(
                413, "bad_request", f"body exceeds {max_body} bytes"
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "bad_request", "truncated body") from None
    elif headers.get("transfer-encoding"):
        raise HttpError(
            400, "bad_request", "chunked request bodies are not supported"
        )
    split = urlsplit(target)
    params = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(
        method=method.upper(),
        target=target,
        path=split.path or "/",
        params=params,
        headers=headers,
        body=body,
    )


def encode_response(
    status: int, payload: dict, *, keep_alive: bool = True
) -> bytes:
    """Serialize one JSON response, headers and all."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


async def send_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict,
    *,
    keep_alive: bool = True,
) -> None:
    writer.write(encode_response(status, payload, keep_alive=keep_alive))
    await writer.drain()
