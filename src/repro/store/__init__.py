"""Persistent document store: compiled-array bundles, reopened zero-copy.

The SXSI-style evaluation model assumes documents *are* index
structures.  This package makes that lifetime explicit: parse once
(:func:`save_document`), then every subsequent open
(:func:`open_document`) memory-maps the compiled arrays instead of
re-parsing XML.  See :mod:`repro.store.format` for the on-disk layout
and versioning/invalidation rules, and DESIGN.md ("Ingestion and the
document store") for how the pieces compose.
"""

from repro.store.format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    SUPPORTED_VERSIONS,
    StoreCorruptionError,
    StoreError,
    StoreFormatError,
    bundle_names,
    is_bundle,
    read_header,
    verify_bundle,
)
from repro.store.store import (
    DocumentStore,
    StoredDocument,
    open_document,
    save_document,
    verify_document,
)

__all__ = [
    "DocumentStore",
    "StoredDocument",
    "open_document",
    "save_document",
    "verify_document",
    "verify_bundle",
    "read_header",
    "bundle_names",
    "is_bundle",
    "StoreError",
    "StoreFormatError",
    "StoreCorruptionError",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
]
