"""Persistent document store: compiled-array bundles, reopened zero-copy.

The SXSI-style evaluation model assumes documents *are* index
structures.  This package makes that lifetime explicit: parse once
(:func:`save_document`), then every subsequent open
(:func:`open_document`) memory-maps the compiled arrays instead of
re-parsing XML.  See :mod:`repro.store.format` for the on-disk layout
and versioning/invalidation rules, and DESIGN.md ("Ingestion and the
document store") for how the pieces compose.
"""

from repro.store.format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    SUPPORTED_VERSIONS,
    StoreCorruptionError,
    StoreError,
    StoreFormatError,
    bundle_names,
    is_bundle,
    read_header,
    verify_bundle,
)
from repro.store.manifest import (
    MANIFEST_FILE,
    MANIFEST_FORMAT,
    MANIFEST_VERSION,
    RETIRED_PREFIX,
    CorpusManifest,
    bytes_fingerprint,
    corpus_stamp,
    file_fingerprint,
    plan_sync,
    read_manifest,
    text_fingerprint,
    write_manifest,
)
from repro.store.store import (
    DocumentStore,
    StoredDocument,
    bundle_identity,
    live_readers,
    open_document,
    save_document,
    verify_document,
)

__all__ = [
    "DocumentStore",
    "StoredDocument",
    "bundle_identity",
    "live_readers",
    "open_document",
    "save_document",
    "verify_document",
    "CorpusManifest",
    "read_manifest",
    "write_manifest",
    "plan_sync",
    "corpus_stamp",
    "bytes_fingerprint",
    "file_fingerprint",
    "text_fingerprint",
    "MANIFEST_FILE",
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "RETIRED_PREFIX",
    "verify_bundle",
    "read_header",
    "bundle_names",
    "is_bundle",
    "StoreError",
    "StoreFormatError",
    "StoreCorruptionError",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
]
