"""On-disk layout of a compiled document bundle.

A *bundle* is a directory holding one versioned JSON header plus one
flat ``.npy`` file per compiled array::

    <bundle>/
      header.json            format, version, label table, manifest
      label_of.npy           int64[n]   interned label per node
      left.npy               int64[n]   first child  (fcns left)
      right.npy              int64[n]   next sibling (fcns right)
      parent.npy             int64[n]   XML parent
      bparent.npy            int64[n]   binary parent
      xml_end.npy            int64[n]   exclusive subtree end
      label_ids.npy          int64[n]   per-label sorted node ids, concatenated
      label_bounds.npy       int64[L+1] label_ids slice boundaries per label
      bp_packed.npy          uint8      BP bits, LSB-first, word-padded
      bp_word_prefix.npy     int64      cumulative popcount per 64-bit word
      bp_zero_word_prefix.npy int64     cumulative zero count per word
      bp_block_total.npy     int64      per-block excess delta
      bp_block_min.npy       int64      per-block min excess
      bp_block_max.npy       int64      per-block max excess
      bp_block_start_excess.npy int64   excess at each block start

Flat ``.npy`` files (rather than one ``.npz``) are deliberate:
``np.load(..., mmap_mode="r")`` only memory-maps plain files, and
zero-copy reopening is the whole point of the store.

Integrity (format v2)
---------------------
The v2 header manifest records, per array, not just dtype/shape but the
exact **file byte size** and a **CRC32 digest** of the ``.npy`` file.
:func:`verify_bundle` checks them in two modes: ``fast`` (header parses,
manifest complete, every file present with its recorded byte size and a
parseable ``.npy`` header of the right dtype/shape -- no data read) and
``deep`` (``fast`` plus a full CRC32 pass over every file, catching
bit rot that leaves sizes intact).  Any mismatch raises
:class:`StoreCorruptionError` carrying the bundle path, the array, and
the expected/actual value -- numpy internals never surface.  Digests
are *off the hot path*: :func:`load_array` (the serving path) only adds
an ``os.path.getsize`` check per array.

Atomic publication
------------------
:func:`write_bundle` never mutates the destination in place.  Arrays
and header are written to a hidden sibling temp directory
(``.<name>.tmp.<pid>.<seq>``), fsync'd, and the whole directory is then
renamed into place (retiring any previous bundle first).  A crash at
any point leaves either the old bundle, the new bundle, or hidden temp
debris that :func:`bundle_names` never lists and :func:`is_bundle`
callers never open -- never a half-written bundle.  Within the temp
directory the header is still written last, so even debris is
recognizably incomplete.

Invalidation rules
------------------
``version`` is bumped on **any** change to the array set, an array's
dtype/meaning, or the id scheme; readers accept the versions named in
``SUPPORTED_VERSIONS`` and hard-fail otherwise (no silent migration --
rebuilding from source XML is always safe and cheap relative to
serving).  v1 bundles (no digests) still open; ``deep`` verification
degrades to ``fast`` for them and says so in its report.
"""

from __future__ import annotations

import json
import os
import shutil
import zlib
from typing import Dict, List, Optional

import numpy as np

from repro import faults

FORMAT_NAME = "repro-document-store"
FORMAT_VERSION = 2
#: Versions this reader still opens (v1 predates per-array digests).
SUPPORTED_VERSIONS = (1, 2)
HEADER_FILE = "header.json"

#: Every array a bundle must contain, with its expected dtype.
ARRAY_DTYPES: Dict[str, str] = {
    "label_of": "int64",
    "left": "int64",
    "right": "int64",
    "parent": "int64",
    "bparent": "int64",
    "xml_end": "int64",
    "label_ids": "int64",
    "label_bounds": "int64",
    "bp_packed": "uint8",
    "bp_word_prefix": "int64",
    "bp_zero_word_prefix": "int64",
    "bp_block_total": "int64",
    "bp_block_min": "int64",
    "bp_block_max": "int64",
    "bp_block_start_excess": "int64",
}

#: Additive arrays a bundle *may* contain, with their expected dtypes.
#: Optional columns keep the format at v2: a bundle written before a
#: column existed still opens (the reader rebuilds the column on
#: demand), and an old reader meeting a new bundle would reject only
#: genuinely unknown arrays.  ``post`` is the postorder rank column the
#: window-join strategy consumes (see
#: :func:`repro.index.jumping.postorder_from_xml_end`).
OPTIONAL_ARRAY_DTYPES: Dict[str, str] = {
    "post": "int64",
}

_PUBLISH_SEQ = 0


class StoreError(Exception):
    """Base class for document-store failures."""


class StoreFormatError(StoreError):
    """The bundle on disk does not match the expected format/version."""


class StoreCorruptionError(StoreFormatError):
    """A bundle failed an integrity check (size, digest, or unreadable data).

    Structured: ``path`` is the bundle, ``array`` the offending array
    (``None`` for header-level damage), ``expected``/``actual`` the
    mismatched value (a byte size, a CRC32 hex digest, a dtype/shape).
    """

    def __init__(
        self,
        path: str,
        array: Optional[str],
        message: str,
        *,
        expected=None,
        actual=None,
    ) -> None:
        where = f"{path!r}" + (f" array {array!r}" if array else "")
        detail = ""
        if expected is not None or actual is not None:
            detail = f" (expected {expected!r}, got {actual!r})"
        super().__init__(f"corrupt bundle {where}: {message}{detail}")
        self.path = path
        self.array = array
        self.reason = message
        self.expected = expected
        self.actual = actual

    def to_dict(self) -> dict:
        """JSON-ready detail (the CLI/daemon error payloads use this)."""
        out = {"path": self.path, "reason": self.reason}
        if self.array is not None:
            out["array"] = self.array
        if self.expected is not None:
            out["expected"] = self.expected
        if self.actual is not None:
            out["actual"] = self.actual
        return out


def array_path(bundle: str, name: str) -> str:
    return os.path.join(bundle, f"{name}.npy")


def file_crc32(path: str, chunk: int = 1 << 20) -> str:
    """CRC32 of a whole file as an 8-digit hex string."""
    crc = 0
    with open(path, "rb") as handle:
        while True:
            block = handle.read(chunk)
            if not block:
                break
            crc = zlib.crc32(block, crc)
    return f"{crc & 0xFFFFFFFF:08x}"


def _fsync_path(path: str) -> None:
    """Best-effort fsync of a file or directory."""
    flags = os.O_RDONLY
    if hasattr(os, "O_DIRECTORY") and os.path.isdir(path):
        flags |= os.O_DIRECTORY
    try:
        fd = os.open(path, flags)
    except OSError:
        return  # e.g. platforms that cannot open directories
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _temp_dir_for(bundle: str) -> str:
    """A hidden, per-process sibling staging directory for ``bundle``."""
    global _PUBLISH_SEQ
    _PUBLISH_SEQ += 1
    parent, name = os.path.split(os.path.abspath(bundle))
    return os.path.join(parent, f".{name}.tmp.{os.getpid()}.{_PUBLISH_SEQ}")


def write_bundle(
    bundle: str,
    header: dict,
    arrays: Dict[str, np.ndarray],
    *,
    retire_to: Optional[str] = None,
) -> None:
    """Write header + arrays and publish the bundle atomically.

    Everything is staged in a hidden temp directory next to the
    destination (same filesystem, so the final rename is atomic), with
    the digest-bearing header written last and every file fsync'd.  On
    success the staged directory replaces the destination in one
    rename (a previous bundle is retired first, then removed); on any
    failure the staging debris is deleted and the destination is
    untouched -- a crash mid-build can never leave a half-bundle that
    :func:`read_header` accepts.

    ``retire_to`` keeps a superseded bundle instead of deleting it: the
    old directory is renamed to that (hidden, same-filesystem) path in
    the same crash-safe window, so generational corpora can hold it for
    still-open readers until a later compaction pass
    (:meth:`repro.store.store.DocumentStore.compact`).
    """
    missing = set(ARRAY_DTYPES) - set(arrays)
    extra = set(arrays) - set(ARRAY_DTYPES) - set(OPTIONAL_ARRAY_DTYPES)
    if missing or extra:
        raise StoreError(
            f"array set mismatch: missing={sorted(missing)}, "
            f"extra={sorted(extra)}"
        )
    bundle = os.path.abspath(bundle)
    staging = _temp_dir_for(bundle)
    try:
        os.makedirs(staging)
        manifest = {}
        for name, arr in arrays.items():
            faults.check("store.write_array", array=name, bundle=bundle)
            dtype = ARRAY_DTYPES.get(name) or OPTIONAL_ARRAY_DTYPES[name]
            arr = np.ascontiguousarray(arr, dtype=dtype)
            path = array_path(staging, name)
            np.save(path, arr)
            _fsync_path(path)
            manifest[name] = {
                "dtype": str(arr.dtype),
                "shape": list(arr.shape),
                "bytes": os.path.getsize(path),
                "crc32": file_crc32(path),
            }
        header = dict(
            header, format=FORMAT_NAME, version=FORMAT_VERSION, arrays=manifest
        )
        header_path = os.path.join(staging, HEADER_FILE)
        with open(header_path, "w", encoding="utf-8") as handle:
            json.dump(header, handle, indent=1, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        _fsync_path(staging)
        faults.check("store.publish", bundle=bundle)
        _publish(staging, bundle, retire_to=retire_to)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    _fsync_path(os.path.dirname(bundle))


def _publish(
    staging: str, bundle: str, *, retire_to: Optional[str] = None
) -> None:
    """Atomically move the staged directory into place.

    A fresh build is a single rename.  A rebuild retires the existing
    bundle with a rename first (also atomic), then renames the staged
    one in and deletes the retired copy -- or, with ``retire_to``,
    keeps it there for a later compaction.  The only crash windows
    leave either the old or the new bundle valid at ``bundle`` -- or,
    between the two renames, no bundle plus hidden debris -- never a
    mixture.
    """
    if os.path.isdir(bundle):
        retired = retire_to if retire_to is not None else staging + ".old"
        os.rename(bundle, retired)
        try:
            os.rename(staging, bundle)
        except BaseException:
            # Put the old bundle back rather than leave nothing.
            os.rename(retired, bundle)
            raise
        if retire_to is None:
            shutil.rmtree(retired, ignore_errors=True)
    else:
        if os.path.exists(bundle):
            raise StoreError(
                f"bundle destination {bundle!r} exists and is not a directory"
            )
        os.rename(staging, bundle)


def read_header(bundle: str) -> dict:
    """Read and validate a bundle's header (format, version, manifest)."""
    path = os.path.join(bundle, HEADER_FILE)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            header = json.load(handle)
    except FileNotFoundError:
        raise StoreFormatError(f"{bundle!r} is not a document bundle "
                               f"(no {HEADER_FILE})") from None
    except json.JSONDecodeError as exc:
        raise StoreCorruptionError(
            bundle, None, f"unparseable {HEADER_FILE}: {exc}"
        ) from None
    if header.get("format") != FORMAT_NAME:
        raise StoreFormatError(
            f"{bundle!r}: unknown format {header.get('format')!r}"
        )
    if header.get("version") not in SUPPORTED_VERSIONS:
        raise StoreFormatError(
            f"{bundle!r}: format version {header.get('version')!r} "
            f"(this reader understands {SUPPORTED_VERSIONS}; rebuild the "
            "bundle from its source document)"
        )
    manifest = header.get("arrays")
    if not isinstance(manifest, dict):
        raise StoreFormatError(f"{bundle!r}: array manifest mismatch")
    names = set(manifest)
    required = set(ARRAY_DTYPES)
    if not (required <= names <= required | set(OPTIONAL_ARRAY_DTYPES)):
        raise StoreFormatError(f"{bundle!r}: array manifest mismatch")
    return header


def load_array(bundle: str, name: str, manifest: dict, mmap: bool) -> np.ndarray:
    """Load one manifest array, checking it against the header.

    Serving-path integrity is deliberately cheap: a byte-size check
    (when the manifest records one -- v2) plus the dtype/shape check
    against the parsed ``.npy`` header.  Damage that preserves sizes is
    :func:`verify_bundle`'s ``deep`` job.  Every failure mode --
    missing file, size mismatch, an ``.npy`` numpy refuses to parse --
    surfaces as a structured :class:`StoreCorruptionError`, never a raw
    numpy exception.
    """
    path = array_path(bundle, name)
    meta = manifest[name]
    faults.check("store.load_array", array=name, bundle=bundle, path=path)
    expected_bytes = meta.get("bytes")
    if expected_bytes is not None:
        try:
            actual_bytes = os.path.getsize(path)
        except OSError:
            raise StoreCorruptionError(
                bundle, name, "array file missing"
            ) from None
        if actual_bytes != expected_bytes:
            raise StoreCorruptionError(
                bundle,
                name,
                "file size mismatch (truncated or overwritten)",
                expected=expected_bytes,
                actual=actual_bytes,
            )
    try:
        arr = np.load(path, mmap_mode="r" if mmap else None)
    except FileNotFoundError:
        raise StoreCorruptionError(bundle, name, "array file missing") from None
    except Exception as exc:
        # numpy's .npy header parser leaks SyntaxError/TokenError/... on
        # mangled bytes; a manifest-listed file that fails to load is by
        # definition corruption, whatever the parser tripped on.
        raise StoreCorruptionError(
            bundle, name, f"unreadable .npy file: {type(exc).__name__}: {exc}"
        ) from None
    if str(arr.dtype) != meta["dtype"] or list(arr.shape) != meta["shape"]:
        raise StoreCorruptionError(
            bundle,
            name,
            "dtype/shape mismatch against header",
            expected=f"{meta['dtype']}{meta['shape']}",
            actual=f"{arr.dtype}{list(arr.shape)}",
        )
    return arr


def verify_bundle(bundle: str, *, deep: bool = False) -> dict:
    """Check a bundle's integrity; raise :class:`StoreCorruptionError`.

    ``fast`` mode (the default) validates the header, then every
    array's presence, recorded byte size, and ``.npy`` dtype/shape --
    metadata only, no array data is read.  ``deep`` mode additionally
    recomputes each file's CRC32 against the v2 manifest digest,
    catching size-preserving damage (bit flips) with certainty.

    Returns a JSON-ready report::

        {"path", "version", "mode", "checksums", "n",
         "arrays": {name: {"bytes", "crc32"?}}, "ok": True}

    ``checksums`` is ``False`` for v1 bundles, whose manifests predate
    digests: ``deep`` then degrades to ``fast`` and the report says so.
    On the first failure a :class:`StoreCorruptionError` (or
    :class:`StoreFormatError` for header-level trouble) is raised
    instead of a report.
    """
    header = read_header(bundle)
    manifest = header["arrays"]
    has_digests = all("crc32" in meta for meta in manifest.values())
    report = {
        "path": os.path.abspath(bundle),
        "version": header["version"],
        "mode": "deep" if deep else "fast",
        "checksums": has_digests,
        "n": header.get("n"),
        "arrays": {},
        "ok": True,
    }
    for name in sorted(manifest):
        meta = manifest[name]
        arr = load_array(bundle, name, manifest, True)
        del arr  # header checks only; drop the mapping immediately
        entry = {"bytes": os.path.getsize(array_path(bundle, name))}
        if deep and has_digests:
            actual = file_crc32(array_path(bundle, name))
            if actual != meta["crc32"]:
                raise StoreCorruptionError(
                    bundle,
                    name,
                    "checksum mismatch",
                    expected=meta["crc32"],
                    actual=actual,
                )
            entry["crc32"] = actual
        report["arrays"][name] = entry
    return report


def is_bundle(path: str) -> bool:
    """Cheap test: does ``path`` look like a document bundle?"""
    return os.path.isfile(os.path.join(path, HEADER_FILE))


def bundle_names(root: str) -> List[str]:
    """Sorted names of the bundles directly under a corpus directory.

    Hidden entries (``.``-prefixed) are never bundles: that namespace
    is reserved for :func:`write_bundle` staging/retire debris, so a
    crashed build can never surface in a corpus listing.
    """
    if not os.path.isdir(root):
        return []
    return sorted(
        name
        for name in os.listdir(root)
        if not name.startswith(".") and is_bundle(os.path.join(root, name))
    )
