"""On-disk layout of a compiled document bundle.

A *bundle* is a directory holding one versioned JSON header plus one
flat ``.npy`` file per compiled array::

    <bundle>/
      header.json            format, version, label table, manifest
      label_of.npy           int64[n]   interned label per node
      left.npy               int64[n]   first child  (fcns left)
      right.npy              int64[n]   next sibling (fcns right)
      parent.npy             int64[n]   XML parent
      bparent.npy            int64[n]   binary parent
      xml_end.npy            int64[n]   exclusive subtree end
      label_ids.npy          int64[n]   per-label sorted node ids, concatenated
      label_bounds.npy       int64[L+1] label_ids slice boundaries per label
      bp_packed.npy          uint8      BP bits, LSB-first, word-padded
      bp_word_prefix.npy     int64      cumulative popcount per 64-bit word
      bp_zero_word_prefix.npy int64     cumulative zero count per word
      bp_block_total.npy     int64      per-block excess delta
      bp_block_min.npy       int64      per-block min excess
      bp_block_max.npy       int64      per-block max excess
      bp_block_start_excess.npy int64   excess at each block start

Flat ``.npy`` files (rather than one ``.npz``) are deliberate:
``np.load(..., mmap_mode="r")`` only memory-maps plain files, and
zero-copy reopening is the whole point of the store.

Invalidation rules
------------------
``version`` is bumped on **any** change to the array set, an array's
dtype/meaning, or the id scheme; readers hard-fail on a mismatch (no
silent migration -- rebuilding from source XML is always safe and
cheap relative to serving).  The header additionally records each
array's dtype and shape; a manifest/file mismatch raises
:class:`StoreFormatError` before any array is interpreted.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

import numpy as np

FORMAT_NAME = "repro-document-store"
FORMAT_VERSION = 1
HEADER_FILE = "header.json"

#: Every array a v1 bundle must contain, with its expected dtype.
ARRAY_DTYPES: Dict[str, str] = {
    "label_of": "int64",
    "left": "int64",
    "right": "int64",
    "parent": "int64",
    "bparent": "int64",
    "xml_end": "int64",
    "label_ids": "int64",
    "label_bounds": "int64",
    "bp_packed": "uint8",
    "bp_word_prefix": "int64",
    "bp_zero_word_prefix": "int64",
    "bp_block_total": "int64",
    "bp_block_min": "int64",
    "bp_block_max": "int64",
    "bp_block_start_excess": "int64",
}


class StoreError(Exception):
    """Base class for document-store failures."""


class StoreFormatError(StoreError):
    """The bundle on disk does not match the expected format/version."""


def array_path(bundle: str, name: str) -> str:
    return os.path.join(bundle, f"{name}.npy")


def write_bundle(
    bundle: str,
    header: dict,
    arrays: Dict[str, np.ndarray],
) -> None:
    """Write header + arrays; validates the manifest against ARRAY_DTYPES."""
    missing = set(ARRAY_DTYPES) - set(arrays)
    extra = set(arrays) - set(ARRAY_DTYPES)
    if missing or extra:
        raise StoreError(
            f"array set mismatch: missing={sorted(missing)}, "
            f"extra={sorted(extra)}"
        )
    os.makedirs(bundle, exist_ok=True)
    header_path = os.path.join(bundle, HEADER_FILE)
    if os.path.exists(header_path):
        # Rebuilding over an existing bundle: invalidate it *before*
        # touching any array, so a crash mid-rebuild can never leave a
        # valid old header pointing at a mix of old and new arrays.
        os.remove(header_path)
    manifest = {}
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr, dtype=ARRAY_DTYPES[name])
        np.save(array_path(bundle, name), arr)
        manifest[name] = {"dtype": str(arr.dtype), "shape": list(arr.shape)}
    header = dict(
        header, format=FORMAT_NAME, version=FORMAT_VERSION, arrays=manifest
    )
    tmp = header_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(header, handle, indent=1, sort_keys=True)
        handle.write("\n")
    # The header is written last and moved into place atomically: a
    # bundle without a valid header is simply not a bundle (yet).
    os.replace(tmp, header_path)


def read_header(bundle: str) -> dict:
    """Read and validate a bundle's header (format, version, manifest)."""
    path = os.path.join(bundle, HEADER_FILE)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            header = json.load(handle)
    except FileNotFoundError:
        raise StoreFormatError(f"{bundle!r} is not a document bundle "
                               f"(no {HEADER_FILE})") from None
    except json.JSONDecodeError as exc:
        raise StoreFormatError(f"corrupt header in {bundle!r}: {exc}") from None
    if header.get("format") != FORMAT_NAME:
        raise StoreFormatError(
            f"{bundle!r}: unknown format {header.get('format')!r}"
        )
    if header.get("version") != FORMAT_VERSION:
        raise StoreFormatError(
            f"{bundle!r}: format version {header.get('version')!r} "
            f"(this reader understands only {FORMAT_VERSION}; rebuild the "
            "bundle from its source document)"
        )
    manifest = header.get("arrays")
    if not isinstance(manifest, dict) or set(manifest) != set(ARRAY_DTYPES):
        raise StoreFormatError(f"{bundle!r}: array manifest mismatch")
    return header


def load_array(bundle: str, name: str, manifest: dict, mmap: bool) -> np.ndarray:
    """Load one manifest array, checking dtype/shape against the header."""
    path = array_path(bundle, name)
    try:
        arr = np.load(path, mmap_mode="r" if mmap else None)
    except FileNotFoundError:
        raise StoreFormatError(f"{bundle!r}: missing array {name!r}") from None
    meta = manifest[name]
    if str(arr.dtype) != meta["dtype"] or list(arr.shape) != meta["shape"]:
        raise StoreFormatError(
            f"{bundle!r}: array {name!r} is {arr.dtype}{list(arr.shape)}, "
            f"header says {meta['dtype']}{meta['shape']}"
        )
    return arr


def is_bundle(path: str) -> bool:
    """Cheap test: does ``path`` look like a document bundle?"""
    return os.path.isfile(os.path.join(path, HEADER_FILE))


def bundle_names(root: str) -> List[str]:
    """Sorted names of the bundles directly under a corpus directory."""
    if not os.path.isdir(root):
        return []
    return sorted(
        name
        for name in os.listdir(root)
        if is_bundle(os.path.join(root, name))
    )
