"""Corpus-level manifest: generations, retirement, and sync planning.

A *corpus* is a directory of named bundles (:class:`~repro.store.store.
DocumentStore`).  Bundles themselves are immutable and atomically
published (:mod:`repro.store.format`); this module adds the mutable
layer on top: a ``manifest.json`` at the corpus root recording a
**monotonically increasing generation** counter, the live document set
(name, bundle fingerprint, the generation that published it), the
**retired** bundles awaiting compaction, and a bounded operation
**history** (what ``repro store log`` shows).

Update protocol (one mutating op = one generation)::

    1. stage + publish the new bundle (write_bundle: staged rename,
       fsync'd; a superseded bundle is *retired* by rename into the
       hidden ``.retired.*`` namespace instead of deleted)
    2. write the updated manifest atomically (temp file + rename)

A crash between 1 and 2 leaves the bundle set valid and the manifest
one step stale; :func:`read_manifest`'s reconciliation (adopt unknown
bundles, drop entries whose bundle vanished, adopt orphaned retired
directories) heals the bookkeeping, and a later ``sync`` re-applies the
logically-lost op from the source fingerprints.  The manifest is
therefore a cache of corpus state, never the source of truth about
which arrays are served -- the published bundles are.

Retired bundles are garbage, not trash: a reader that opened a bundle
before it was superseded keeps a valid memory-map of the renamed
directory (POSIX rename does not disturb open mappings).
``DocumentStore.compact()`` deletes a retired bundle only once no
in-process reader holds it (:func:`repro.store.store.live_readers`);
cross-process readers on POSIX survive even an early deletion, because
unlinked pages stay mapped until the last reader unmaps them.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import os
from typing import Dict, List, Optional

from repro.store.format import (
    HEADER_FILE,
    StoreCorruptionError,
    StoreError,
    _fsync_path,
    bundle_names,
    is_bundle,
    read_header,
)

MANIFEST_FILE = "manifest.json"
MANIFEST_FORMAT = "repro-corpus-manifest"
MANIFEST_VERSION = 1
#: Retired (superseded) bundles live under this hidden prefix -- the
#: same dot namespace :func:`~repro.store.format.bundle_names` skips.
RETIRED_PREFIX = ".retired."
#: History entries kept in the manifest (oldest are dropped).
HISTORY_LIMIT = 1000


def _now() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat()


def bytes_fingerprint(data: bytes) -> str:
    """Content fingerprint of raw source bytes: ``sha256:<hex>``."""
    return f"sha256:{hashlib.sha256(data).hexdigest()}"


def file_fingerprint(path: str, chunk: int = 1 << 20) -> str:
    """Content fingerprint of a source file (same scheme)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(chunk)
            if not block:
                break
            digest.update(block)
    return f"sha256:{digest.hexdigest()}"


def text_fingerprint(text: str) -> str:
    """Content fingerprint of in-memory source text (same scheme)."""
    return bytes_fingerprint(text.encode("utf-8"))


class CorpusManifest:
    """In-memory view of one corpus manifest (see the module docstring).

    ``documents`` maps name -> ``{"fingerprint", "generation",
    "updated"}``; ``retired`` is a list of ``{"bundle", "name",
    "generation", "retired"}`` (``bundle`` is the hidden directory
    name); ``history`` is the bounded operation log, newest last.
    """

    def __init__(
        self,
        generation: int = 0,
        documents: Optional[Dict[str, dict]] = None,
        retired: Optional[List[dict]] = None,
        history: Optional[List[dict]] = None,
    ) -> None:
        self.generation = generation
        self.documents: Dict[str, dict] = documents or {}
        self.retired: List[dict] = retired or []
        self.history: List[dict] = history or []

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "generation": self.generation,
            "documents": self.documents,
            "retired": self.retired,
            "history": self.history[-HISTORY_LIMIT:],
        }

    @classmethod
    def from_dict(cls, payload: dict, root: str) -> "CorpusManifest":
        if payload.get("format") != MANIFEST_FORMAT:
            raise StoreError(
                f"{root!r}: unknown manifest format {payload.get('format')!r}"
            )
        if payload.get("version") != MANIFEST_VERSION:
            raise StoreError(
                f"{root!r}: manifest version {payload.get('version')!r} "
                f"(this reader understands {MANIFEST_VERSION})"
            )
        generation = payload.get("generation")
        if not isinstance(generation, int) or generation < 0:
            raise StoreCorruptionError(
                root, None, f"manifest generation {generation!r} invalid"
            )
        return cls(
            generation=generation,
            documents=dict(payload.get("documents") or {}),
            retired=list(payload.get("retired") or []),
            history=list(payload.get("history") or []),
        )

    # -- mutation bookkeeping ------------------------------------------------

    def record(self, op: str, name: Optional[str] = None, **detail) -> int:
        """Bump the generation and append a history entry; returns it."""
        self.generation += 1
        entry = {"generation": self.generation, "op": op, "time": _now()}
        if name is not None:
            entry["name"] = name
        entry.update(detail)
        self.history.append(entry)
        if len(self.history) > HISTORY_LIMIT:
            del self.history[: len(self.history) - HISTORY_LIMIT]
        return self.generation

    def set_document(self, name: str, fingerprint: Optional[str]) -> None:
        self.documents[name] = {
            "fingerprint": fingerprint,
            "generation": self.generation,
            "updated": _now(),
        }

    def retire(self, name: str, bundle: str) -> None:
        entry = self.documents.pop(name, None)
        self.retired.append(
            {
                "bundle": bundle,
                "name": name,
                "generation": entry["generation"] if entry else None,
                "retired": _now(),
            }
        )


def manifest_path(root: str) -> str:
    return os.path.join(root, MANIFEST_FILE)


def retired_dir_name(name: str, generation: object) -> str:
    """The hidden directory a superseded bundle is renamed into.

    Includes pid + a timestamp fragment so repeated retirements of the
    same (name, generation) -- e.g. after a crash-then-retry -- never
    collide.
    """
    stamp = datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y%m%dT%H%M%S%f"
    )
    return f"{RETIRED_PREFIX}{name}.g{generation}.{os.getpid()}.{stamp}"


def write_manifest(root: str, manifest: CorpusManifest) -> None:
    """Atomically publish the manifest (temp file, fsync, rename)."""
    os.makedirs(root, exist_ok=True)
    path = manifest_path(root)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest.to_dict(), handle, indent=1, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_path(root)


def load_manifest(root: str) -> Optional[CorpusManifest]:
    """The stored manifest, or ``None`` when the corpus has none yet."""
    path = manifest_path(root)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return None
    except json.JSONDecodeError as exc:
        raise StoreCorruptionError(
            root, None, f"unparseable {MANIFEST_FILE}: {exc}"
        ) from None
    return CorpusManifest.from_dict(payload, root)


def bootstrap_manifest(root: str) -> CorpusManifest:
    """Synthesize a manifest from the bundles on disk (generation 0).

    Used for corpora that predate manifests, and as the reconciliation
    baseline.  Fingerprints come from each bundle's ``source`` header
    when present (``store sync`` records them); bundles without one get
    ``None`` and are treated as always-stale by a sync diff.
    """
    manifest = CorpusManifest()
    for name in bundle_names(root):
        try:
            header = read_header(os.path.join(root, name))
        except StoreError:
            continue  # corrupt bundle: not part of the logical corpus
        source = header.get("source") or {}
        manifest.documents[name] = {
            "fingerprint": source.get("fingerprint"),
            "generation": 0,
            "updated": header.get("created", _now()),
        }
    return manifest


def read_manifest(root: str) -> CorpusManifest:
    """Load (or bootstrap) the manifest and reconcile it with the disk.

    Reconciliation heals the crash window between a bundle publish and
    the manifest write, plus any out-of-band tampering: entries whose
    bundle vanished are dropped, bundles the manifest does not know are
    adopted (fingerprint from their ``source`` header), retired
    directories nobody recorded are adopted into the garbage list, and
    recorded retirements whose directory is already gone are forgotten.
    Reconciliation is in-memory only -- read paths never write.
    """
    manifest = load_manifest(root) or bootstrap_manifest(root)
    on_disk = set(bundle_names(root))
    for name in list(manifest.documents):
        if name not in on_disk:
            manifest.documents.pop(name)
    for name in sorted(on_disk - set(manifest.documents)):
        try:
            header = read_header(os.path.join(root, name))
        except StoreError:
            continue
        source = header.get("source") or {}
        manifest.documents[name] = {
            "fingerprint": source.get("fingerprint"),
            "generation": manifest.generation,
            "updated": header.get("created", _now()),
        }
    recorded = {entry["bundle"] for entry in manifest.retired}
    manifest.retired = [
        entry
        for entry in manifest.retired
        if os.path.isdir(os.path.join(root, entry["bundle"]))
    ]
    if os.path.isdir(root):
        for entry in sorted(os.listdir(root)):
            if not entry.startswith(RETIRED_PREFIX) or entry in recorded:
                continue
            if not is_bundle(os.path.join(root, entry)):
                continue
            manifest.retired.append(
                {
                    "bundle": entry,
                    "name": entry[len(RETIRED_PREFIX):].split(".g", 1)[0],
                    "generation": None,
                    "retired": _now(),
                }
            )
    return manifest


def corpus_stamp(root: str) -> Optional[int]:
    """A cheap change stamp for reload polling: the manifest's
    ``st_mtime_ns`` when one exists, else the corpus directory's (bundle
    publishes rename into it, which bumps the directory mtime)."""
    for candidate in (manifest_path(root), root):
        try:
            return os.stat(candidate).st_mtime_ns
        except OSError:
            continue
    return None


def plan_sync(
    root: str, source_dir: str, *, delete: bool = True
) -> Dict[str, List[str]]:
    """Diff a directory of XML files against the corpus manifest.

    Documents are named by file stem (``auctions.xml`` -> ``auctions``).
    Returns ``{"add": [...], "replace": [...], "remove": [...],
    "unchanged": [...]}`` -- the minimal operation set, decided purely
    by content fingerprints, so an untouched file costs one hash and
    zero bundle writes.  ``delete=False`` leaves corpus documents with
    no source file alone (they are listed under ``"keep"`` instead).
    """
    if not os.path.isdir(source_dir):
        raise StoreError(f"sync source {source_dir!r} is not a directory")
    sources: Dict[str, str] = {}
    for entry in sorted(os.listdir(source_dir)):
        if not entry.lower().endswith(".xml"):
            continue
        name = os.path.splitext(entry)[0]
        if not name or name.startswith("."):
            continue
        if name in sources:
            raise StoreError(
                f"sync source {source_dir!r} has duplicate document "
                f"name {name!r}"
            )
        sources[name] = os.path.join(source_dir, entry)
    manifest = read_manifest(root)
    plan: Dict[str, List[str]] = {
        "add": [],
        "replace": [],
        "remove": [],
        "unchanged": [],
        "keep": [],
    }
    for name, path in sources.items():
        entry = manifest.documents.get(name)
        if entry is None:
            plan["add"].append(name)
        elif entry.get("fingerprint") != file_fingerprint(path):
            plan["replace"].append(name)
        else:
            plan["unchanged"].append(name)
    for name in sorted(set(manifest.documents) - set(sources)):
        plan["remove" if delete else "keep"].append(name)
    plan["sources"] = sources  # type: ignore[assignment]
    return plan
