"""Persistent compiled-document store: parse once, reopen in O(arrays).

:func:`save_document` compiles a document down to the flat arrays every
layer of the engine runs on -- :class:`~repro.tree.binary.BinaryTree`
navigation arrays, the :class:`~repro.index.labels.LabelIndex` per-label
sorted id arrays, and the balanced-parentheses bitvector with its
rank/select directories and excess tables -- and writes them as a
versioned bundle (:mod:`repro.store.format`).

:func:`open_document` is the O(1)-startup path: every numpy-side array
is reopened as a read-only ``np.load(mmap_mode="r")`` view (zero copy,
shared across processes by the page cache), and only the plain-``int``
list mirrors that the pure-Python inner loops index are materialized --
no XML parsing, no label re-interning, no argsort, no BP directory
reconstruction.  The resulting :class:`StoredDocument` plugs into
:class:`~repro.engine.api.Engine` / `Workspace.add` directly, pickles as
its path (cheap process-pool payloads), and rebuilds its
:class:`~repro.index.succinct.SuccinctTree` lazily from the mapped BP
state.
"""

from __future__ import annotations

import datetime
import os
import shutil
import threading
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.index.bitvector import BitVector
from repro.index.jumping import TreeIndex
from repro.index.labels import LabelIndex
from repro.index.succinct import SuccinctTree
from repro.store.format import (
    FORMAT_VERSION,
    HEADER_FILE,
    StoreCorruptionError,
    StoreError,
    StoreFormatError,
    bundle_names,
    is_bundle,
    load_array,
    read_header,
    verify_bundle,
    write_bundle,
)
from repro.store.manifest import (
    CorpusManifest,
    file_fingerprint,
    plan_sync,
    read_manifest,
    retired_dir_name,
    write_manifest,
)
from repro.tree.binary import BinaryTree
from repro.tree.document import XMLDocument

Document = Union[str, XMLDocument, BinaryTree, TreeIndex]

# -- in-process reader registry ----------------------------------------------
#
# compact() must not delete a retired bundle a live StoredDocument still
# maps.  Bundles are identified by the (st_dev, st_ino) of their
# header.json -- stable across the retire rename -- and refcounted per
# open.  The registry is process-local; cross-process readers on POSIX
# survive even an early deletion (unlinked pages stay mapped), so this
# is a tidiness guarantee in-process and a safety one everywhere.

_READERS: Dict[Tuple[int, int], int] = {}
_READERS_LOCK = threading.Lock()


def bundle_identity(path: str) -> Optional[Tuple[int, int]]:
    """A rename-stable identity for a published bundle: the
    ``(st_dev, st_ino)`` of its header file, or ``None`` when the path
    holds no bundle.  Retiring a bundle renames its directory but keeps
    the inode, so the identity tracks the *publication*, not the path --
    the property both :func:`live_readers` and the daemon's reload
    change-detection rely on."""
    try:
        st = os.stat(os.path.join(path, HEADER_FILE))
    except OSError:
        return None
    return (st.st_dev, st.st_ino)


def _register_reader(key: Optional[Tuple[int, int]]) -> None:
    if key is None:
        return
    with _READERS_LOCK:
        _READERS[key] = _READERS.get(key, 0) + 1


def _unregister_reader(key: Optional[Tuple[int, int]]) -> None:
    if key is None:
        return
    with _READERS_LOCK:
        count = _READERS.get(key, 0) - 1
        if count > 0:
            _READERS[key] = count
        else:
            _READERS.pop(key, None)


def live_readers(path: str) -> int:
    """In-process open :class:`StoredDocument` count for a bundle path.

    Rename-stable: a reader that opened the bundle before it was
    retired still counts against the retired directory.
    """
    key = bundle_identity(path)
    if key is None:
        return 0
    with _READERS_LOCK:
        return _READERS.get(key, 0)


def _release_mapped(mapped: List[np.ndarray]) -> None:
    """Close the mmap handles behind a list of mapped arrays.

    Drops the array references first (each pins an export on its mmap);
    a mapping still exported by a live ndarray elsewhere cannot be
    closed yet -- those are retried after a garbage-collection pass
    and, if still pinned, left for the final reference drop to unmap.
    """
    leftover = []
    while mapped:
        arr = mapped.pop()
        mm = getattr(arr, "_mmap", None)
        del arr
        if mm is not None and not getattr(mm, "closed", True):
            leftover.append(mm)
    for retry in (False, True):
        if not leftover:
            break
        if retry:
            import gc

            gc.collect()
        still = []
        for mm in leftover:
            try:
                mm.close()
            except (BufferError, ValueError):
                still.append(mm)
        leftover = still


class StoredDocument:
    """A compiled document reopened from a bundle.

    Exposes the same surface every engine entry point consumes: ``index``
    (a ready :class:`TreeIndex`), ``tree``, and a lazy :meth:`succinct`
    view.  Pickles as its bundle path, so shipping one to a process-pool
    worker costs a few bytes instead of the whole array payload.
    """

    def __init__(self, path: str, header: dict, index: TreeIndex) -> None:
        self.path = path
        self.header = header
        self.index = index
        self.closed = False
        self._succinct: Optional[SuccinctTree] = None
        # Memory-mapped arrays this document opened; close() releases
        # their OS mappings (a long-lived daemon unmounting a corpus
        # must not leak map handles until garbage collection).
        self._mapped: List[np.ndarray] = []
        # Registered reader identity (mmap opens only); compact() keeps
        # retired bundles alive while this is held.
        self._reader_key: Optional[Tuple[int, int]] = None

    def _ensure_open(self) -> None:
        if self.closed:
            raise StoreError(f"document {self.path!r} is closed")

    @property
    def tree(self) -> BinaryTree:
        self._ensure_open()
        return self.index.tree

    @property
    def n(self) -> int:
        self._ensure_open()
        return self.index.tree.n

    @property
    def labels(self) -> List[str]:
        self._ensure_open()
        return self.index.tree.labels

    def succinct(self) -> SuccinctTree:
        """The document's BP tree, rehydrated from the mapped state."""
        self._ensure_open()
        if self._succinct is None:
            header = self.header
            mmap = header.get("_mmap", True)
            manifest = header["arrays"]

            def load(name: str) -> np.ndarray:
                arr = load_array(self.path, name, manifest, mmap)
                if mmap:
                    self._mapped.append(arr)
                return arr

            bv = BitVector.from_state(
                load("bp_packed"),
                header["bp_bits"],
                load("bp_word_prefix"),
                load("bp_zero_word_prefix"),
            )
            tree = self.index.tree
            self._succinct = SuccinctTree.from_state(
                bv,
                tree.label_of,
                tree.labels,
                load("bp_block_total"),
                load("bp_block_min"),
                load("bp_block_max"),
                load("bp_block_start_excess"),
            )
        return self._succinct

    def close(self) -> None:
        """Release the document's memory-mapped array handles (idempotent).

        Drops this object's own references (index, succinct view) and
        then closes the underlying ``mmap`` objects.  A mapping whose
        pages are still exported by a live ndarray elsewhere (an engine
        still holding the index, a cached slice) cannot be closed by the
        OS yet -- those are retried after a garbage-collection pass and,
        if still pinned, left for the final reference drop to unmap.
        After ``close()`` the document must not be used.
        """
        if self.closed:
            return
        self.closed = True
        mapped, self._mapped = self._mapped, []
        self.index = None
        self._succinct = None
        key, self._reader_key = self._reader_key, None
        _unregister_reader(key)
        _release_mapped(mapped)

    def __enter__(self) -> "StoredDocument":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __reduce__(self):
        # Reopening by path keeps the pickle a few bytes; the original
        # mmap choice is preserved.  (Path-based pickling requires the
        # bundle to still exist wherever the unpickle happens.)
        return (_reopen, (self.path, self.header.get("_mmap", True)))

    def __repr__(self) -> str:
        return f"StoredDocument({self.path!r}, n={self.n})"


def _reopen(path: str, mmap: bool) -> "StoredDocument":
    return open_document(path, mmap=mmap)


def resolve_document(document, encode_attributes: bool, encode_text: bool):
    """Resolve any accepted document kind to ``(TreeIndex, parens-or-None)``.

    The single dispatch shared by :class:`~repro.engine.api.Engine` and
    :func:`save_document`, so both accept exactly the same inputs: raw
    XML text, an event source (``.events(sink)``), an
    :class:`XMLDocument`, a :class:`BinaryTree`, a :class:`TreeIndex`,
    or a :class:`StoredDocument` (anything carrying a ready ``.index``).
    String and event input stream through a
    :class:`~repro.tree.builder.TreeBuilder`; the second element of the
    pair is then the accumulated BP parenthesis array (``None`` for the
    other kinds).  Encode flags are validated here: already-encoded
    trees/indexes reject them instead of silently ignoring them.
    """
    from repro.tree.builder import LateTextChild, TreeBuilder

    stored_index = getattr(document, "index", None)
    if isinstance(stored_index, TreeIndex) and not isinstance(
        document, (str, XMLDocument, BinaryTree, TreeIndex)
    ):
        document = stored_index
    if isinstance(document, (TreeIndex, BinaryTree)):
        if encode_attributes or encode_text:
            raise ValueError(
                "encode_attributes/encode_text apply while building the "
                "binary tree; the given "
                f"{type(document).__name__} is already encoded"
            )
        if isinstance(document, BinaryTree):
            return TreeIndex(document), None
        return document, None
    if isinstance(document, XMLDocument):
        return (
            TreeIndex(
                BinaryTree.from_document(
                    document,
                    encode_attributes=encode_attributes,
                    encode_text=encode_text,
                )
            ),
            None,
        )
    if isinstance(document, str) or callable(getattr(document, "events", None)):
        builder = TreeBuilder(
            encode_attributes=encode_attributes, encode_text=encode_text
        )
        try:
            if isinstance(document, str):
                from repro.tree.parser import parse_events

                parse_events(document, builder)
            else:
                document.events(builder)
        except LateTextChild:
            from repro.tree.parser import parse_xml

            if not isinstance(document, str):
                raise  # an event source cannot be replayed as XML text
            return resolve_document(
                parse_xml(document), encode_attributes, encode_text
            )
        return TreeIndex(builder.finish()), builder.parens_array()
    raise TypeError(
        f"cannot build a document index from {type(document).__name__}"
    )


def save_document(
    document: Document,
    path: str,
    *,
    encode_attributes: bool = False,
    encode_text: bool = False,
    source: Optional[dict] = None,
    retire_to: Optional[str] = None,
) -> str:
    """Compile ``document`` and persist it as a bundle at ``path``.

    ``document`` may be raw XML text, an event source (anything with an
    ``events(sink)`` method, e.g. an
    :class:`~repro.xmark.generator.XMarkGenerator`), an
    :class:`XMLDocument`, a :class:`BinaryTree`, or a prebuilt
    :class:`TreeIndex` (whose label index is reused as-is).  The encode
    flags apply when the binary tree is built here (string / event /
    XMLDocument input), exactly as in :class:`~repro.engine.api.Engine`;
    an already-encoded tree or index rejects them rather than silently
    ignoring them.  String and event input stream straight through a
    :class:`~repro.tree.builder.TreeBuilder`, whose accumulated BP
    parentheses are reused for the succinct state (no re-walk).

    ``retire_to`` (generational corpora) renames a superseded bundle to
    that hidden path inside the atomic publish instead of deleting it;
    see :func:`repro.store.format.write_bundle`.
    """
    index, parens = resolve_document(document, encode_attributes, encode_text)
    tree = index.tree
    if not isinstance(tree, BinaryTree):
        raise TypeError("store bundles require a BinaryTree-backed index")
    if parens is not None:
        succinct = SuccinctTree(parens, tree.label_of, tree.labels)
    else:
        succinct = SuccinctTree.from_binary(tree)
    bv_state = succinct.bv.state()
    bp_state = succinct.state()
    label_ids, label_bounds = index.labels.state()
    arrays = {
        "label_of": np.asarray(tree.label_of, dtype=np.int64),
        "left": np.asarray(tree.left, dtype=np.int64),
        "right": np.asarray(tree.right, dtype=np.int64),
        "parent": np.asarray(tree.parent, dtype=np.int64),
        "bparent": np.asarray(tree.bparent, dtype=np.int64),
        "xml_end": np.asarray(tree.xml_end, dtype=np.int64),
        "label_ids": label_ids,
        "label_bounds": label_bounds,
        "bp_packed": bv_state["packed"],
        "bp_word_prefix": bv_state["word_prefix"],
        "bp_zero_word_prefix": bv_state["zero_word_prefix"],
        "bp_block_total": bp_state["block_total"],
        "bp_block_min": bp_state["block_min"],
        "bp_block_max": bp_state["block_max"],
        "bp_block_start_excess": bp_state["block_start_excess"],
        # Optional (additive) columns: the postorder ranks the window-
        # join strategy consumes.  Computed here at build time so an
        # mmap reopen never pays the lexsort; bundles written before the
        # column existed still open, and the index rebuilds it lazily.
        "post": index.post_array(),
    }
    header = {
        "n": tree.n,
        "labels": list(tree.labels),
        "bp_bits": succinct.bv.n,
        "encoded_attributes": any(l.startswith("@") for l in tree.labels),
        "encoded_text": "#text" in tree.labels,
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "source": source or {},
        # Document statistics the cost-based planner reads on reopen --
        # computed once at build time so a memory-mapped open never pays
        # an O(n) sweep to price a query (repro.engine.planner).
        "stats": {"height": tree.height()},
    }
    write_bundle(path, header, arrays, retire_to=retire_to)
    return path


def verify_document(path: str, *, deep: bool = False) -> dict:
    """Integrity-check one bundle; see :func:`repro.store.format.verify_bundle`.

    ``fast`` (default) checks header/manifest/file sizes/``.npy``
    metadata without reading array data; ``deep=True`` additionally
    recomputes every file's CRC32 against the manifest digests.  Raises
    :class:`~repro.store.format.StoreCorruptionError` on damage,
    returns the JSON-ready verification report otherwise.
    """
    return verify_bundle(path, deep=deep)


def open_document(path: str, *, mmap: bool = True) -> StoredDocument:
    """Reopen a bundle with zero re-parsing (see the module docstring).

    ``mmap=False`` reads the arrays into memory instead of mapping them
    (useful when the bundle lives on storage slated for deletion).
    """
    header = read_header(path)
    manifest = header["arrays"]
    # Capture the bundle's identity before mapping anything, so the
    # reader registration below binds to the files actually mapped even
    # if the bundle is concurrently replaced.
    reader_key = bundle_identity(path) if mmap else None
    mapped: List[np.ndarray] = []

    def load(name: str) -> np.ndarray:
        arr = load_array(path, name, manifest, mmap)
        if mmap:
            mapped.append(arr)
        return arr

    # A failure partway through (a corrupt array after several mapped
    # fine) must not leak the handles already opened.
    try:
        labels = list(header["labels"])
        label_of_arr = load("label_of")
        left_arr = load("left")
        right_arr = load("right")
        parent_arr = load("parent")
        bparent_arr = load("bparent")
        xml_end_arr = load("xml_end")
        n = int(header["n"])
        if label_of_arr.shape != (n,):
            raise StoreFormatError(
                f"{path!r}: header n={n} but label_of has shape "
                f"{label_of_arr.shape}"
            )
        # The scalar inner loops of the evaluator index these per node;
        # the plain-list mirrors keep every id a Python int (and keep
        # list indexing speed), while the numpy views stay zero-copy.
        tree = BinaryTree.from_arrays(
            labels,
            label_of_arr.tolist(),
            left_arr.tolist(),
            right_arr.tolist(),
            parent_arr.tolist(),
            xml_end_arr.tolist(),
            bparent=bparent_arr.tolist(),
        )
        label_index = LabelIndex.from_state(
            tree, load("label_ids"), load("label_bounds")
        )
    except BaseException:
        _release_mapped(mapped)
        raise
    index = TreeIndex(tree, labels=label_index)
    # Seed the vectorized-path caches with the mapped arrays directly --
    # the hybrid/fused strategies then slice the store file itself.
    index._xml_end_arr = xml_end_arr
    index._parent_arr = parent_arr
    index._label_of_arr = label_of_arr
    # Optional window-join column (additive; absent from older bundles,
    # in which case TreeIndex.post_array() re-derives it on demand).
    if "post" in manifest:
        try:
            index._post_arr = load("post")
        except BaseException:
            _release_mapped(mapped)
            raise
    # Build-time document statistics (absent from pre-planner bundles;
    # the planner then falls back to a one-off computed sweep).
    stats = header.get("stats")
    if isinstance(stats, dict):
        index.doc_stats = stats
    if mmap:
        # Advertise the bundle for cheap process-pool payloads (workers
        # reopen the mapped file).  An mmap=False open is for bundles
        # whose storage may go away, so its payloads ship the arrays
        # themselves instead of a path that may no longer resolve.
        index.store_path = os.path.abspath(path)
    header["_mmap"] = mmap
    document = StoredDocument(os.path.abspath(path), header, index)
    document._mapped.extend(mapped)
    document._reader_key = reader_key
    _register_reader(reader_key)
    return document


class DocumentStore:
    """A corpus directory of named bundles (one subdirectory per document).

    The corpus is *mutable without rebuilds*: :meth:`add`,
    :meth:`replace` and :meth:`remove` publish or retire one bundle at
    a time under a generational ``manifest.json``
    (:mod:`repro.store.manifest`), :meth:`sync` applies the minimal
    add/replace/remove set to mirror a directory of XML sources, and
    :meth:`compact` deletes retired bundles once no in-process reader
    still maps them.  Readers that opened a document before it was
    superseded keep serving the old generation until they close.

    >>> import tempfile
    >>> root = tempfile.mkdtemp()
    >>> store = DocumentStore(root)
    >>> _ = store.save("tiny", "<r><a><b/></a></r>")
    >>> store.names()
    ['tiny']
    >>> store.open("tiny").n
    4
    >>> _ = store.replace("tiny", "<r><a/><a/></r>")
    >>> store.generation()
    2
    """

    def __init__(self, root: str) -> None:
        self.root = root

    def path_for(self, name: str) -> str:
        # Both separator styles are rejected regardless of platform
        # (os.path.join treats either on Windows), as are relative
        # segments -- a name must stay a single path component under
        # the store root.
        # Leading dots are additionally reserved for the atomic-publish
        # staging/retire namespace (repro.store.format.write_bundle).
        if (
            not name
            or name.startswith(".")
            or "/" in name
            or "\\" in name
            or os.sep in name
        ):
            raise ValueError(f"invalid document name {name!r}")
        return os.path.join(self.root, name)

    # -- mutation (generational) ---------------------------------------------

    def manifest(self) -> CorpusManifest:
        """The corpus manifest, reconciled with the bundles on disk.

        Corpora that predate manifests get an in-memory bootstrap at
        generation 0; nothing is written until the first mutation.
        """
        return read_manifest(self.root)

    def generation(self) -> int:
        """The corpus's current generation (0 for a fresh/legacy one)."""
        return self.manifest().generation

    def log(self, limit: Optional[int] = None) -> List[dict]:
        """Generation history, oldest first (``repro store log``)."""
        history = self.manifest().history
        if limit is not None and limit > 0:
            history = history[-limit:]
        return list(history)

    @staticmethod
    def _merge_fingerprint(
        fingerprint: Optional[str], kwargs: dict
    ) -> Optional[str]:
        """Thread a content fingerprint into the bundle's source header."""
        source = dict(kwargs.get("source") or {})
        if fingerprint is not None:
            source["fingerprint"] = fingerprint
        else:
            fingerprint = source.get("fingerprint")
        if source:
            kwargs["source"] = source
        return fingerprint

    def add(
        self,
        name: str,
        document: Document,
        *,
        fingerprint: Optional[str] = None,
        **kwargs,
    ) -> str:
        """Publish a *new* document; one generation, one bundle write.

        Fails if ``name`` already exists (use :meth:`replace`, or
        :meth:`save` for upsert semantics).  ``fingerprint`` (or
        ``source={"fingerprint": ...}``) records the source content
        hash that :meth:`sync` diffs against.
        """
        path = self.path_for(name)
        if is_bundle(path):
            raise StoreError(
                f"document {name!r} already exists in {self.root!r}; "
                "use replace()"
            )
        fingerprint = self._merge_fingerprint(fingerprint, kwargs)
        manifest = self.manifest()
        manifest.record("add", name, fingerprint=fingerprint)
        save_document(document, path, **kwargs)
        manifest.set_document(name, fingerprint)
        write_manifest(self.root, manifest)
        return path

    def replace(
        self,
        name: str,
        document: Document,
        *,
        fingerprint: Optional[str] = None,
        **kwargs,
    ) -> str:
        """Atomically supersede an existing document.

        The new bundle is staged and rename-published
        (:func:`repro.store.format.write_bundle`); the old bundle is
        *retired* into the hidden garbage namespace in the same
        crash-safe window, where open readers keep it alive until
        :meth:`compact` collects it.
        """
        path = self.path_for(name)
        if not is_bundle(path):
            raise StoreError(
                f"no document {name!r} in {self.root!r} to replace; "
                f"present: {self.names()}"
            )
        fingerprint = self._merge_fingerprint(fingerprint, kwargs)
        manifest = self.manifest()
        old = manifest.documents.get(name) or {}
        retired = retired_dir_name(name, old.get("generation", 0))
        manifest.record("replace", name, fingerprint=fingerprint)
        save_document(
            document,
            path,
            retire_to=os.path.join(self.root, retired),
            **kwargs,
        )
        manifest.retire(name, retired)
        manifest.set_document(name, fingerprint)
        write_manifest(self.root, manifest)
        return path

    def remove(self, name: str) -> None:
        """Retire a document out of the corpus (bundle kept as garbage).

        The bundle directory is renamed into the hidden retired
        namespace -- still readable by anyone who opened it -- and the
        manifest drops the name; :meth:`compact` deletes it once no
        in-process reader remains.
        """
        path = self.path_for(name)
        if not is_bundle(path):
            raise StoreError(
                f"no document {name!r} in {self.root!r} to remove; "
                f"present: {self.names()}"
            )
        manifest = self.manifest()
        old = manifest.documents.get(name) or {}
        retired = retired_dir_name(name, old.get("generation", 0))
        manifest.record("remove", name)
        os.rename(path, os.path.join(self.root, retired))
        manifest.retire(name, retired)
        write_manifest(self.root, manifest)

    def compact(self) -> dict:
        """Delete retired bundles whose readers are gone.

        A retired bundle with a live in-process reader
        (:func:`live_readers`) is kept for a later pass.  Returns
        ``{"deleted": [...], "kept": [...], "generation": g}``.
        """
        manifest = self.manifest()
        deleted: List[str] = []
        kept: List[str] = []
        remaining: List[dict] = []
        for entry in manifest.retired:
            full = os.path.join(self.root, entry["bundle"])
            if not os.path.isdir(full):
                continue  # already gone; forget the entry
            if live_readers(full) > 0:
                kept.append(entry["bundle"])
                remaining.append(entry)
                continue
            shutil.rmtree(full, ignore_errors=True)
            deleted.append(entry["bundle"])
        manifest.retired = remaining
        if deleted:
            manifest.record("compact", deleted=len(deleted))
        write_manifest(self.root, manifest)
        return {
            "deleted": deleted,
            "kept": kept,
            "generation": manifest.generation,
        }

    def sync(
        self,
        source_dir: str,
        *,
        delete: bool = True,
        compact: bool = False,
        dry_run: bool = False,
        encode_attributes: bool = False,
        encode_text: bool = False,
    ) -> dict:
        """Mirror a directory of XML files with the minimal change set.

        Each ``<stem>.xml`` under ``source_dir`` names document
        ``<stem>``.  Files are diffed against the manifest by content
        fingerprint: unchanged documents cost one hash and **zero**
        bundle writes; only genuinely new/changed/vanished documents
        are added/replaced/removed (one generation each).
        ``delete=False`` keeps corpus documents with no source file;
        ``compact=True`` runs :meth:`compact` afterwards;
        ``dry_run=True`` reports the plan without touching anything.
        """
        from repro.store.manifest import bytes_fingerprint

        plan = plan_sync(self.root, source_dir, delete=delete)
        sources: Dict[str, str] = plan.pop("sources")  # type: ignore[assignment]
        before = self.generation()
        report = {
            "source_dir": os.path.abspath(source_dir),
            "added": list(plan["add"]),
            "replaced": list(plan["replace"]),
            "removed": list(plan["remove"]),
            "unchanged": list(plan["unchanged"]),
            "kept": list(plan["keep"]),
            "dry_run": dry_run,
        }
        if dry_run:
            report["generation"] = {"before": before, "after": before}
            return report
        for op, names in (("add", plan["add"]), ("replace", plan["replace"])):
            for name in names:
                with open(sources[name], "rb") as handle:
                    data = handle.read()
                kwargs = dict(
                    fingerprint=bytes_fingerprint(data),
                    source={
                        "kind": "xml",
                        "file": os.path.abspath(sources[name]),
                    },
                    encode_attributes=encode_attributes,
                    encode_text=encode_text,
                )
                text = data.decode("utf-8")
                if op == "add":
                    self.add(name, text, **kwargs)
                else:
                    self.replace(name, text, **kwargs)
        for name in plan["remove"]:
            self.remove(name)
        report["generation"] = {"before": before, "after": self.generation()}
        if compact:
            report["compacted"] = self.compact()
        return report

    def save(self, name: str, document: Document, **kwargs) -> str:
        """Compile and persist ``document`` under ``name`` (upsert).

        An existing document is :meth:`replace`\\ d (old bundle retired
        for compaction), a new one :meth:`add`\\ ed -- either way the
        manifest generation advances by one.
        """
        if name in self:
            return self.replace(name, document, **kwargs)
        return self.add(name, document, **kwargs)

    def open(self, name: str, *, mmap: bool = True) -> StoredDocument:
        """Reopen the named bundle."""
        path = self.path_for(name)
        if not is_bundle(path):
            raise StoreError(
                f"no document {name!r} in {self.root!r}; "
                f"present: {self.names()}"
            )
        return open_document(path, mmap=mmap)

    def verify(self, name: Optional[str] = None, *, deep: bool = False):
        """Integrity-check one named bundle, or the whole corpus.

        With ``name`` given, returns that bundle's verification report
        (raising :class:`~repro.store.format.StoreCorruptionError` on
        damage).  Without it, checks every bundle and returns
        ``{name: report}`` where a failed bundle's report is
        ``{"ok": False, "error": <structured detail>}`` instead of
        raising -- one rotten document must not mask the health of the
        rest of the corpus.
        """
        if name is not None:
            return verify_document(self.path_for(name), deep=deep)
        reports: Dict[str, dict] = {}
        for entry in self.names():
            try:
                reports[entry] = verify_document(
                    self.path_for(entry), deep=deep
                )
            except StoreFormatError as exc:
                detail = (
                    exc.to_dict()
                    if isinstance(exc, StoreCorruptionError)
                    else {"reason": str(exc)}
                )
                reports[entry] = {
                    "path": self.path_for(entry),
                    "ok": False,
                    "mode": "deep" if deep else "fast",
                    "error": detail,
                }
        return reports

    def names(self) -> List[str]:
        """Sorted names of the documents in this store."""
        return bundle_names(self.root)

    def headers(self) -> Dict[str, dict]:
        """Validated header of every bundle (for ``repro store ls``)."""
        return {name: read_header(self.path_for(name)) for name in self.names()}

    def __contains__(self, name: str) -> bool:
        # Routed through path_for so names the store would never
        # create -- path separators, relative segments, the hidden
        # staging/retire namespace -- answer False instead of probing
        # outside the corpus root.
        if not isinstance(name, str):
            return False
        try:
            path = self.path_for(name)
        except ValueError:
            return False
        return is_bundle(path)

    def __len__(self) -> int:
        return len(self.names())
