"""Persistent compiled-document store: parse once, reopen in O(arrays).

:func:`save_document` compiles a document down to the flat arrays every
layer of the engine runs on -- :class:`~repro.tree.binary.BinaryTree`
navigation arrays, the :class:`~repro.index.labels.LabelIndex` per-label
sorted id arrays, and the balanced-parentheses bitvector with its
rank/select directories and excess tables -- and writes them as a
versioned bundle (:mod:`repro.store.format`).

:func:`open_document` is the O(1)-startup path: every numpy-side array
is reopened as a read-only ``np.load(mmap_mode="r")`` view (zero copy,
shared across processes by the page cache), and only the plain-``int``
list mirrors that the pure-Python inner loops index are materialized --
no XML parsing, no label re-interning, no argsort, no BP directory
reconstruction.  The resulting :class:`StoredDocument` plugs into
:class:`~repro.engine.api.Engine` / `Workspace.add` directly, pickles as
its path (cheap process-pool payloads), and rebuilds its
:class:`~repro.index.succinct.SuccinctTree` lazily from the mapped BP
state.
"""

from __future__ import annotations

import datetime
import os
from typing import Dict, List, Optional, Union

import numpy as np

from repro.index.bitvector import BitVector
from repro.index.jumping import TreeIndex
from repro.index.labels import LabelIndex
from repro.index.succinct import SuccinctTree
from repro.store.format import (
    FORMAT_VERSION,
    StoreCorruptionError,
    StoreError,
    StoreFormatError,
    bundle_names,
    is_bundle,
    load_array,
    read_header,
    verify_bundle,
    write_bundle,
)
from repro.tree.binary import BinaryTree
from repro.tree.document import XMLDocument

Document = Union[str, XMLDocument, BinaryTree, TreeIndex]


class StoredDocument:
    """A compiled document reopened from a bundle.

    Exposes the same surface every engine entry point consumes: ``index``
    (a ready :class:`TreeIndex`), ``tree``, and a lazy :meth:`succinct`
    view.  Pickles as its bundle path, so shipping one to a process-pool
    worker costs a few bytes instead of the whole array payload.
    """

    def __init__(self, path: str, header: dict, index: TreeIndex) -> None:
        self.path = path
        self.header = header
        self.index = index
        self.closed = False
        self._succinct: Optional[SuccinctTree] = None
        # Memory-mapped arrays this document opened; close() releases
        # their OS mappings (a long-lived daemon unmounting a corpus
        # must not leak map handles until garbage collection).
        self._mapped: List[np.ndarray] = []

    @property
    def tree(self) -> BinaryTree:
        return self.index.tree

    @property
    def n(self) -> int:
        return self.index.tree.n

    @property
    def labels(self) -> List[str]:
        return self.index.tree.labels

    def succinct(self) -> SuccinctTree:
        """The document's BP tree, rehydrated from the mapped state."""
        if self.closed:
            raise StoreError(f"document {self.path!r} is closed")
        if self._succinct is None:
            header = self.header
            mmap = header.get("_mmap", True)
            manifest = header["arrays"]

            def load(name: str) -> np.ndarray:
                arr = load_array(self.path, name, manifest, mmap)
                if mmap:
                    self._mapped.append(arr)
                return arr

            bv = BitVector.from_state(
                load("bp_packed"),
                header["bp_bits"],
                load("bp_word_prefix"),
                load("bp_zero_word_prefix"),
            )
            tree = self.index.tree
            self._succinct = SuccinctTree.from_state(
                bv,
                tree.label_of,
                tree.labels,
                load("bp_block_total"),
                load("bp_block_min"),
                load("bp_block_max"),
                load("bp_block_start_excess"),
            )
        return self._succinct

    def close(self) -> None:
        """Release the document's memory-mapped array handles (idempotent).

        Drops this object's own references (index, succinct view) and
        then closes the underlying ``mmap`` objects.  A mapping whose
        pages are still exported by a live ndarray elsewhere (an engine
        still holding the index, a cached slice) cannot be closed by the
        OS yet -- those are retried after a garbage-collection pass and,
        if still pinned, left for the final reference drop to unmap.
        After ``close()`` the document must not be used.
        """
        if self.closed:
            return
        self.closed = True
        mapped, self._mapped = self._mapped, []
        self.index = None
        self._succinct = None
        leftover = []
        while mapped:
            arr = mapped.pop()
            mm = getattr(arr, "_mmap", None)
            del arr  # the ndarray pins an export on its mmap
            if mm is not None and not getattr(mm, "closed", True):
                leftover.append(mm)
        for retry in (False, True):
            if not leftover:
                break
            if retry:
                import gc

                gc.collect()
            still = []
            for mm in leftover:
                try:
                    mm.close()
                except (BufferError, ValueError):
                    still.append(mm)
            leftover = still

    def __enter__(self) -> "StoredDocument":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __reduce__(self):
        # Reopening by path keeps the pickle a few bytes; the original
        # mmap choice is preserved.  (Path-based pickling requires the
        # bundle to still exist wherever the unpickle happens.)
        return (_reopen, (self.path, self.header.get("_mmap", True)))

    def __repr__(self) -> str:
        return f"StoredDocument({self.path!r}, n={self.n})"


def _reopen(path: str, mmap: bool) -> "StoredDocument":
    return open_document(path, mmap=mmap)


def resolve_document(document, encode_attributes: bool, encode_text: bool):
    """Resolve any accepted document kind to ``(TreeIndex, parens-or-None)``.

    The single dispatch shared by :class:`~repro.engine.api.Engine` and
    :func:`save_document`, so both accept exactly the same inputs: raw
    XML text, an event source (``.events(sink)``), an
    :class:`XMLDocument`, a :class:`BinaryTree`, a :class:`TreeIndex`,
    or a :class:`StoredDocument` (anything carrying a ready ``.index``).
    String and event input stream through a
    :class:`~repro.tree.builder.TreeBuilder`; the second element of the
    pair is then the accumulated BP parenthesis array (``None`` for the
    other kinds).  Encode flags are validated here: already-encoded
    trees/indexes reject them instead of silently ignoring them.
    """
    from repro.tree.builder import LateTextChild, TreeBuilder

    stored_index = getattr(document, "index", None)
    if isinstance(stored_index, TreeIndex) and not isinstance(
        document, (str, XMLDocument, BinaryTree, TreeIndex)
    ):
        document = stored_index
    if isinstance(document, (TreeIndex, BinaryTree)):
        if encode_attributes or encode_text:
            raise ValueError(
                "encode_attributes/encode_text apply while building the "
                "binary tree; the given "
                f"{type(document).__name__} is already encoded"
            )
        if isinstance(document, BinaryTree):
            return TreeIndex(document), None
        return document, None
    if isinstance(document, XMLDocument):
        return (
            TreeIndex(
                BinaryTree.from_document(
                    document,
                    encode_attributes=encode_attributes,
                    encode_text=encode_text,
                )
            ),
            None,
        )
    if isinstance(document, str) or callable(getattr(document, "events", None)):
        builder = TreeBuilder(
            encode_attributes=encode_attributes, encode_text=encode_text
        )
        try:
            if isinstance(document, str):
                from repro.tree.parser import parse_events

                parse_events(document, builder)
            else:
                document.events(builder)
        except LateTextChild:
            from repro.tree.parser import parse_xml

            if not isinstance(document, str):
                raise  # an event source cannot be replayed as XML text
            return resolve_document(
                parse_xml(document), encode_attributes, encode_text
            )
        return TreeIndex(builder.finish()), builder.parens_array()
    raise TypeError(
        f"cannot build a document index from {type(document).__name__}"
    )


def save_document(
    document: Document,
    path: str,
    *,
    encode_attributes: bool = False,
    encode_text: bool = False,
    source: Optional[dict] = None,
) -> str:
    """Compile ``document`` and persist it as a bundle at ``path``.

    ``document`` may be raw XML text, an event source (anything with an
    ``events(sink)`` method, e.g. an
    :class:`~repro.xmark.generator.XMarkGenerator`), an
    :class:`XMLDocument`, a :class:`BinaryTree`, or a prebuilt
    :class:`TreeIndex` (whose label index is reused as-is).  The encode
    flags apply when the binary tree is built here (string / event /
    XMLDocument input), exactly as in :class:`~repro.engine.api.Engine`;
    an already-encoded tree or index rejects them rather than silently
    ignoring them.  String and event input stream straight through a
    :class:`~repro.tree.builder.TreeBuilder`, whose accumulated BP
    parentheses are reused for the succinct state (no re-walk).
    """
    index, parens = resolve_document(document, encode_attributes, encode_text)
    tree = index.tree
    if not isinstance(tree, BinaryTree):
        raise TypeError("store bundles require a BinaryTree-backed index")
    if parens is not None:
        succinct = SuccinctTree(parens, tree.label_of, tree.labels)
    else:
        succinct = SuccinctTree.from_binary(tree)
    bv_state = succinct.bv.state()
    bp_state = succinct.state()
    label_ids, label_bounds = index.labels.state()
    arrays = {
        "label_of": np.asarray(tree.label_of, dtype=np.int64),
        "left": np.asarray(tree.left, dtype=np.int64),
        "right": np.asarray(tree.right, dtype=np.int64),
        "parent": np.asarray(tree.parent, dtype=np.int64),
        "bparent": np.asarray(tree.bparent, dtype=np.int64),
        "xml_end": np.asarray(tree.xml_end, dtype=np.int64),
        "label_ids": label_ids,
        "label_bounds": label_bounds,
        "bp_packed": bv_state["packed"],
        "bp_word_prefix": bv_state["word_prefix"],
        "bp_zero_word_prefix": bv_state["zero_word_prefix"],
        "bp_block_total": bp_state["block_total"],
        "bp_block_min": bp_state["block_min"],
        "bp_block_max": bp_state["block_max"],
        "bp_block_start_excess": bp_state["block_start_excess"],
    }
    header = {
        "n": tree.n,
        "labels": list(tree.labels),
        "bp_bits": succinct.bv.n,
        "encoded_attributes": any(l.startswith("@") for l in tree.labels),
        "encoded_text": "#text" in tree.labels,
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "source": source or {},
        # Document statistics the cost-based planner reads on reopen --
        # computed once at build time so a memory-mapped open never pays
        # an O(n) sweep to price a query (repro.engine.planner).
        "stats": {"height": tree.height()},
    }
    write_bundle(path, header, arrays)
    return path


def verify_document(path: str, *, deep: bool = False) -> dict:
    """Integrity-check one bundle; see :func:`repro.store.format.verify_bundle`.

    ``fast`` (default) checks header/manifest/file sizes/``.npy``
    metadata without reading array data; ``deep=True`` additionally
    recomputes every file's CRC32 against the manifest digests.  Raises
    :class:`~repro.store.format.StoreCorruptionError` on damage,
    returns the JSON-ready verification report otherwise.
    """
    return verify_bundle(path, deep=deep)


def open_document(path: str, *, mmap: bool = True) -> StoredDocument:
    """Reopen a bundle with zero re-parsing (see the module docstring).

    ``mmap=False`` reads the arrays into memory instead of mapping them
    (useful when the bundle lives on storage slated for deletion).
    """
    header = read_header(path)
    manifest = header["arrays"]
    mapped: List[np.ndarray] = []

    def load(name: str) -> np.ndarray:
        arr = load_array(path, name, manifest, mmap)
        if mmap:
            mapped.append(arr)
        return arr

    labels = list(header["labels"])
    label_of_arr = load("label_of")
    left_arr = load("left")
    right_arr = load("right")
    parent_arr = load("parent")
    bparent_arr = load("bparent")
    xml_end_arr = load("xml_end")
    n = int(header["n"])
    if label_of_arr.shape != (n,):
        raise StoreFormatError(
            f"{path!r}: header n={n} but label_of has shape "
            f"{label_of_arr.shape}"
        )
    # The scalar inner loops of the evaluator index these per node; the
    # plain-list mirrors keep every id a Python int (and keep list
    # indexing speed), while the numpy views below stay zero-copy.
    tree = BinaryTree.from_arrays(
        labels,
        label_of_arr.tolist(),
        left_arr.tolist(),
        right_arr.tolist(),
        parent_arr.tolist(),
        xml_end_arr.tolist(),
        bparent=bparent_arr.tolist(),
    )
    label_index = LabelIndex.from_state(
        tree, load("label_ids"), load("label_bounds")
    )
    index = TreeIndex(tree, labels=label_index)
    # Seed the vectorized-path caches with the mapped arrays directly --
    # the hybrid/fused strategies then slice the store file itself.
    index._xml_end_arr = xml_end_arr
    index._parent_arr = parent_arr
    index._label_of_arr = label_of_arr
    # Build-time document statistics (absent from pre-planner bundles;
    # the planner then falls back to a one-off computed sweep).
    stats = header.get("stats")
    if isinstance(stats, dict):
        index.doc_stats = stats
    if mmap:
        # Advertise the bundle for cheap process-pool payloads (workers
        # reopen the mapped file).  An mmap=False open is for bundles
        # whose storage may go away, so its payloads ship the arrays
        # themselves instead of a path that may no longer resolve.
        index.store_path = os.path.abspath(path)
    header["_mmap"] = mmap
    document = StoredDocument(os.path.abspath(path), header, index)
    document._mapped.extend(mapped)
    return document


class DocumentStore:
    """A corpus directory of named bundles (one subdirectory per document).

    >>> import tempfile
    >>> root = tempfile.mkdtemp()
    >>> store = DocumentStore(root)
    >>> _ = store.save("tiny", "<r><a><b/></a></r>")
    >>> store.names()
    ['tiny']
    >>> store.open("tiny").n
    4
    """

    def __init__(self, root: str) -> None:
        self.root = root

    def path_for(self, name: str) -> str:
        # Both separator styles are rejected regardless of platform
        # (os.path.join treats either on Windows), as are relative
        # segments -- a name must stay a single path component under
        # the store root.
        # Leading dots are additionally reserved for the atomic-publish
        # staging/retire namespace (repro.store.format.write_bundle).
        if (
            not name
            or name.startswith(".")
            or "/" in name
            or "\\" in name
            or os.sep in name
        ):
            raise ValueError(f"invalid document name {name!r}")
        return os.path.join(self.root, name)

    def save(self, name: str, document: Document, **kwargs) -> str:
        """Compile and persist ``document`` under ``name``."""
        return save_document(document, self.path_for(name), **kwargs)

    def open(self, name: str, *, mmap: bool = True) -> StoredDocument:
        """Reopen the named bundle."""
        path = self.path_for(name)
        if not is_bundle(path):
            raise StoreError(
                f"no document {name!r} in {self.root!r}; "
                f"present: {self.names()}"
            )
        return open_document(path, mmap=mmap)

    def verify(self, name: Optional[str] = None, *, deep: bool = False):
        """Integrity-check one named bundle, or the whole corpus.

        With ``name`` given, returns that bundle's verification report
        (raising :class:`~repro.store.format.StoreCorruptionError` on
        damage).  Without it, checks every bundle and returns
        ``{name: report}`` where a failed bundle's report is
        ``{"ok": False, "error": <structured detail>}`` instead of
        raising -- one rotten document must not mask the health of the
        rest of the corpus.
        """
        if name is not None:
            return verify_document(self.path_for(name), deep=deep)
        reports: Dict[str, dict] = {}
        for entry in self.names():
            try:
                reports[entry] = verify_document(
                    self.path_for(entry), deep=deep
                )
            except StoreFormatError as exc:
                detail = (
                    exc.to_dict()
                    if isinstance(exc, StoreCorruptionError)
                    else {"reason": str(exc)}
                )
                reports[entry] = {
                    "path": self.path_for(entry),
                    "ok": False,
                    "mode": "deep" if deep else "fast",
                    "error": detail,
                }
        return reports

    def names(self) -> List[str]:
        """Sorted names of the documents in this store."""
        return bundle_names(self.root)

    def headers(self) -> Dict[str, dict]:
        """Validated header of every bundle (for ``repro store ls``)."""
        return {name: read_header(self.path_for(name)) for name in self.names()}

    def __contains__(self, name: str) -> bool:
        return is_bundle(os.path.join(self.root, name))

    def __len__(self) -> int:
        return len(self.names())
