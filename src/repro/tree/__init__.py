"""XML tree substrate: document model, parser, binary encoding.

The paper evaluates automata over binary trees obtained from XML documents
via the first-child/next-sibling encoding (Section 2).  This package
provides:

- :class:`~repro.tree.document.XMLNode` / :class:`~repro.tree.document.XMLDocument`
  -- an ordered labelled tree with document-order numbering,
- :func:`~repro.tree.parser.parse_xml` / :func:`~repro.tree.parser.parse_events`
  -- a small dependency-free, event-driven XML parser,
- :class:`~repro.tree.builder.TreeBuilder` -- the streaming event sink
  that appends parser events directly into binary-tree arrays,
- :class:`~repro.tree.binary.BinaryTree` -- the array-backed fcns encoding
  that all automata run over.
"""

from repro.tree.document import XMLDocument, XMLNode
from repro.tree.parser import XMLSyntaxError, parse_events, parse_xml
from repro.tree.builder import TreeBuilder, XMLNodeBuilder, build_tree_from_xml
from repro.tree.binary import BinaryTree, NIL
from repro.tree.serialize import to_xml

__all__ = [
    "XMLDocument",
    "XMLNode",
    "XMLSyntaxError",
    "parse_xml",
    "parse_events",
    "TreeBuilder",
    "XMLNodeBuilder",
    "build_tree_from_xml",
    "BinaryTree",
    "NIL",
    "to_xml",
]
