"""XML tree substrate: document model, parser, binary encoding.

The paper evaluates automata over binary trees obtained from XML documents
via the first-child/next-sibling encoding (Section 2).  This package
provides:

- :class:`~repro.tree.document.XMLNode` / :class:`~repro.tree.document.XMLDocument`
  -- an ordered labelled tree with document-order numbering,
- :func:`~repro.tree.parser.parse_xml` -- a small dependency-free XML parser,
- :class:`~repro.tree.binary.BinaryTree` -- the array-backed fcns encoding
  that all automata run over.
"""

from repro.tree.document import XMLDocument, XMLNode
from repro.tree.parser import XMLSyntaxError, parse_xml
from repro.tree.binary import BinaryTree, NIL
from repro.tree.serialize import to_xml

__all__ = [
    "XMLDocument",
    "XMLNode",
    "XMLSyntaxError",
    "parse_xml",
    "BinaryTree",
    "NIL",
    "to_xml",
]
