"""First-child/next-sibling binary encoding of XML trees (Section 2).

The automata of the paper run over binary trees: the left child of a node
is its first child in the XML tree, the right child is its next sibling.
``#`` leaves are virtual here -- a missing child is represented by the
sentinel :data:`NIL` and every run function treats it as the ``#`` leaf.

Node identifiers are preorder numbers of the binary tree, which coincide
with XML document order (the fcns preorder visits a node, then its first
child's subtree, then its next sibling's subtree -- exactly document
order).  This is what makes the paper's "result sets as lists with O(1)
concatenation" technique sound: results are produced sorted and
duplicate-free.

Key id-range facts used throughout the library:

- the *XML* subtree of node ``v`` is the contiguous range
  ``[v, xml_end[v])``;
- the *binary* subtree of ``v`` (its XML subtree plus all following
  siblings and their subtrees) is ``[v, bend(v))`` where ``bend(v)`` is
  ``xml_end[parent[v]]`` (or ``n`` at the root chain).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

from repro.tree.document import XMLDocument, XMLNode

NIL = -1
"""Sentinel node id standing for the virtual ``#`` leaf."""

TreeSpec = Union[str, tuple]
"""Lightweight literal tree syntax: ``"a"`` or ``("a", child, child...)``."""


class BinaryTree:
    """Array-backed fcns-encoded document tree.

    Construct via :meth:`from_document`, :meth:`from_spec` or
    :meth:`from_xml`.  All per-node data lives in parallel Python lists
    indexed by node id; this is the pointer-structure representation the
    paper contrasts with succinct trees (see
    :mod:`repro.index.succinct` for the succinct counterpart).
    """

    __slots__ = (
        "labels",
        "label_ids",
        "label_of",
        "left",
        "right",
        "parent",
        "bparent",
        "xml_end",
        "n",
    )

    def __init__(
        self,
        labels: list[str],
        label_of: list[int],
        left: list[int],
        right: list[int],
        parent: list[int],
        xml_end: list[int],
        bparent: Optional[list[int]] = None,
    ) -> None:
        self.labels = labels
        self.label_ids = {name: i for i, name in enumerate(labels)}
        self.label_of = label_of
        self.left = left
        self.right = right
        self.parent = parent
        self.xml_end = xml_end
        self.n = len(label_of)
        # A streaming builder (or a reopened store bundle) supplies the
        # binary-parent array it already computed; otherwise derive it.
        self.bparent = (
            bparent if bparent is not None else self._compute_binary_parents()
        )

    # -- construction ------------------------------------------------------

    @classmethod
    def from_document(
        cls,
        doc: XMLDocument,
        encode_attributes: bool = False,
        encode_text: bool = False,
    ) -> "BinaryTree":
        """Encode an :class:`XMLDocument`.

        By default only element nodes are encoded, as in the paper
        (Section 2).  The "straightforward encoding" of [1] the paper
        refers to is available as options:

        - ``encode_attributes``: each attribute becomes a leading child
          element labelled ``@name`` (enables the attribute axis);
        - ``encode_text``: non-whitespace character data becomes a
          ``#text`` child element (enables the ``text()`` node test).
        """
        labels: list[str] = []
        label_ids: dict[str, int] = {}
        label_of: list[int] = []
        left: list[int] = []
        right: list[int] = []
        parent: list[int] = []
        xml_end: list[int] = []

        def intern(name: str) -> int:
            lab = label_ids.get(name)
            if lab is None:
                lab = label_ids[name] = len(labels)
                labels.append(name)
            return lab

        def emit(name: str, par: int) -> int:
            vid = len(label_of)
            label_of.append(intern(name))
            left.append(NIL)
            right.append(NIL)
            parent.append(par)
            xml_end.append(vid + 1)
            return vid

        # Iterative preorder assigning ids in document order.
        stack: list[tuple[XMLNode, int]] = [(doc.root, NIL)]
        while stack:
            node, par = stack.pop()
            vid = emit(node.label, par)
            if encode_attributes:
                for name in node.attributes:
                    emit("@" + name, vid)
            if encode_text and node.text.strip():
                emit("#text", vid)
            stack.extend((c, vid) for c in reversed(node.children))

        n = len(label_of)
        # Second pass: fold subtree ends into parents.  Children have
        # larger ids than their parent, so a backwards sweep sees every
        # node after all of its descendants.
        for v in range(n - 1, 0, -1):
            p = parent[v]
            if xml_end[v] > xml_end[p]:
                xml_end[p] = xml_end[v]
        # left = first child: the node v+1 iff parent[v+1] == v.
        for v in range(n - 1):
            if parent[v + 1] == v:
                left[v] = v + 1
        # right = next sibling: node at xml_end[v] iff same parent.
        for v in range(n):
            e = xml_end[v]
            if e < n and parent[e] == parent[v]:
                right[v] = e
        return cls(labels, label_of, left, right, parent, xml_end)

    @classmethod
    def from_spec(cls, spec: TreeSpec) -> "BinaryTree":
        """Build from the literal tuple syntax.

        >>> t = BinaryTree.from_spec(("a", "b", ("c", "d")))
        >>> t.label(0), t.label(1), t.label(2), t.label(3)
        ('a', 'b', 'c', 'd')
        """
        return cls.from_document(XMLDocument(_spec_to_node(spec)))

    @classmethod
    def from_xml(
        cls,
        text: str,
        encode_attributes: bool = False,
        encode_text: bool = False,
    ) -> "BinaryTree":
        """Parse an XML string and encode it -- streaming.

        Scanner events feed a :class:`repro.tree.builder.TreeBuilder`
        that appends straight into this class's arrays; no intermediate
        :class:`XMLNode` tree is materialized.
        """
        from repro.tree.builder import build_tree_from_xml

        return build_tree_from_xml(
            text,
            encode_attributes=encode_attributes,
            encode_text=encode_text,
        )

    @classmethod
    def from_arrays(
        cls,
        labels: list[str],
        label_of: list[int],
        left: list[int],
        right: list[int],
        parent: list[int],
        xml_end: list[int],
        bparent: Optional[list[int]] = None,
    ) -> "BinaryTree":
        """Rehydrate from precompiled arrays (a reopened store bundle)."""
        return cls(labels, label_of, left, right, parent, xml_end, bparent)

    def _compute_binary_parents(self) -> list[int]:
        """Binary parent: the node whose left *or* right child this is."""
        bparent = [NIL] * self.n
        for v in range(self.n):
            lc = self.left[v]
            if lc != NIL:
                bparent[lc] = v
            rc = self.right[v]
            if rc != NIL:
                bparent[rc] = v
        return bparent

    # -- basic accessors ----------------------------------------------------

    def label(self, v: int) -> str:
        """Element name of node ``v``."""
        return self.labels[self.label_of[v]]

    def label_id(self, name: str) -> Optional[int]:
        """Intern id of an element name, or None if absent from the tree."""
        return self.label_ids.get(name)

    def first_child(self, v: int) -> int:
        """XML first child == binary left child (NIL if none)."""
        return self.left[v]

    def next_sibling(self, v: int) -> int:
        """XML next sibling == binary right child (NIL if none)."""
        return self.right[v]

    def children(self, v: int) -> Iterator[int]:
        """XML children of ``v`` in order."""
        c = self.left[v]
        while c != NIL:
            yield c
            c = self.right[c]

    def bend(self, v: int) -> int:
        """End (exclusive) of the *binary* subtree id range of ``v``."""
        p = self.parent[v]
        return self.n if p == NIL else self.xml_end[p]

    def is_binary_leaf(self, v: int) -> bool:
        """True when both binary children are the virtual ``#`` leaf."""
        return self.left[v] == NIL and self.right[v] == NIL

    def root(self) -> int:
        """Id of the document root (always 0)."""
        return 0

    # -- derived traversals --------------------------------------------------

    def xml_descendants(self, v: int) -> range:
        """Ids of strict XML descendants of ``v`` (contiguous range)."""
        return range(v + 1, self.xml_end[v])

    def ancestors(self, v: int) -> Iterator[int]:
        """Strict XML ancestors of ``v``, nearest first."""
        p = self.parent[v]
        while p != NIL:
            yield p
            p = self.parent[p]

    def depth(self, v: int) -> int:
        """XML depth of ``v`` (root has depth 0)."""
        d = 0
        p = self.parent[v]
        while p != NIL:
            d += 1
            p = self.parent[p]
        return d

    def height(self) -> int:
        """Maximum XML depth over all nodes."""
        depth = [0] * self.n
        best = 0
        for v in range(1, self.n):
            d = depth[self.parent[v]] + 1
            depth[v] = d
            if d > best:
                best = d
        return best

    def label_histogram(self) -> dict[str, int]:
        """Element-name histogram (used by the hybrid engine's planner)."""
        counts = [0] * len(self.labels)
        for lab in self.label_of:
            counts[lab] += 1
        return {name: counts[i] for i, name in enumerate(self.labels)}

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return f"BinaryTree(n={self.n}, labels={len(self.labels)})"


def _spec_to_node(spec: TreeSpec) -> XMLNode:
    if isinstance(spec, str):
        return XMLNode(spec)
    label, *children = spec
    node = XMLNode(label)
    for child in children:
        node.append(_spec_to_node(child))
    return node
