"""Streaming array-native document builder (the ingestion hot path).

:class:`TreeBuilder` is an event handler (the
:class:`~repro.tree.parser.EventHandler` protocol) that appends directly
into the flat parallel arrays a :class:`~repro.tree.binary.BinaryTree`
is made of -- element labels interned on the fly, ``parent`` /
first-child (``left``) / next-sibling (``right``) wired per event,
``xml_end`` folded at close time, and the balanced-parentheses bit of
every open/close accumulated for the succinct index.  No intermediate
:class:`~repro.tree.document.XMLNode` graph is ever materialized, which
removes the dominant memory and startup cost of the legacy
parse-then-convert pipeline (one Python object + dict + list per
element).

The attribute/text "straightforward encoding" of the paper is supported
streaming: ``@name`` children are emitted as soon as a start tag is
seen, and a ``#text`` child is emitted at the first non-whitespace
character data of an element.  One document shape cannot be encoded
online: when an element's leading character data is all whitespace but
*later* character data (after an element child) is not, the ``#text``
child would have to be inserted before already-numbered siblings.  The
builder then raises :class:`LateTextChild` and
:func:`build_tree_from_xml` falls back to the materialized
:class:`XMLNode` path for that (rare, mixed-content) document, keeping
the two pipelines byte-identical.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tree.binary import NIL, BinaryTree
from repro.tree.document import XMLDocument, XMLNode


class LateTextChild(Exception):
    """Streaming ``#text`` encoding impossible: non-whitespace text
    arrived after an element child while the element's leading text was
    whitespace-only (see the module docstring)."""


class TreeBuilder:
    """SAX-style event sink producing :class:`BinaryTree` arrays directly.

    >>> b = TreeBuilder()
    >>> b.start_element("a", None); b.start_element("b", None)
    >>> b.end_element("b"); b.end_element("a")
    >>> t = b.finish()
    >>> t.label(0), t.label(1), t.n
    ('a', 'b', 2)
    """

    def __init__(
        self,
        encode_attributes: bool = False,
        encode_text: bool = False,
    ) -> None:
        self.encode_attributes = encode_attributes
        self.encode_text = encode_text
        self.labels: list[str] = []
        self._label_ids: dict[str, int] = {}
        self.label_of: list[int] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.parent: list[int] = []
        self.bparent: list[int] = []
        self.xml_end: list[int] = []
        self._parens = bytearray()
        # Open-element frames: [node id, last child id, #text emitted?,
        # element child seen?].  The text flags are only consulted when
        # encode_text is on.
        self._frames: list[list] = []
        self._root: Optional[int] = None
        self._done = False

    # -- event protocol ----------------------------------------------------

    def start_element(self, name: str, attrs: Optional[dict]) -> None:
        if self._done:
            raise ValueError("builder already finished")
        if not self._frames and self._root is not None:
            raise ValueError("document has more than one root element")
        vid = self._emit(name)
        if self._root is None:
            self._root = vid
        if self._frames:
            self._frames[-1][3] = True
        self._frames.append([vid, NIL, False, False])
        if self.encode_attributes and attrs:
            for attr in attrs:
                self._emit_leaf("@" + attr)

    def characters(self, data: str) -> None:
        if not self.encode_text or not self._frames:
            return
        frame = self._frames[-1]
        if frame[2] or not data.strip():
            return
        if frame[3]:
            raise LateTextChild(
                "non-whitespace text after an element child"
            )
        self._emit_leaf("#text")
        frame[2] = True

    def end_element(self, name: Optional[str] = None) -> None:
        if not self._frames:
            raise ValueError("end_element without a matching start_element")
        vid = self._frames.pop()[0]
        self.xml_end[vid] = len(self.label_of)
        self._parens.append(0)

    # -- array plumbing ----------------------------------------------------

    def _intern(self, name: str) -> int:
        lab = self._label_ids.get(name)
        if lab is None:
            lab = self._label_ids[name] = len(self.labels)
            self.labels.append(name)
        return lab

    def _emit(self, name: str) -> int:
        """Append one node: wire parent/first-child/next-sibling links."""
        vid = len(self.label_of)
        self.label_of.append(self._intern(name))
        self.left.append(NIL)
        self.right.append(NIL)
        self.xml_end.append(vid + 1)
        if self._frames:
            frame = self._frames[-1]
            par, last = frame[0], frame[1]
            self.parent.append(par)
            if last == NIL:
                self.left[par] = vid
                self.bparent.append(par)
            else:
                self.right[last] = vid
                self.bparent.append(last)
            frame[1] = vid
        else:
            self.parent.append(NIL)
            self.bparent.append(NIL)
        self._parens.append(1)
        return vid

    def _emit_leaf(self, name: str) -> None:
        """An ``@attr`` / ``#text`` encoded child: open and close at once."""
        self._emit(name)
        self._parens.append(0)

    # -- outputs -----------------------------------------------------------

    def finish(self) -> BinaryTree:
        """Seal the builder and return the array-backed tree."""
        if self._frames:
            raise ValueError(
                f"{len(self._frames)} element(s) still open at finish()"
            )
        if self._root is None:
            raise ValueError("no document element")
        self._done = True
        return BinaryTree(
            self.labels,
            self.label_of,
            self.left,
            self.right,
            self.parent,
            self.xml_end,
            bparent=self.bparent,
        )

    def parens_array(self) -> np.ndarray:
        """The balanced-parentheses sequence as a ``uint8`` 0/1 array.

        Accumulated during streaming (one byte per parenthesis), packable
        with ``np.packbits`` and directly consumable by
        :class:`repro.index.bitvector.BitVector` /
        :class:`repro.index.succinct.SuccinctTree`.
        """
        return np.frombuffer(bytes(self._parens), dtype=np.uint8)


def build_tree_from_xml(
    text: str,
    *,
    encode_attributes: bool = False,
    encode_text: bool = False,
) -> BinaryTree:
    """Parse an XML string straight into a :class:`BinaryTree`.

    This is the streaming pipeline: scanner events feed a
    :class:`TreeBuilder`, so no per-element ``XMLNode`` is allocated.
    The only exception is the :class:`LateTextChild` mixed-content shape
    (see the module docstring), which falls back to the materialized
    path to keep encodings byte-identical.
    """
    from repro.tree.parser import parse_events, parse_xml

    builder = TreeBuilder(
        encode_attributes=encode_attributes, encode_text=encode_text
    )
    try:
        parse_events(text, builder)
    except LateTextChild:
        return BinaryTree.from_document(
            parse_xml(text),
            encode_attributes=encode_attributes,
            encode_text=encode_text,
        )
    return builder.finish()


class XMLNodeBuilder:
    """Event sink materializing an :class:`XMLNode` tree.

    The optional pointer view of an event stream: :func:`parse_xml` is
    this sink behind the scanner, the XMark generator's
    ``--legacy-tree`` escape hatch replays its events here, and any
    code wanting a serializable document object instead of arrays can
    do the same.  Character data is gathered per open element and
    joined once at its close.
    """

    __slots__ = ("root", "_stack", "_text")

    def __init__(self) -> None:
        self.root: Optional[XMLNode] = None
        self._stack: list[XMLNode] = []
        self._text: list[list[str]] = []

    def start_element(self, name: str, attrs: Optional[dict]) -> None:
        node = XMLNode(name, attributes=dict(attrs) if attrs else None)
        if self._stack:
            self._stack[-1].append(node)
        elif self.root is None:
            self.root = node
        else:
            raise ValueError("document has more than one root element")
        self._stack.append(node)
        self._text.append([])

    def characters(self, data: str) -> None:
        if self._text:
            self._text[-1].append(data)

    def end_element(self, name: Optional[str] = None) -> None:
        node = self._stack.pop()
        parts = self._text.pop()
        if parts:
            node.text = "".join(parts)

    def document(self) -> XMLDocument:
        if self._stack or self.root is None:
            raise ValueError("event stream incomplete")
        return XMLDocument(self.root)
