"""Ordered labelled XML trees (the unranked document model).

The paper's automata run over *binary* trees; this module is the unranked
XML side.  :class:`XMLNode` is a plain pointer structure used for document
construction (parsing, generation); it is converted once into the
array-backed :class:`repro.tree.binary.BinaryTree` for evaluation.

Text content and attributes are kept (the parser produces them) but, as in
the paper (Section 2), the automata only see element labels.  Attributes
can optionally be encoded as specially-labelled child elements
(``@name``), following the "straightforward encoding" of [1] the paper
refers to.
"""

from __future__ import annotations

from typing import Iterator, Optional


class XMLNode:
    """One element node of an XML document tree.

    Attributes
    ----------
    label:
        The element tag name.
    children:
        Ordered list of child elements.
    attributes:
        Mapping of attribute name to string value.
    text:
        Concatenated character data directly under this element.
    parent:
        Back pointer, maintained by :meth:`append`.
    """

    __slots__ = ("label", "children", "attributes", "text", "parent")

    def __init__(
        self,
        label: str,
        attributes: Optional[dict[str, str]] = None,
        text: str = "",
    ) -> None:
        self.label = label
        self.children: list[XMLNode] = []
        self.attributes: dict[str, str] = attributes or {}
        self.text = text
        self.parent: Optional[XMLNode] = None

    def append(self, child: "XMLNode") -> "XMLNode":
        """Attach ``child`` as the last child and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def new_child(self, label: str, **attrs: str) -> "XMLNode":
        """Create, attach and return a new child element."""
        return self.append(XMLNode(label, attributes=dict(attrs) or None))

    # -- traversal ---------------------------------------------------------

    def preorder(self) -> Iterator["XMLNode"]:
        """Yield this node and all descendants in document order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def descendants(self) -> Iterator["XMLNode"]:
        """Yield strict descendants in document order."""
        it = self.preorder()
        next(it)
        return it

    def size(self) -> int:
        """Number of element nodes in the subtree rooted here."""
        return sum(1 for _ in self.preorder())

    def depth(self) -> int:
        """Height of the subtree rooted here (a leaf has depth 1)."""
        stack: list[tuple[XMLNode, int]] = [(self, 1)]
        best = 1
        while stack:
            node, d = stack.pop()
            if d > best:
                best = d
            stack.extend((c, d + 1) for c in node.children)
        return best

    def find_all(self, label: str) -> list["XMLNode"]:
        """All nodes in this subtree (inclusive) with the given label."""
        return [n for n in self.preorder() if n.label == label]

    def __repr__(self) -> str:
        return f"XMLNode({self.label!r}, {len(self.children)} children)"


class XMLDocument:
    """A complete XML document: a single root element plus metadata."""

    __slots__ = ("root",)

    def __init__(self, root: XMLNode) -> None:
        self.root = root

    def preorder(self) -> Iterator[XMLNode]:
        """All element nodes in document order."""
        return self.root.preorder()

    def size(self) -> int:
        """Total number of element nodes."""
        return self.root.size()

    def label_counts(self) -> dict[str, int]:
        """Histogram of element labels over the whole document."""
        counts: dict[str, int] = {}
        for node in self.preorder():
            counts[node.label] = counts.get(node.label, 0) + 1
        return counts

    def __repr__(self) -> str:
        return f"XMLDocument(root={self.root.label!r}, size={self.size()})"
