"""A small, dependency-free, event-driven XML parser.

Supports the subset of XML needed for the paper's workloads: elements,
attributes, character data, comments, CDATA, processing instructions, an
optional XML declaration and DOCTYPE (both skipped), and the five standard
entities.  Namespaces are treated textually (prefix kept in the label).

The scanner is an *event emitter*: :func:`parse_events` walks the input
once and calls ``start_element`` / ``characters`` / ``end_element`` on a
handler object (the :class:`EventHandler` protocol).  Everything else is a
handler:

- :func:`parse_xml` materializes an :class:`XMLNode` tree (the legacy
  pointer view, still used by tests and serialization);
- :class:`repro.tree.builder.TreeBuilder` appends directly into the flat
  arrays of :class:`repro.tree.binary.BinaryTree` -- the streaming
  ingestion hot path, which never allocates an ``XMLNode``.

This is deliberately a single-pass scanner over one string with an
explicit element stack; it handles megabyte-scale documents without
recursion-depth issues.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.tree.document import XMLDocument

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}

_NAME_START = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:"
)
_NAME_CHARS = _NAME_START | set("0123456789.-")


class XMLSyntaxError(ValueError):
    """Raised when the input is not well-formed XML."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class EventHandler(Protocol):
    """What the scanner calls while walking a document."""

    def start_element(self, name: str, attrs: Optional[dict]) -> None: ...

    def characters(self, data: str) -> None: ...

    def end_element(self, name: str) -> None: ...


def _char_ref(name: str, position: int) -> str:
    """Decode ``#N`` / ``#xH`` character-reference payloads strictly.

    Malformed digits, out-of-range code points (> U+10FFFF or negative)
    and surrogates (U+D800..U+DFFF, not XML characters) are all reported
    as :class:`XMLSyntaxError` with the reference's offset rather than
    leaking a bare ``ValueError`` from ``int()`` / ``chr()``.
    """
    try:
        if name.startswith("#x") or name.startswith("#X"):
            code = int(name[2:], 16)
        else:
            code = int(name[1:])
    except ValueError:
        raise XMLSyntaxError(
            f"malformed character reference &{name};", position
        ) from None
    if code < 0 or code > 0x10FFFF:
        raise XMLSyntaxError(
            f"character reference &{name}; out of range", position
        )
    if 0xD800 <= code <= 0xDFFF:
        raise XMLSyntaxError(
            f"character reference &{name}; is a surrogate code point",
            position,
        )
    return chr(code)


def _decode_entities(text: str, base: int) -> str:
    """Replace &name; and &#N; references in ``text``."""
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1:
            raise XMLSyntaxError("unterminated entity reference", base + i)
        name = text[i + 1 : end]
        if name.startswith("#"):
            out.append(_char_ref(name, base + i))
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise XMLSyntaxError(f"unknown entity &{name};", base + i)
        i = end + 1
    return "".join(out)


class _Scanner:
    """Single-pass XML scanner emitting events to a handler."""

    def __init__(self, text: str, handler: EventHandler) -> None:
        self.text = text
        self.pos = 0
        self.n = len(text)
        self.handler = handler

    # -- low-level helpers -------------------------------------------------

    def _error(self, message: str) -> XMLSyntaxError:
        return XMLSyntaxError(message, self.pos)

    def _skip_ws(self) -> None:
        text, n = self.text, self.n
        i = self.pos
        while i < n and text[i] in " \t\r\n":
            i += 1
        self.pos = i

    def _expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise self._error(f"expected {literal!r}")
        self.pos += len(literal)

    def _read_name(self) -> str:
        text, n = self.text, self.n
        start = self.pos
        if start >= n or text[start] not in _NAME_START:
            raise self._error("expected a name")
        i = start + 1
        while i < n and text[i] in _NAME_CHARS:
            i += 1
        self.pos = i
        return text[start:i]

    def _read_attributes(self) -> Optional[dict[str, str]]:
        attrs: Optional[dict[str, str]] = None
        while True:
            self._skip_ws()
            if self.pos >= self.n:
                raise self._error("unterminated start tag")
            ch = self.text[self.pos]
            if ch in "/>":
                return attrs
            name = self._read_name()
            self._skip_ws()
            self._expect("=")
            self._skip_ws()
            quote = self.text[self.pos : self.pos + 1]
            if quote not in ("'", '"'):
                raise self._error("expected quoted attribute value")
            end = self.text.find(quote, self.pos + 1)
            if end == -1:
                raise self._error("unterminated attribute value")
            raw = self.text[self.pos + 1 : end]
            if attrs is None:
                attrs = {}
            attrs[name] = _decode_entities(raw, self.pos + 1)
            self.pos = end + 1

    def _skip_misc(self) -> None:
        """Skip whitespace, comments, PIs, declarations between nodes."""
        while True:
            self._skip_ws()
            if self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos + 4)
                if end == -1:
                    raise self._error("unterminated comment")
                self.pos = end + 3
            elif self.text.startswith("<?", self.pos):
                end = self.text.find("?>", self.pos + 2)
                if end == -1:
                    raise self._error("unterminated processing instruction")
                self.pos = end + 2
            elif self.text.startswith("<!DOCTYPE", self.pos):
                depth = 0
                i = self.pos
                while i < self.n:
                    if self.text[i] == "[":
                        depth += 1
                    elif self.text[i] == "]":
                        depth -= 1
                    elif self.text[i] == ">" and depth == 0:
                        break
                    i += 1
                if i >= self.n:
                    raise self._error("unterminated DOCTYPE")
                self.pos = i + 1
            else:
                return

    # -- document scanning -------------------------------------------------

    def parse(self) -> None:
        self._skip_misc()
        self._scan_element_tree()
        self._skip_misc()
        if self.pos != self.n:
            raise self._error("content after document element")

    def _scan_element_tree(self) -> None:
        """Scan one element and its content iteratively (explicit stack)."""
        handler = self.handler
        root = self._scan_open_tag()
        if root is None:
            raise self._error("expected an element")
        name, empty = root
        if empty:
            handler.end_element(name)
            return
        stack: list[str] = [name]
        while stack:
            self._scan_text()
            if self.text.startswith("</", self.pos):
                self.pos += 2
                name = self._read_name()
                if name != stack[-1]:
                    raise self._error(
                        f"mismatched end tag </{name}> for <{stack[-1]}>"
                    )
                self._skip_ws()
                self._expect(">")
                handler.end_element(name)
                stack.pop()
                continue
            opened = self._scan_open_tag()
            if opened is None:
                raise self._error("unexpected content in element")
            child, empty = opened
            if empty:
                handler.end_element(child)
            else:
                stack.append(child)

    def _scan_text(self) -> None:
        """Emit character data / CDATA runs until the next tag."""
        handler = self.handler
        while True:
            if self.pos >= self.n:
                raise self._error("unexpected end of input inside element")
            if self.text.startswith("<![CDATA[", self.pos):
                end = self.text.find("]]>", self.pos + 9)
                if end == -1:
                    raise self._error("unterminated CDATA section")
                handler.characters(self.text[self.pos + 9 : end])
                self.pos = end + 3
                continue
            if self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos + 4)
                if end == -1:
                    raise self._error("unterminated comment")
                self.pos = end + 3
                continue
            if self.text.startswith("<?", self.pos):
                end = self.text.find("?>", self.pos + 2)
                if end == -1:
                    raise self._error("unterminated processing instruction")
                self.pos = end + 2
                continue
            nxt = self.text.find("<", self.pos)
            if nxt == -1:
                raise self._error("unexpected end of input inside element")
            if nxt > self.pos:
                raw = self.text[self.pos : nxt]
                handler.characters(_decode_entities(raw, self.pos))
                self.pos = nxt
                continue
            return

    def _scan_open_tag(self) -> Optional[tuple[str, bool]]:
        """Scan ``<name attrs>`` or ``<name attrs/>`` and emit the start.

        Returns ``(name, is_empty)`` or None if not at a start tag.
        """
        if not self.text.startswith("<", self.pos):
            return None
        if self.text.startswith("</", self.pos):
            return None
        self.pos += 1
        name = self._read_name()
        attrs = self._read_attributes()
        if self.text.startswith("/>", self.pos):
            self.pos += 2
            self.handler.start_element(name, attrs)
            return name, True
        self._expect(">")
        self.handler.start_element(name, attrs)
        return name, False


def parse_events(text: str, handler: EventHandler) -> None:
    """Scan ``text`` once, emitting SAX-style events to ``handler``."""
    _Scanner(text, handler).parse()


def parse_xml(text: str) -> XMLDocument:
    """Parse an XML string into an :class:`XMLDocument`.

    >>> doc = parse_xml("<a><b/><c x='1'>hi</c></a>")
    >>> [child.label for child in doc.root.children]
    ['b', 'c']
    """
    # Imported lazily: builder.py imports this module at load time.
    from repro.tree.builder import XMLNodeBuilder

    handler = XMLNodeBuilder()
    parse_events(text, handler)
    return handler.document()
