"""A small, dependency-free XML parser.

Supports the subset of XML needed for the paper's workloads: elements,
attributes, character data, comments, CDATA, processing instructions, an
optional XML declaration and DOCTYPE (both skipped), and the five standard
entities.  Namespaces are treated textually (prefix kept in the label).

This is deliberately a recursive-descent parser over a single string with
an explicit element stack; it handles megabyte-scale documents without
recursion-depth issues.
"""

from __future__ import annotations

from typing import Optional

from repro.tree.document import XMLDocument, XMLNode

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}

_NAME_START = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:"
)
_NAME_CHARS = _NAME_START | set("0123456789.-")


class XMLSyntaxError(ValueError):
    """Raised when the input is not well-formed XML."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


def _decode_entities(text: str, base: int) -> str:
    """Replace &name; and &#N; references in ``text``."""
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1:
            raise XMLSyntaxError("unterminated entity reference", base + i)
        name = text[i + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise XMLSyntaxError(f"unknown entity &{name};", base + i)
        i = end + 1
    return "".join(out)


class _Parser:
    """Single-pass XML scanner producing an :class:`XMLNode` tree."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.n = len(text)

    # -- low-level helpers -------------------------------------------------

    def _error(self, message: str) -> XMLSyntaxError:
        return XMLSyntaxError(message, self.pos)

    def _skip_ws(self) -> None:
        text, n = self.text, self.n
        i = self.pos
        while i < n and text[i] in " \t\r\n":
            i += 1
        self.pos = i

    def _expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise self._error(f"expected {literal!r}")
        self.pos += len(literal)

    def _read_name(self) -> str:
        text, n = self.text, self.n
        start = self.pos
        if start >= n or text[start] not in _NAME_START:
            raise self._error("expected a name")
        i = start + 1
        while i < n and text[i] in _NAME_CHARS:
            i += 1
        self.pos = i
        return text[start:i]

    def _read_attributes(self) -> dict[str, str]:
        attrs: dict[str, str] = {}
        while True:
            self._skip_ws()
            if self.pos >= self.n:
                raise self._error("unterminated start tag")
            ch = self.text[self.pos]
            if ch in "/>":
                return attrs
            name = self._read_name()
            self._skip_ws()
            self._expect("=")
            self._skip_ws()
            quote = self.text[self.pos : self.pos + 1]
            if quote not in ("'", '"'):
                raise self._error("expected quoted attribute value")
            end = self.text.find(quote, self.pos + 1)
            if end == -1:
                raise self._error("unterminated attribute value")
            raw = self.text[self.pos + 1 : end]
            attrs[name] = _decode_entities(raw, self.pos + 1)
            self.pos = end + 1

    def _skip_misc(self) -> None:
        """Skip whitespace, comments, PIs, declarations between nodes."""
        while True:
            self._skip_ws()
            if self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos + 4)
                if end == -1:
                    raise self._error("unterminated comment")
                self.pos = end + 3
            elif self.text.startswith("<?", self.pos):
                end = self.text.find("?>", self.pos + 2)
                if end == -1:
                    raise self._error("unterminated processing instruction")
                self.pos = end + 2
            elif self.text.startswith("<!DOCTYPE", self.pos):
                depth = 0
                i = self.pos
                while i < self.n:
                    if self.text[i] == "[":
                        depth += 1
                    elif self.text[i] == "]":
                        depth -= 1
                    elif self.text[i] == ">" and depth == 0:
                        break
                    i += 1
                if i >= self.n:
                    raise self._error("unterminated DOCTYPE")
                self.pos = i + 1
            else:
                return

    # -- document parsing --------------------------------------------------

    def parse(self) -> XMLDocument:
        self._skip_misc()
        root = self._parse_element_tree()
        self._skip_misc()
        if self.pos != self.n:
            raise self._error("content after document element")
        return XMLDocument(root)

    def _parse_element_tree(self) -> XMLNode:
        """Parse one element and its content iteratively (explicit stack)."""
        root = self._parse_open_tag()
        if root is None:
            raise self._error("expected an element")
        node, empty = root
        if empty:
            return node
        stack: list[XMLNode] = [node]
        text_parts: dict[int, list[str]] = {id(node): []}
        while stack:
            top = stack[-1]
            self._scan_text(text_parts[id(top)])
            if self.text.startswith("</", self.pos):
                self.pos += 2
                name = self._read_name()
                if name != top.label:
                    raise self._error(
                        f"mismatched end tag </{name}> for <{top.label}>"
                    )
                self._skip_ws()
                self._expect(">")
                top.text = "".join(text_parts.pop(id(top)))
                stack.pop()
                continue
            opened = self._parse_open_tag()
            if opened is None:
                raise self._error("unexpected content in element")
            child, empty = opened
            top.append(child)
            if not empty:
                stack.append(child)
                text_parts[id(child)] = []
        return node

    def _scan_text(self, sink: list[str]) -> None:
        """Accumulate character data / CDATA until the next tag."""
        while True:
            if self.pos >= self.n:
                raise self._error("unexpected end of input inside element")
            if self.text.startswith("<![CDATA[", self.pos):
                end = self.text.find("]]>", self.pos + 9)
                if end == -1:
                    raise self._error("unterminated CDATA section")
                sink.append(self.text[self.pos + 9 : end])
                self.pos = end + 3
                continue
            if self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos + 4)
                if end == -1:
                    raise self._error("unterminated comment")
                self.pos = end + 3
                continue
            if self.text.startswith("<?", self.pos):
                end = self.text.find("?>", self.pos + 2)
                if end == -1:
                    raise self._error("unterminated processing instruction")
                self.pos = end + 2
                continue
            nxt = self.text.find("<", self.pos)
            if nxt == -1:
                raise self._error("unexpected end of input inside element")
            if nxt > self.pos:
                raw = self.text[self.pos : nxt]
                sink.append(_decode_entities(raw, self.pos))
                self.pos = nxt
                continue
            return

    def _parse_open_tag(self) -> Optional[tuple[XMLNode, bool]]:
        """Parse ``<name attrs>`` or ``<name attrs/>``.

        Returns ``(node, is_empty)`` or None if not at a start tag.
        """
        if not self.text.startswith("<", self.pos):
            return None
        if self.text.startswith("</", self.pos):
            return None
        self.pos += 1
        name = self._read_name()
        attrs = self._read_attributes()
        node = XMLNode(name, attributes=attrs or None)
        if self.text.startswith("/>", self.pos):
            self.pos += 2
            return node, True
        self._expect(">")
        return node, False


def parse_xml(text: str) -> XMLDocument:
    """Parse an XML string into an :class:`XMLDocument`.

    >>> doc = parse_xml("<a><b/><c x='1'>hi</c></a>")
    >>> [child.label for child in doc.root.children]
    ['b', 'c']
    """
    return _Parser(text).parse()
