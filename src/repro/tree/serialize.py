"""XML serialization for :class:`~repro.tree.document.XMLDocument` trees."""

from __future__ import annotations

from repro.tree.document import XMLDocument, XMLNode

_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {**_ESCAPES, '"': "&quot;"}


def _escape(text: str, table: dict[str, str]) -> str:
    for raw, rep in table.items():
        if raw in text:
            text = text.replace(raw, rep)
    return text


def subtree_to_xml(tree, v: int, indent: int = 0) -> str:
    """Serialize the XML subtree of node ``v`` of a BinaryTree.

    Encoded ``@attr`` / ``#text`` children are rendered back as real
    attributes / character data.
    """
    node = _rebuild(tree, v)
    return to_xml(XMLDocument(node), indent=indent)


def _rebuild(tree, v: int) -> XMLNode:
    # Iterative reconstruction (subtrees can be deep).  Children are
    # attached eagerly in document order; only the descent is deferred.
    root = XMLNode(tree.label(v))
    stack = [(v, root)]
    while stack:
        src, dst = stack.pop()
        for c in tree.children(src):
            label = tree.label(c)
            if label.startswith("@"):
                dst.attributes[label[1:]] = ""
                continue
            if label == "#text":
                dst.text += "…"
                continue
            stack.append((c, dst.new_child(label)))
    return root


def to_xml(doc: XMLDocument, indent: int = 0) -> str:
    """Serialize a document to an XML string.

    ``indent > 0`` pretty-prints with that many spaces per level (only safe
    for element-only trees, which is all the paper's workloads use).
    """
    out: list[str] = []
    _write(doc.root, out, 0, indent)
    return "".join(out)


def _write(node: XMLNode, out: list[str], level: int, indent: int) -> None:
    # Iterative serializer: frames are (node, phase) where phase 0 opens
    # and phase 1 closes.
    stack: list[tuple[XMLNode, int, int]] = [(node, 0, level)]
    while stack:
        cur, phase, lvl = stack.pop()
        pad = " " * (indent * lvl) if indent else ""
        nl = "\n" if indent else ""
        if phase == 1:
            out.append(f"{pad}</{cur.label}>{nl}")
            continue
        attrs = "".join(
            f' {k}="{_escape(v, _ATTR_ESCAPES)}"'
            for k, v in cur.attributes.items()
        )
        if not cur.children and not cur.text:
            out.append(f"{pad}<{cur.label}{attrs}/>{nl}")
            continue
        if not cur.children:
            text = _escape(cur.text, _ESCAPES)
            out.append(f"{pad}<{cur.label}{attrs}>{text}</{cur.label}>{nl}")
            continue
        out.append(f"{pad}<{cur.label}{attrs}>{nl}")
        stack.append((cur, 1, lvl))
        for child in reversed(cur.children):
            stack.append((child, 0, lvl + 1))
