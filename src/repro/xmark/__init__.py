"""XMark workload substrate (Section 5).

The paper evaluates on a 116 MB XMark [19] document (5,673,051 nodes) with
the XPathMark [4] tree queries Q01-Q09 plus Q10-Q15 (Figure 2).  This
package provides:

- :class:`~repro.xmark.generator.XMarkGenerator` -- a deterministic,
  seeded generator of the XMark element skeleton at any scale,
- :mod:`repro.xmark.configs` -- the four hand-crafted documents A-D of
  Figure 5 (hybrid-evaluation study),
- :data:`~repro.xmark.queries.QUERIES` -- Q01-Q15 verbatim.
"""

from repro.xmark.generator import XMarkGenerator
from repro.xmark.queries import QUERIES, query
from repro.xmark.configs import make_config, CONFIG_SPECS

__all__ = ["XMarkGenerator", "QUERIES", "query", "make_config", "CONFIG_SPECS"]
