"""The four hand-crafted documents A-D of Figure 5.

Each configuration fixes the counts and *placement* of ``listitem``,
``keyword`` and ``emph`` elements to exercise a different regime of the
hybrid evaluator on the query ``//listitem//keyword//emph``:

=====  ========  ========================  =================================
cfg    listitem  keyword                   emph
=====  ========  ========================  =================================
A      75021     3, below listitems        4, below those 3 keywords
B      75021     60234, below listitems    4, below those keywords
C      9083      40493 total, 1 below      65831, below the one keyword
                 listitems                 that sits under a listitem
D      20304     10209, below ONE          15074, below one of those
                 listitem                  keywords
=====  ========  ========================  =================================

A/B are the hybrid's best cases (rare pivot: keyword resp. emph), C makes
hybrid behave like the regular run, D is the worst case.  ``fraction``
scales all the large counts down (small counts are kept exact) so the
same shapes can be tested quickly; ``fraction=1.0`` reproduces the paper's
counts exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.tree.binary import BinaryTree
from repro.tree.document import XMLDocument, XMLNode


@dataclass(frozen=True)
class ConfigSpec:
    """Counts of one Figure 5 configuration (full size)."""

    listitems: int
    keywords_below: int  # keywords placed below listitems
    keywords_elsewhere: int  # keywords placed outside any listitem
    emphs: int  # emphs below keywords-that-are-below-listitems
    expected_selected: int  # paper's line (1)


CONFIG_SPECS: Dict[str, ConfigSpec] = {
    "A": ConfigSpec(75021, 3, 0, 4, 4),
    "B": ConfigSpec(75021, 60234, 0, 4, 4),
    "C": ConfigSpec(9083, 1, 40492, 65831, 65831),
    "D": ConfigSpec(20304, 10209, 0, 15074, 15074),
}


def _scaled(count: int, fraction: float) -> int:
    """Scale large counts; keep single-digit counts exact."""
    if count <= 10:
        return count
    return max(1, round(count * fraction))


def make_config(name: str, fraction: float = 1.0) -> XMLDocument:
    """Build configuration ``name`` at the given size fraction."""
    spec = CONFIG_SPECS[name]
    listitems = _scaled(spec.listitems, fraction)
    kw_below = min(_scaled(spec.keywords_below, fraction), listitems)
    kw_elsewhere = _scaled(spec.keywords_elsewhere, fraction) if spec.keywords_elsewhere else 0
    emphs = _scaled(spec.emphs, fraction)

    site = XMLNode("site")
    body = site.new_child("regions")

    if name == "D":
        # All keywords below ONE listitem; all emphs below one keyword.
        first = body.new_child("listitem")
        for i in range(kw_below):
            kw = first.new_child("keyword")
            if i == 0:
                for _ in range(emphs):
                    kw.new_child("emph")
        for _ in range(listitems - 1):
            body.new_child("listitem")
    else:
        # Keywords spread over the first kw_below listitems; emphs spread
        # over the first keywords (A/B: 4 emphs; C: all below keyword #1).
        emph_plan = _emph_plan(name, kw_below, emphs)
        for i in range(listitems):
            listitem = body.new_child("listitem")
            if i < kw_below:
                kw = listitem.new_child("keyword")
                for _ in range(emph_plan.get(i, 0)):
                    kw.new_child("emph")

    if kw_elsewhere:
        # Configuration C: a large population of keywords that are NOT
        # below any listitem (they defeat a keyword-pivot plan).
        other = site.new_child("categories")
        for _ in range(kw_elsewhere):
            other.new_child("keyword")
    return XMLDocument(site)


def _emph_plan(name: str, kw_below: int, emphs: int) -> Dict[int, int]:
    if name == "C":
        return {0: emphs}
    # A/B: 4 emphs over the first min(3, kw_below) keywords: 2+1+1.
    plan: Dict[int, int] = {}
    remaining = emphs
    slot = 0
    while remaining > 0 and slot < kw_below:
        take = 2 if slot == 0 and remaining >= 2 else 1
        plan[slot] = take
        remaining -= take
        slot += 1
    if remaining > 0 and kw_below > 0:
        plan[0] = plan.get(0, 0) + remaining
    return plan


def make_config_tree(name: str, fraction: float = 1.0) -> BinaryTree:
    """Binary-encoded configuration document."""
    return BinaryTree.from_document(make_config(name, fraction))
