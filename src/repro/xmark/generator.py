"""Deterministic XMark skeleton generator.

Generates the element structure of an XMark [19] auction document --
site / regions / people / open_auctions / closed_auctions / categories --
with the label distribution shaped so that Q01-Q15 have selectivities
comparable (relatively) to the paper's 116 MB instance.  Text nodes are
not generated: the paper's automata only see element labels (Section 2),
and all fifteen queries are purely structural.

The generator is fully deterministic for a given ``(scale, seed)`` pair;
``scale=1.0`` yields roughly 30k element nodes, and node counts grow
linearly.  The paper's document has ~5.7M nodes; running the benchmarks at
``scale=4`` (~120k nodes) preserves every relative effect the paper
reports while staying tractable for a pure-Python naive engine (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.tree.binary import BinaryTree
from repro.tree.document import XMLDocument, XMLNode

_CONTINENTS = ("africa", "asia", "australia", "europe", "namerica", "samerica")


_WORDS = (
    "auction gold item rare vintage antique silver coin stamp art "
    "painting book first edition signed mint condition shipping world "
    "wide bid reserve buyer seller quality original certified"
).split()


class XMarkGenerator:
    """Seeded XMark-skeleton document factory.

    ``text_content=True`` additionally fills ``text``-family elements with
    pseudo-random character data (XMark uses Shakespeare; any word soup
    exercises the same code paths), so that serialization and the
    ``#text`` encoding can be tested on realistic documents.
    """

    def __init__(
        self, scale: float = 1.0, seed: int = 42, text_content: bool = False
    ) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.seed = seed
        self.text_content = text_content

    # -- public API -------------------------------------------------------------

    def document(self) -> XMLDocument:
        """Generate the document (fresh RNG: repeatable)."""
        self._rng = random.Random(self.seed)
        site = XMLNode("site")
        site.append(self._regions())
        site.append(self._categories())
        site.append(self._catgraph())
        site.append(self._people())
        site.append(self._open_auctions())
        site.append(self._closed_auctions())
        return XMLDocument(site)

    def tree(self) -> BinaryTree:
        """Generate and binary-encode in one call."""
        return BinaryTree.from_document(self.document())

    def xml(self, indent: int = 0) -> str:
        """Generate and serialize to an XML string."""
        from repro.tree.serialize import to_xml

        return to_xml(self.document(), indent=indent)

    def _words(self, lo: int, hi: int) -> str:
        if not self.text_content:
            return ""
        count = self._rng.randint(lo, hi)
        return " ".join(self._rng.choice(_WORDS) for _ in range(count))

    # -- scaling helpers ---------------------------------------------------------

    def _n(self, base: int) -> int:
        """A scaled deterministic count."""
        return max(1, round(base * self.scale))

    def _chance(self, p: float) -> bool:
        return self._rng.random() < p

    def _between(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    # -- sections ------------------------------------------------------------------

    def _regions(self) -> XMLNode:
        regions = XMLNode("regions")
        for continent in _CONTINENTS:
            node = regions.new_child(continent)
            # Europe is the biggest region, as in XMark.
            base = 100 if continent == "europe" else 55
            for _ in range(self._n(base)):
                node.append(self._item())
        return regions

    def _item(self) -> XMLNode:
        item = XMLNode("item")
        item.new_child("location")
        item.new_child("quantity")
        item.new_child("name")
        item.new_child("payment")
        item.append(self._description(depth=0))
        item.new_child("shipping")
        for _ in range(self._between(1, 3)):
            item.new_child("incategory")
        if self._chance(0.8):
            mailbox = item.new_child("mailbox")
            for _ in range(self._between(0, 3)):
                mail = mailbox.new_child("mail")
                mail.new_child("from")
                mail.new_child("to")
                mail.new_child("date")
                mail.append(self._text_content())
        return item

    def _description(self, depth: int) -> XMLNode:
        description = XMLNode("description")
        if depth < 3 and self._chance(0.35):
            description.append(self._parlist(depth + 1))
        else:
            description.append(self._text_content())
        return description

    def _parlist(self, depth: int) -> XMLNode:
        parlist = XMLNode("parlist")
        for _ in range(self._between(2, 4)):
            listitem = parlist.new_child("listitem")
            if depth < 3 and self._chance(0.25):
                listitem.append(self._parlist(depth + 1))
            else:
                listitem.append(self._text_content())
        return parlist

    def _text_content(self) -> XMLNode:
        """A <text> element with inline keyword/emph/bold children.

        XMark's mixed content nests inline markup; a small fraction of
        keywords contain an emph (this is what satisfies Q13's
        ``.//keyword/emph`` and Q14's ``.//keyword//emph`` predicates).
        """
        text = XMLNode("text")
        text.text = self._words(3, 12)
        for _ in range(self._between(0, 2)):
            keyword = text.new_child("keyword")
            keyword.text = self._words(1, 2)
            if self._chance(0.08):
                keyword.new_child("emph")
        for _ in range(self._between(0, 1)):
            text.new_child("emph")
        for _ in range(self._between(0, 1)):
            text.new_child("bold")
        return text

    def _categories(self) -> XMLNode:
        categories = XMLNode("categories")
        for _ in range(self._n(60)):
            category = categories.new_child("category")
            category.new_child("name")
            category.append(self._description(depth=2))
        return categories

    def _catgraph(self) -> XMLNode:
        catgraph = XMLNode("catgraph")
        for _ in range(self._n(120)):
            catgraph.new_child("edge")
        return catgraph

    def _people(self) -> XMLNode:
        people = XMLNode("people")
        for _ in range(self._n(500)):
            person = people.new_child("person")
            person.new_child("name")
            person.new_child("emailaddress")
            if self._chance(0.5):
                person.new_child("phone")
            if self._chance(0.6):
                address = person.new_child("address")
                address.new_child("street")
                address.new_child("city")
                address.new_child("country")
                address.new_child("zipcode")
            if self._chance(0.4):
                person.new_child("homepage")
            if self._chance(0.3):
                person.new_child("creditcard")
            if self._chance(0.5):
                profile = person.new_child("profile")
                for _ in range(self._between(0, 3)):
                    profile.new_child("interest")
                if self._chance(0.6):
                    profile.new_child("education")
                if self._chance(0.7):
                    profile.new_child("gender")
                profile.new_child("business")
                if self._chance(0.7):
                    profile.new_child("age")
            if self._chance(0.25):
                watches = person.new_child("watches")
                for _ in range(self._between(1, 2)):
                    watches.new_child("watch")
        return people

    def _open_auctions(self) -> XMLNode:
        open_auctions = XMLNode("open_auctions")
        for _ in range(self._n(150)):
            auction = open_auctions.new_child("open_auction")
            auction.new_child("initial")
            if self._chance(0.5):
                auction.new_child("reserve")
            for _ in range(self._between(0, 4)):
                bidder = auction.new_child("bidder")
                bidder.new_child("date")
                bidder.new_child("time")
                bidder.new_child("increase")
            auction.new_child("current")
            auction.new_child("itemref")
            auction.new_child("seller")
            auction.append(self._annotation())
            auction.new_child("quantity")
            auction.new_child("type")
        return open_auctions

    def _closed_auctions(self) -> XMLNode:
        closed_auctions = XMLNode("closed_auctions")
        for _ in range(self._n(200)):
            auction = closed_auctions.new_child("closed_auction")
            auction.new_child("seller")
            auction.new_child("buyer")
            auction.new_child("itemref")
            auction.new_child("price")
            auction.new_child("date")
            auction.new_child("quantity")
            auction.new_child("type")
            auction.append(self._annotation(rich=True))
        return closed_auctions

    def _annotation(self, rich: bool = False) -> XMLNode:
        annotation = XMLNode("annotation")
        annotation.new_child("author")
        description = annotation.new_child("description")
        if rich and self._chance(0.7):
            description.append(self._parlist(depth=1))
        else:
            description.append(self._text_content())
        return annotation
