"""The fifteen tree queries of Figure 2, verbatim.

Q01-Q09 are realistic XPathMark queries for XMark documents; Q10-Q15
stress the automata logic (predicate handling on the root element).
"""

from __future__ import annotations

QUERIES: dict[str, str] = {
    "Q01": "/site/regions",
    "Q02": "/site/regions/europe/item/mailbox/mail/text/keyword",
    "Q03": "/site/closed_auctions/closed_auction/annotation/description/parlist/listitem",
    "Q04": "/site/regions/*/item",
    "Q05": "//listitem//keyword",
    "Q06": "/site/regions/*/item//keyword",
    "Q07": "/site/people/person[ address and (phone or homepage) ]",
    "Q08": "//listitem[ .//keyword and .//emph]//parlist",
    "Q09": "/site/regions/*/item[ mailbox/mail/date ]/mailbox/mail",
    "Q10": "/site[ .//keyword]",
    "Q11": "/site//keyword",
    "Q12": "/site[ .//keyword ]//keyword",
    "Q13": "/site[ .//keyword or .//keyword/emph ]//keyword",
    "Q14": "/site[ .//keyword//emph ]/descendant::keyword",
    "Q15": "/site[ .//*//* ]//keyword",
}

QUERY_IDS = tuple(QUERIES)

XPATHMARK_A: dict[str, str] = {
    # The XPathMark [4] A-series (forward-fragment subset), the benchmark
    # family the paper's Q01-Q09 are drawn from.
    "A1": "/site/closed_auctions/closed_auction/annotation/description/text/keyword",
    "A2": "//closed_auction//keyword",
    "A3": "/site/closed_auctions/closed_auction//keyword",
    "A4": "/site/closed_auctions/closed_auction[annotation/description/text/keyword]/date",
    "A5": "/site/closed_auctions/closed_auction[descendant::keyword]/date",
    "A6": "/site/people/person[profile/gender and profile/age]/name",
    "A7": "/site/people/person[phone or homepage]/name",
    "A8": "/site/people/person[address and (phone or homepage) and (creditcard or profile)]/name",
}

HYBRID_QUERY = "//listitem//keyword//emph"
"""The query of the Figure 5 hybrid-evaluation study."""


def query(qid: str) -> str:
    """Query text by id ('Q01' .. 'Q15')."""
    return QUERIES[qid]
