"""Forward Core XPath frontend (Definition C.1).

- :mod:`repro.xpath.ast` -- the abstract syntax,
- :mod:`repro.xpath.parser` -- lexer + recursive-descent parser with the
  usual abbreviations (``//x``, ``x/y``, ``.//x``, ``@a``),
- :mod:`repro.xpath.compiler` -- the XPath -> ASTA compilation scheme of
  Section 4.2,
- :mod:`repro.xpath.reference` -- a trivially-correct set-based evaluator
  used as the semantic oracle by the test suite.
"""

from repro.xpath.ast import Axis, Path, Pred, PredAnd, PredNot, PredOr, PredPath, Step
from repro.xpath.parser import XPathSyntaxError, parse_xpath
from repro.xpath.compiler import compile_xpath
from repro.xpath.reference import evaluate_reference

__all__ = [
    "Axis",
    "Path",
    "Step",
    "Pred",
    "PredAnd",
    "PredOr",
    "PredNot",
    "PredPath",
    "parse_xpath",
    "XPathSyntaxError",
    "compile_xpath",
    "evaluate_reference",
]
