"""Abstract syntax of the forward Core XPath fragment (Definition C.1).

The grammar, with the abbreviations resolved by the parser:

    Core         ::= LocationPath | '/' LocationPath
    LocationPath ::= LocationStep ('/' LocationStep)*
    LocationStep ::= Axis '::' NodeTest ('[' Pred ']')*
    Pred         ::= Pred 'and' Pred | Pred 'or' Pred
                   | 'not' '(' Pred ')' | Core | '(' Pred ')'
    Axis         ::= descendant | child | following-sibling | attribute
    NodeTest     ::= tag | '*' | 'node()' | 'text()'

Multiple predicates on a step are conjoined (pure existence semantics --
there is no positional filtering in this fragment, so ``[p][q]`` ≡
``[p and q]``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Union


class Axis(Enum):
    CHILD = "child"
    DESCENDANT = "descendant"
    FOLLOWING_SIBLING = "following-sibling"
    ATTRIBUTE = "attribute"
    # Backward axes: outside Definition C.1's forward fragment, supported
    # by the mixed pipeline of repro.engine.mixed (the paper's prototype
    # handles backward axes outside the core theory too, Section 6).
    PARENT = "parent"
    ANCESTOR = "ancestor"

    @property
    def is_backward(self) -> bool:
        return self in (Axis.PARENT, Axis.ANCESTOR)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Pred:
    """Base class for predicate expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class PredAnd(Pred):
    left: Pred
    right: Pred

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class PredOr(Pred):
    left: Pred
    right: Pred

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class PredNot(Pred):
    inner: Pred

    def __str__(self) -> str:
        return f"not({self.inner})"


@dataclass(frozen=True)
class PredPath(Pred):
    """An existence test: a relative (or absolute) path."""

    path: "Path"

    def __str__(self) -> str:
        return str(self.path)


@dataclass(frozen=True)
class Step:
    """One location step ``axis::test[pred]``."""

    axis: Axis
    test: str  # tag name, "*", "node()" or "text()"
    predicate: Optional[Pred] = None

    def __str__(self) -> str:
        base = f"{self.axis.value}::{self.test}"
        if self.predicate is not None:
            base += f"[{self.predicate}]"
        return base

    def test_matches_any(self) -> bool:
        """True for the wildcard node tests ``*`` and ``node()``."""
        return self.test in ("*", "node()")


@dataclass(frozen=True)
class Path:
    """A location path; ``absolute`` paths start at the document node."""

    absolute: bool
    steps: tuple

    def __str__(self) -> str:
        prefix = "/" if self.absolute else ""
        return prefix + "/".join(str(s) for s in self.steps)

    @staticmethod
    def of(absolute: bool, steps: List[Step]) -> "Path":
        return Path(absolute, tuple(steps))

    def is_descendant_chain(self) -> bool:
        """True when every step is ``descendant::tag`` without predicates.

        These are the paths the hybrid evaluator of Section 4.4 plans for
        (e.g. ``//listitem//keyword//emph``).
        """
        return all(
            s.axis is Axis.DESCENDANT
            and s.predicate is None
            and not s.test_matches_any()
            for s in self.steps
        )

    def has_backward_axes(self) -> bool:
        """True when any step (or nested predicate path) moves upward."""
        def step_backward(step: Step) -> bool:
            if step.axis.is_backward:
                return True
            return step.predicate is not None and pred_backward(step.predicate)

        def pred_backward(pred: Pred) -> bool:
            if isinstance(pred, (PredAnd, PredOr)):
                return pred_backward(pred.left) or pred_backward(pred.right)
            if isinstance(pred, PredNot):
                return pred_backward(pred.inner)
            if isinstance(pred, PredPath):
                return any(step_backward(s) for s in pred.path.steps)
            return False

        return any(step_backward(s) for s in self.steps)
