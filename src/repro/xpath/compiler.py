"""Compilation of Core XPath into ASTAs (Section 4.2).

The scheme follows the paper exactly: one state per query step, at most
two kinds of transitions per state --

- a *progress* transition fired on the step's node test, whose formula
  conjoins the continuation into the next step with the step's predicate
  formula (and which is selecting, ⇒, on the final step);
- a *recursion* transition that keeps scanning: ``↓1 q ∨ ↓2 q`` for the
  descendant axis (whole subtree), ``↓2 q`` for child / attribute /
  following-sibling (sibling spine).

Running the compiler on ``//a//b[c]`` reproduces Example 4.1's automaton
verbatim (see ``tests/test_compiler.py``), and on
``//x[(a1 or a2) and ... ]`` the linear-size automaton of Example C.1.
"""

from __future__ import annotations

from typing import List

from repro.asta.automaton import ASTA, ASTATransition
from repro.asta.formula import Formula, TRUE, down, fand, fnot, for_
from repro.automata.labelset import ANY, LabelSet
from repro.xpath.ast import Axis, Path, Pred, PredAnd, PredNot, PredOr, PredPath, Step
from repro.xpath.parser import parse_xpath


class XPathCompileError(ValueError):
    """Raised for constructs outside the supported fragment."""


class _Compiler:
    def __init__(self, wildcard_labels=None) -> None:
        self.states: List[str] = []
        self.transitions: List[ASTATransition] = []
        self.wildcard = (
            ANY if wildcard_labels is None else LabelSet(wildcard_labels)
        )

    def fresh(self, hint: str) -> str:
        name = f"q{len(self.states)}_{hint}"
        self.states.append(name)
        return name

    def add(self, q: str, labels: LabelSet, selecting: bool, formula: Formula) -> None:
        self.transitions.append(ASTATransition(q, labels, selecting, formula))

    # -- steps -----------------------------------------------------------------

    def compile_steps(self, steps: tuple, idx: int, selecting: bool) -> str:
        """Scan state for ``steps[idx:]``; entered at each candidate node."""
        step = steps[idx]
        last = idx == len(steps) - 1
        q = self.fresh(_hint(step))
        # Recursion transition: how the scan continues past a candidate.
        if step.axis is Axis.DESCENDANT:
            self.add(q, ANY, False, for_(down(1, q), down(2, q)))
        else:
            self.add(q, ANY, False, down(2, q))
        # Progress transition: fired when the node test matches.
        phi = TRUE
        if not last:
            phi = self.entry(steps, idx + 1, selecting)
        if step.predicate is not None:
            phi = fand(self.compile_pred(step.predicate), phi)
        self.add(q, _test_labels(step, self.wildcard), selecting and last, phi)
        return q

    def entry(self, steps: tuple, idx: int, selecting: bool) -> Formula:
        """Formula entering ``steps[idx:]`` from a freshly matched node."""
        nxt = self.compile_steps(steps, idx, selecting)
        if steps[idx].axis is Axis.FOLLOWING_SIBLING:
            return down(2, nxt)
        # child, attribute and descendant all start below the first child.
        return down(1, nxt)

    # -- predicates --------------------------------------------------------------

    def compile_pred(self, pred: Pred) -> Formula:
        if isinstance(pred, PredAnd):
            return fand(self.compile_pred(pred.left), self.compile_pred(pred.right))
        if isinstance(pred, PredOr):
            return for_(self.compile_pred(pred.left), self.compile_pred(pred.right))
        if isinstance(pred, PredNot):
            return fnot(self.compile_pred(pred.inner))
        if isinstance(pred, PredPath):
            path = pred.path
            if path.absolute:
                raise XPathCompileError(
                    "absolute paths inside predicates are not supported"
                )
            if not path.steps:
                return TRUE  # '.' always exists
            return self.entry(path.steps, 0, selecting=False)
        raise AssertionError(pred)


def _hint(step: Step) -> str:
    test = step.test.replace("(", "").replace(")", "").replace("*", "star")
    return f"{step.axis.value[:4]}_{test}"


def _test_labels(step: Step, wildcard: LabelSet) -> LabelSet:
    test = step.test
    if step.axis is Axis.ATTRIBUTE:
        if test in ("*", "node()"):
            raise XPathCompileError("attribute::* is not supported")
        return LabelSet.of("@" + test)
    if test == "node()":
        return ANY
    if test == "*":
        return wildcard
    if test == "text()":
        return LabelSet.of("#text")
    return LabelSet.of(test)


def compile_xpath(query: "str | Path", wildcard_labels=None) -> ASTA:
    """Compile a query (string or parsed :class:`Path`) into an ASTA.

    ``wildcard_labels`` resolves the ``*`` node test: None (the default)
    compiles it to Σ, which is exact for element-only documents (the
    paper's setting).  When the document encodes attributes/text as
    ``@name`` / ``#text`` labels, pass its *element* label inventory so
    that ``*`` excludes them (the :class:`~repro.engine.api.Engine` does
    this automatically).

    >>> asta = compile_xpath("//a//b[c]")
    >>> len(asta.states), len(asta.transitions)
    (3, 6)
    """
    path = parse_xpath(query) if isinstance(query, str) else query
    if not path.absolute:
        raise XPathCompileError("top-level queries must be absolute (start with /)")
    if not path.steps:
        raise XPathCompileError("empty path")
    if path.has_backward_axes():
        raise XPathCompileError(
            "backward axes are outside the forward fragment; evaluate via "
            "Engine (mixed pipeline) instead of compiling directly"
        )
    first = path.steps[0]
    if first.axis in (Axis.FOLLOWING_SIBLING, Axis.ATTRIBUTE):
        raise XPathCompileError(
            f"axis {first.axis.value} cannot start an absolute path"
        )
    comp = _Compiler(wildcard_labels)
    top = comp.compile_steps(path.steps, 0, selecting=True)
    return ASTA(comp.states, [top], comp.transitions)
