"""Lexer and recursive-descent parser for the Core XPath fragment.

Accepts both the explicit syntax of Definition C.1
(``descendant::keyword``) and the standard abbreviations used by the
paper's queries (Figure 2):

- ``//x``   -> a descendant step,
- ``/x/y``  -> absolute child steps,
- ``x/y``   -> relative child steps (inside predicates),
- ``.//x``  -> descendant step relative to the context node,
- ``.``     -> the context node itself (only as a path prefix),
- ``@a``    -> attribute step,
- ``e1 and e2``, ``e1 or e2``, ``not(e)``, parentheses in predicates,
- multiple predicates ``s[p][q]`` (conjoined).
"""

from __future__ import annotations

from typing import List, Optional

from repro.xpath.ast import Axis, Path, Pred, PredAnd, PredNot, PredOr, PredPath, Step


class XPathSyntaxError(ValueError):
    """Raised on malformed query strings.

    Structured: :attr:`offset` is the character position the parse
    failed at (``None`` only for errors with no single position) and
    :attr:`query` the offending query string, so callers -- the CLI and
    the ``repro serve`` daemon's 400 responses -- can point *into* the
    query instead of dumping a traceback.  :meth:`to_dict` is the one
    JSON shape both reuse.
    """

    def __init__(
        self,
        message: str,
        *,
        offset: Optional[int] = None,
        query: Optional[str] = None,
    ) -> None:
        self.message = message
        self.offset = offset
        self.query = query
        if offset is not None:
            message = f"{message} (offset {offset})"
        super().__init__(message)

    def to_dict(self) -> dict:
        """The structured-error payload (shared by CLI and daemon)."""
        out = {"kind": "syntax", "message": self.message}
        if self.offset is not None:
            out["offset"] = self.offset
        if self.query is not None:
            out["query"] = self.query
        return out

    def describe(self) -> str:
        """Multi-line rendering with a caret under the failure offset::

            syntax error: expected ']', got '(' (offset 5)
              //a[b(
                   ^
        """
        head = f"syntax error: {self.message}"
        if self.offset is None:
            return head
        head = f"{head} (offset {self.offset})"
        if self.query is None:
            return head
        return f"{head}\n  {self.query}\n  {' ' * self.offset}^"


_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789-")

_AXES = {axis.value: axis for axis in Axis}


class _Lexer:
    """Produces a token list: names, punctuation, keywords.

    Each token's character offset into the query text is recorded in
    the parallel :attr:`offsets` list, so parse errors can point at the
    exact position they arose from.
    """

    PUNCT = ["//", "/", "::", "[", "]", "(", ")", "*", "@", "..", "."]

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens: List[str] = []
        self.offsets: List[int] = []
        i, n = 0, len(text)
        while i < n:
            ch = text[i]
            if ch in " \t\r\n":
                i += 1
                continue
            matched = False
            for p in self.PUNCT:
                if text.startswith(p, i):
                    # Avoid splitting names containing '.' is moot: names
                    # cannot contain '.', so '.' is always punctuation.
                    self.tokens.append(p)
                    self.offsets.append(i)
                    i += len(p)
                    matched = True
                    break
            if matched:
                continue
            if ch in _NAME_START:
                j = i + 1
                while j < n and text[j] in _NAME_CHARS:
                    j += 1
                self.tokens.append(text[i:j])
                self.offsets.append(i)
                i = j
                continue
            raise XPathSyntaxError(
                f"unexpected character {ch!r}", offset=i, query=text
            )


class _Parser:
    def __init__(self, lexer: _Lexer) -> None:
        self.text = lexer.text
        self.tokens = lexer.tokens
        self.offsets = lexer.offsets
        self.pos = 0

    # -- token helpers --------------------------------------------------------

    def peek(self, offset: int = 0) -> Optional[str]:
        i = self.pos + offset
        return self.tokens[i] if i < len(self.tokens) else None

    def _at(self, pos: Optional[int] = None) -> int:
        """Character offset of the token at ``pos`` (default: current),
        or the end of the text once the tokens run out."""
        i = self.pos if pos is None else pos
        return self.offsets[i] if i < len(self.offsets) else len(self.text)

    def error(self, message: str, *, at: Optional[int] = None) -> XPathSyntaxError:
        return XPathSyntaxError(
            message,
            offset=self._at() if at is None else at,
            query=self.text,
        )

    def take(self) -> str:
        if self.pos >= len(self.tokens):
            raise self.error("unexpected end of query")
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        at = self._at()
        got = self.take()
        if got != tok:
            raise self.error(f"expected {tok!r}, got {got!r}", at=at)

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    # -- grammar ---------------------------------------------------------------

    def parse_query(self) -> Path:
        path = self.parse_path()
        if not self.at_end():
            raise self.error(f"trailing tokens from {self.peek()!r}")
        return path

    def parse_path(self) -> Path:
        absolute = False
        steps: List[Step] = []
        tok = self.peek()
        if tok == ".":
            # context-node prefix: './/x' or plain '.'
            self.take()
            if self.peek() in ("//", "/"):
                sep = self.take()
                steps.append(self.parse_step(descendant=(sep == "//")))
            else:
                return Path.of(False, [])
        elif tok == "//":
            self.take()
            absolute = True
            steps.append(self.parse_step(descendant=True))
        elif tok == "/":
            self.take()
            absolute = True
            steps.append(self.parse_step(descendant=False))
        else:
            steps.append(self.parse_step(descendant=False))
        while self.peek() in ("/", "//"):
            sep = self.take()
            steps.append(self.parse_step(descendant=(sep == "//")))
        return Path.of(absolute, steps)

    def parse_step(self, descendant: bool) -> Step:
        axis = Axis.DESCENDANT if descendant else Axis.CHILD
        tok = self.peek()
        if tok == "..":
            if descendant:
                raise self.error("'..' cannot follow '//'")
            self.take()
            return Step(Axis.PARENT, "node()", None)
        if tok == "@":
            self.take()
            axis = Axis.ATTRIBUTE
            test = self.parse_node_test()
        elif tok in _AXES and self.peek(1) == "::":
            if descendant:
                raise self.error(
                    "explicit axis cannot follow '//' (write /axis::test)"
                )
            self.take()
            self.take()
            axis = _AXES[tok]
            test = self.parse_node_test()
        else:
            test = self.parse_node_test()
        pred = None
        while self.peek() == "[":
            self.take()
            p = self.parse_pred()
            self.expect("]")
            pred = p if pred is None else PredAnd(pred, p)
        return Step(axis, test, pred)

    def parse_node_test(self) -> str:
        at = self._at()
        tok = self.take()
        if tok == "*":
            return "*"
        if tok in ("node", "text") and self.peek() == "(":
            self.take()
            self.expect(")")
            return f"{tok}()"
        if tok in ("//", "/", "[", "]", "(", ")", "::", "@", "."):
            raise self.error(f"expected a node test, got {tok!r}", at=at)
        return tok

    # predicates: 'or' < 'and' < unary
    def parse_pred(self) -> Pred:
        left = self.parse_pred_and()
        while self.peek() == "or":
            self.take()
            right = self.parse_pred_and()
            left = PredOr(left, right)
        return left

    def parse_pred_and(self) -> Pred:
        left = self.parse_pred_atom()
        while self.peek() == "and":
            self.take()
            right = self.parse_pred_atom()
            left = PredAnd(left, right)
        return left

    def parse_pred_atom(self) -> Pred:
        tok = self.peek()
        if tok == "not" and self.peek(1) == "(":
            self.take()
            self.take()
            inner = self.parse_pred()
            self.expect(")")
            return PredNot(inner)
        if tok == "(":
            self.take()
            inner = self.parse_pred()
            self.expect(")")
            return inner
        return PredPath(self.parse_path())


def parse_xpath(query: str) -> Path:
    """Parse a query string into a :class:`~repro.xpath.ast.Path`.

    Malformed queries raise :class:`XPathSyntaxError` carrying the
    failure offset and the query text (see its ``to_dict``/``describe``).

    >>> p = parse_xpath("//a//b[c]")
    >>> len(p.steps), p.absolute
    (2, True)
    """
    return _Parser(_Lexer(query)).parse_query()
