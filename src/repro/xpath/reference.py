"""Trivially-correct set-based XPath evaluation (the semantic oracle).

Evaluates a :class:`~repro.xpath.ast.Path` over a
:class:`~repro.tree.binary.BinaryTree` by direct node-set manipulation,
one step at a time, with no automata and no cleverness.  Every engine in
:mod:`repro.engine` and every baseline must agree with this function on
every document; the property-based tests enforce that.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Set

from repro.tree.binary import NIL, BinaryTree
from repro.xpath.ast import Axis, Path, Pred, PredAnd, PredNot, PredOr, PredPath, Step


def evaluate_reference(tree: BinaryTree, path: Path) -> List[int]:
    """All nodes selected by ``path``, in document order."""
    context = _initial_context(tree, path)
    result = _eval_path(tree, path, context)
    return sorted(result)


def _initial_context(tree: BinaryTree, path: Path) -> Set[int]:
    if path.absolute:
        # The implicit context is the document node, parent of the root
        # element; its children are {root}, its descendants all nodes.
        return {-1}
    raise ValueError(
        "relative paths need an explicit context; use eval_path_from"
    )


def eval_path_from(tree: BinaryTree, path: Path, context: Iterable[int]) -> List[int]:
    """Evaluate a (typically relative) path from explicit context nodes."""
    if path.absolute:
        return evaluate_reference(tree, path)
    return sorted(_eval_path(tree, path, set(context)))


def _eval_path(tree: BinaryTree, path: Path, context: Set[int]) -> Set[int]:
    current = context
    for step in path.steps:
        current = _eval_step(tree, step, current)
        if not current:
            break
    return current


def _eval_step(tree: BinaryTree, step: Step, context: Set[int]) -> Set[int]:
    out: Set[int] = set()
    for v in context:
        out.update(_axis_nodes(tree, step.axis, v))
    out = {v for v in out if _test_matches(tree, step.axis, step.test, v)}
    if step.predicate is not None:
        out = {v for v in out if _eval_pred(tree, step.predicate, v)}
    return out


def _axis_nodes(tree: BinaryTree, axis: Axis, v: int) -> Iterable[int]:
    if v == -1:  # the document node
        if axis is Axis.CHILD:
            return (0,)
        if axis is Axis.DESCENDANT:
            return range(tree.n)
        return ()
    if axis is Axis.CHILD:
        return tree.children(v)
    if axis is Axis.DESCENDANT:
        return tree.xml_descendants(v)
    if axis is Axis.FOLLOWING_SIBLING:
        out = []
        cur = tree.right[v]
        while cur != NIL:
            out.append(cur)
            cur = tree.right[cur]
        return out
    if axis is Axis.ATTRIBUTE:
        # Attributes are encoded as '@name'-labelled children.
        return [c for c in tree.children(v) if tree.label(c).startswith("@")]
    if axis is Axis.PARENT:
        p = tree.parent[v]
        return () if p == NIL else (p,)
    if axis is Axis.ANCESTOR:
        return tree.ancestors(v)
    raise AssertionError(axis)


def _test_matches(tree: BinaryTree, axis: Axis, test: str, v: int) -> bool:
    label = tree.label(v)
    if axis is Axis.ATTRIBUTE:
        return test == "*" or test == "node()" or label == "@" + test
    if test == "node()":
        return True
    if test == "*":
        return not label.startswith("@") and not label.startswith("#")
    if test == "text()":
        return label == "#text"
    return label == test


def _eval_pred(tree: BinaryTree, pred: Pred, v: int) -> bool:
    if isinstance(pred, PredAnd):
        return _eval_pred(tree, pred.left, v) and _eval_pred(tree, pred.right, v)
    if isinstance(pred, PredOr):
        return _eval_pred(tree, pred.left, v) or _eval_pred(tree, pred.right, v)
    if isinstance(pred, PredNot):
        return not _eval_pred(tree, pred.inner, v)
    if isinstance(pred, PredPath):
        path = pred.path
        if path.absolute:
            return bool(_eval_path(tree, path, {-1}))
        if not path.steps:
            return True  # '.' -- the context node exists
        return bool(_eval_path(tree, path, {v}))
    raise AssertionError(pred)
