"""Shared fixtures: small documents, XMark instances, indexes."""

from __future__ import annotations

import pytest

from repro.index.jumping import TreeIndex
from repro.tree.binary import BinaryTree
from repro.tree.parser import parse_xml
from repro.xmark.generator import XMarkGenerator


@pytest.fixture(scope="session")
def small_doc():
    """A hand-written document exercising nesting, siblings, repetition."""
    return parse_xml(
        "<site>"
        "  <a><x/><b/><c><b/><d/></c></a>"
        "  <b><a><b/></a></b>"
        "  <keyword/>"
        "  <listitem><text><keyword><emph/></keyword></text></listitem>"
        "</site>".replace("  ", "")
    )


@pytest.fixture(scope="session")
def small_tree(small_doc):
    return BinaryTree.from_document(small_doc)


@pytest.fixture(scope="session")
def small_index(small_tree):
    return TreeIndex(small_tree)


@pytest.fixture(scope="session")
def xmark_tree():
    """A small but structurally complete XMark instance."""
    return XMarkGenerator(scale=0.12, seed=11).tree()


@pytest.fixture(scope="session")
def xmark_index(xmark_tree):
    return TreeIndex(xmark_tree)
