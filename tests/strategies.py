"""Hypothesis strategies shared across the property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.automata.labelset import LabelSet
from repro.tree.binary import BinaryTree

LABELS = ("a", "b", "c", "d")


@st.composite
def tree_specs(draw, max_depth: int = 4, max_children: int = 4, labels=LABELS):
    """Nested-tuple tree literals for BinaryTree.from_spec."""

    def node(depth: int):
        label = draw(st.sampled_from(labels))
        if depth >= max_depth:
            return label
        n_children = draw(st.integers(0, max_children if depth < 2 else 2))
        if n_children == 0:
            return label
        return tuple([label] + [node(depth + 1) for _ in range(n_children)])

    return node(0)


@st.composite
def binary_trees(draw, **kwargs):
    """Random small documents as BinaryTree."""
    return BinaryTree.from_spec(draw(tree_specs(**kwargs)))


@st.composite
def label_sets(draw, labels=LABELS):
    names = draw(st.frozensets(st.sampled_from(labels), max_size=len(labels)))
    complemented = draw(st.booleans())
    return LabelSet(names, complemented=complemented)


@st.composite
def xpath_queries(
    draw,
    labels=LABELS,
    max_steps: int = 3,
    pred_depth: int = 1,
    backward: bool = False,
):
    """Random queries in the supported fragment (as strings).

    ``backward=True`` mixes in parent/ancestor steps (never as the first
    step, so the query stays absolute-forward-rooted).
    """

    def step(depth: int, first: bool = False) -> str:
        if backward and not first and draw(st.integers(0, 3)) == 0:
            kind = draw(st.sampled_from(["..", "parent", "ancestor"]))
            if kind == "..":
                return "/.."
            test = draw(st.sampled_from(list(labels)))
            return f"/{kind}::{test}"
        axis = draw(st.sampled_from(["/", "//"]))
        test = draw(st.sampled_from(list(labels) + ["*"]))
        pred = ""
        if depth < pred_depth and draw(st.integers(0, 3)) == 0:
            pred = f"[{predicate(depth + 1)}]"
        return f"{axis}{test}{pred}"

    def rel_path(depth: int) -> str:
        n = draw(st.integers(1, 2))
        parts = []
        for i in range(n):
            axis = draw(st.sampled_from(["", ".//"])) if i == 0 else draw(
                st.sampled_from(["/", "//"])
            )
            test = draw(st.sampled_from(list(labels)))
            parts.append(f"{axis}{test}" if i == 0 else f"{axis}{test}")
        return "".join(parts)

    def predicate(depth: int) -> str:
        kind = draw(st.integers(0, 3))
        if kind == 0:
            return rel_path(depth)
        if kind == 1:
            return f"not({rel_path(depth)})"
        op = "and" if kind == 2 else "or"
        return f"{rel_path(depth)} {op} {rel_path(depth)}"

    n_steps = draw(st.integers(1, max_steps))
    return "".join(step(0, first=(i == 0)) for i in range(n_steps))
