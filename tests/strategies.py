"""Hypothesis strategies shared across the property-based tests, plus a
seeded grammar-driven Core-XPath fuzzer (:func:`random_core_query` /
:func:`random_document`) used by the differential and parallel-determinism
suites -- those want a reproducible fixed-seed corpus of a few hundred
cases rather than hypothesis' adaptive search."""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.automata.labelset import LabelSet
from repro.tree.binary import BinaryTree

LABELS = ("a", "b", "c", "d")

ATTR_NAMES = ("id", "x", "y")
"""Attribute-name pool shared by the fuzzer's documents and queries."""


@st.composite
def tree_specs(draw, max_depth: int = 4, max_children: int = 4, labels=LABELS):
    """Nested-tuple tree literals for BinaryTree.from_spec."""

    def node(depth: int):
        label = draw(st.sampled_from(labels))
        if depth >= max_depth:
            return label
        n_children = draw(st.integers(0, max_children if depth < 2 else 2))
        if n_children == 0:
            return label
        return tuple([label] + [node(depth + 1) for _ in range(n_children)])

    return node(0)


@st.composite
def binary_trees(draw, **kwargs):
    """Random small documents as BinaryTree."""
    return BinaryTree.from_spec(draw(tree_specs(**kwargs)))


@st.composite
def label_sets(draw, labels=LABELS):
    names = draw(st.frozensets(st.sampled_from(labels), max_size=len(labels)))
    complemented = draw(st.booleans())
    return LabelSet(names, complemented=complemented)


@st.composite
def xpath_queries(
    draw,
    labels=LABELS,
    max_steps: int = 3,
    pred_depth: int = 1,
    backward: bool = False,
):
    """Random queries in the supported fragment (as strings).

    ``backward=True`` mixes in parent/ancestor steps (never as the first
    step, so the query stays absolute-forward-rooted).
    """

    def step(depth: int, first: bool = False) -> str:
        if backward and not first and draw(st.integers(0, 3)) == 0:
            kind = draw(st.sampled_from(["..", "parent", "ancestor"]))
            if kind == "..":
                return "/.."
            test = draw(st.sampled_from(list(labels)))
            return f"/{kind}::{test}"
        axis = draw(st.sampled_from(["/", "//"]))
        test = draw(st.sampled_from(list(labels) + ["*"]))
        pred = ""
        if depth < pred_depth and draw(st.integers(0, 3)) == 0:
            pred = f"[{predicate(depth + 1)}]"
        return f"{axis}{test}{pred}"

    def rel_path(depth: int) -> str:
        n = draw(st.integers(1, 2))
        parts = []
        for i in range(n):
            axis = draw(st.sampled_from(["", ".//"])) if i == 0 else draw(
                st.sampled_from(["/", "//"])
            )
            test = draw(st.sampled_from(list(labels)))
            parts.append(f"{axis}{test}" if i == 0 else f"{axis}{test}")
        return "".join(parts)

    def predicate(depth: int) -> str:
        kind = draw(st.integers(0, 3))
        if kind == 0:
            return rel_path(depth)
        if kind == 1:
            return f"not({rel_path(depth)})"
        op = "and" if kind == 2 else "or"
        return f"{rel_path(depth)} {op} {rel_path(depth)}"

    n_steps = draw(st.integers(1, max_steps))
    return "".join(step(0, first=(i == 0)) for i in range(n_steps))


# -- seeded grammar fuzzer ---------------------------------------------------
#
# Plain random.Random generators for the differential-fuzz and parallel
# suites: the whole corpus is a pure function of the seed, so CI replays
# byte-identical cases.  The grammar covers every supported axis (child,
# descendant, following-sibling, attribute, parent, ancestor, '..'),
# wildcard and node()/text() tests, and and/or/not predicate nesting.


def random_document(
    rng: random.Random,
    *,
    labels=LABELS,
    max_depth: int = 4,
    max_children: int = 3,
    attributes: bool = False,
    text: bool = False,
) -> str:
    """A random XML document string (optionally with attributes/text)."""

    def element(depth: int) -> str:
        label = rng.choice(labels)
        attrs = ""
        if attributes and rng.random() < 0.3:
            names = rng.sample(ATTR_NAMES, rng.randint(1, 2))
            attrs = "".join(f' {a}="v"' for a in sorted(names))
        n_children = 0 if depth >= max_depth else rng.randint(0, max_children)
        body = "".join(element(depth + 1) for _ in range(n_children))
        if text and rng.random() < 0.25:
            body = "some text" + body
        if not body:
            return f"<{label}{attrs}/>"
        return f"<{label}{attrs}>{body}</{label}>"

    return element(0)


def random_core_query(
    rng: random.Random,
    *,
    labels=LABELS,
    max_steps: int = 4,
    pred_depth: int = 2,
    backward: bool = False,
    following: bool = False,
    attributes: bool = False,
    text: bool = False,
) -> str:
    """A random absolute query over the full supported Core fragment.

    Explicit axes are only ever emitted after ``/`` (the parser forbids
    ``//axis::test``), and the first step is always a forward child or
    descendant step so the query stays absolute-forward-rooted.
    """

    def node_test() -> str:
        r = rng.random()
        if r < 0.55:
            return rng.choice(labels)
        if r < 0.7:
            return "*"
        if r < 0.8:
            return "node()"
        if text and r < 0.88:
            return "text()"
        return rng.choice(labels)

    def predicate(depth: int) -> str:
        kind = rng.randint(0, 4)
        if kind == 0:
            return f"not({predicate(depth + 1) if depth < pred_depth else rel_path(depth)})"
        if kind == 1 and depth < pred_depth:
            op = rng.choice(("and", "or"))
            return f"{predicate(depth + 1)} {op} {predicate(depth + 1)}"
        if kind == 2 and attributes:
            return f"@{rng.choice(ATTR_NAMES)}"
        return rel_path(depth)

    def rel_path(depth: int) -> str:
        n = rng.randint(1, 2)
        parts = []
        for i in range(n):
            test = rng.choice(labels)
            if i == 0:
                parts.append(rng.choice(("", ".//")) + test)
            else:
                parts.append(rng.choice(("/", "//")) + test)
        return "".join(parts)

    def step(first: bool) -> str:
        if not first:
            r = rng.random()
            if backward and r < 0.15:
                kind = rng.choice(("..", "parent", "ancestor"))
                if kind == "..":
                    return "/.."
                return f"/{kind}::{node_test()}"
            if following and r < 0.3:
                return f"/following-sibling::{node_test()}"
            if attributes and r < 0.4:
                return f"/@{rng.choice(ATTR_NAMES)}"
        sep = rng.choice(("/", "//"))
        pred = ""
        if rng.random() < 0.4:
            pred = f"[{predicate(0)}]"
        return f"{sep}{node_test()}{pred}"

    n_steps = rng.randint(1, max_steps)
    return "".join(step(first=(i == 0)) for i in range(n_steps))


def fuzz_corpus(
    seed: int,
    n_documents: int,
    queries_per_document: int,
    **query_kwargs,
) -> list:
    """A reproducible corpus of ``(xml, [query, ...])`` pairs."""
    rng = random.Random(seed)
    attributes = bool(query_kwargs.get("attributes"))
    text = bool(query_kwargs.get("text"))
    corpus = []
    for _ in range(n_documents):
        xml = random_document(rng, attributes=attributes, text=text)
        queries = [
            random_core_query(rng, **query_kwargs)
            for _ in range(queries_per_document)
        ]
        corpus.append((xml, queries))
    return corpus


# -- window-join adversarial corpus ------------------------------------------
#
# Document and query shapes aimed at the window strategy's join
# machinery: long same-label sibling runs (the following-sibling window
# must stop at the right parent boundary), deep single-child chains
# (ancestor joins and staircase pruning over maximally nested windows),
# and *adjacent* same-label subtrees whose windows touch without
# nesting -- the off-by-one class where a half-open interval join would
# leak a neighbouring subtree's nodes.


def window_adversarial_document(
    rng: random.Random,
    *,
    labels=LABELS,
    max_depth: int = 6,
) -> str:
    """A document biased toward sibling runs, chains, and twin subtrees."""

    def chain(depth: int) -> str:
        # A deep single-child spine; every level reuses few labels so
        # ancestor::<label> has matches at many depths.
        label = rng.choice(labels[:2])
        if depth >= max_depth:
            return f"<{label}/>"
        return f"<{label}>{chain(depth + 1)}</{label}>"

    def sibling_run(depth: int) -> str:
        # A long run of same-label siblings, with an occasional
        # different label breaking the run mid-way.
        label = rng.choice(labels)
        run = []
        for i in range(rng.randint(3, 6)):
            if i == 2 and rng.random() < 0.5:
                run.append(f"<{rng.choice(labels)}/>")
            body = shape(depth + 1) if rng.random() < 0.3 else ""
            run.append(f"<{label}>{body}</{label}>" if body else f"<{label}/>")
        return "".join(run)

    def twins(depth: int) -> str:
        # Two structurally identical same-label subtrees side by side:
        # their windows are adjacent on the preorder axis.
        label = rng.choice(labels)
        body = shape(depth + 1)
        return f"<{label}>{body}</{label}>" * 2

    def shape(depth: int) -> str:
        if depth >= max_depth:
            return f"<{rng.choice(labels)}/>"
        r = rng.random()
        if r < 0.3:
            return chain(depth)
        if r < 0.6:
            return sibling_run(depth)
        if r < 0.8:
            return twins(depth)
        label = rng.choice(labels)
        body = "".join(
            shape(depth + 1) for _ in range(rng.randint(1, 3))
        )
        return f"<{label}>{body}</{label}>"

    root = rng.choice(labels)
    body = "".join(shape(1) for _ in range(rng.randint(2, 3)))
    return f"<{root}>{body}</{root}>"


def random_window_query(
    rng: random.Random,
    *,
    labels=LABELS,
    max_steps: int = 4,
) -> str:
    """A random query biased toward the window strategy's hard cases:
    following-sibling *chains*, ancestor/parent steps, and predicates
    whose inner paths are themselves backward or sibling probes."""

    def node_test() -> str:
        r = rng.random()
        if r < 0.6:
            return rng.choice(labels)
        if r < 0.75:
            return "*"
        if r < 0.85:
            return "node()"
        return rng.choice(labels)

    def predicate() -> str:
        kind = rng.randint(0, 5)
        if kind == 0:
            # Deep ancestor predicate: the witness is levels above.
            return f"ancestor::{rng.choice(labels)}"
        if kind == 1:
            return f"following-sibling::{node_test()}"
        if kind == 2:
            return f"not(ancestor::{rng.choice(labels)})"
        if kind == 3:
            op = rng.choice(("and", "or"))
            return f"ancestor::{rng.choice(labels)} {op} {rel_path()}"
        if kind == 4:
            return f".//{rng.choice(labels)}/parent::{node_test()}"
        return rel_path()

    def rel_path() -> str:
        test = rng.choice(labels)
        lead = rng.choice(("", ".//"))
        if rng.random() < 0.4:
            return f"{lead}{test}/{rng.choice(labels)}"
        return f"{lead}{test}"

    def step(first: bool) -> str:
        if not first:
            r = rng.random()
            if r < 0.35:
                # Sibling chains: frequently two in a row.
                chain = f"/following-sibling::{node_test()}"
                if rng.random() < 0.4:
                    chain += f"/following-sibling::{node_test()}"
                return chain
            if r < 0.5:
                kind = rng.choice(("parent", "ancestor"))
                return f"/{kind}::{node_test()}"
        sep = rng.choice(("/", "//"))
        pred = f"[{predicate()}]" if rng.random() < 0.5 else ""
        return f"{sep}{node_test()}{pred}"

    n_steps = rng.randint(1, max_steps)
    return "".join(step(first=(i == 0)) for i in range(n_steps))


def window_fuzz_corpus(
    seed: int, n_documents: int, queries_per_document: int
) -> list:
    """A reproducible ``(xml, [query, ...])`` corpus of window-join
    adversarial shapes (same contract as :func:`fuzz_corpus`)."""
    rng = random.Random(seed)
    corpus = []
    for _ in range(n_documents):
        xml = window_adversarial_document(rng)
        queries = [
            random_window_query(rng)
            for _ in range(queries_per_document)
        ]
        corpus.append((xml, queries))
    return corpus
