"""ASTA structure and the Figure 7 evaluation rules."""

import pytest

from repro.asta.automaton import ASTA, ASTATransition
from repro.asta.formula import TRUE, down, fand, fnot, for_
from repro.asta.semantics import (
    EMPTY_ROPE,
    concat,
    eval_formula,
    eval_transitions,
    flatten,
    leaf,
    root_answer,
)
from repro.automata.labelset import ANY, LabelSet


def example_41() -> ASTA:
    """The ASTA of Example 4.1 for //a//b[c], written out by hand."""
    return ASTA(
        states=["q0", "q1", "q2"],
        top=["q0"],
        transitions=[
            ASTATransition("q0", LabelSet.of("a"), False, down(1, "q1")),
            ASTATransition("q0", ANY, False, for_(down(1, "q0"), down(2, "q0"))),
            ASTATransition("q1", LabelSet.of("b"), True, down(1, "q2")),
            ASTATransition("q1", ANY, False, for_(down(1, "q1"), down(2, "q1"))),
            ASTATransition("q2", LabelSet.of("c"), False, TRUE),
            ASTATransition("q2", ANY, False, down(2, "q2")),
        ],
    )


class TestASTAStructure:
    def test_validation(self):
        with pytest.raises(ValueError):
            ASTA(["q"], ["zz"], [])
        with pytest.raises(ValueError):
            ASTA(["q"], ["q"], [ASTATransition("q", ANY, False, down(1, "zz"))])

    def test_active_transitions(self):
        asta = example_41()
        active = asta.active({"q0"}, "a")
        assert len(active) == 2  # {a} rule and the Σ recursion rule
        active_c = asta.active({"q0"}, "c")
        assert len(active_c) == 1

    def test_marking_states(self):
        asta = example_41()
        assert asta.is_marking("q1")
        assert asta.is_marking("q0")  # reaches q1's selecting rule
        assert not asta.is_marking("q2")

    def test_atoms_and_rep(self):
        asta = example_41()
        names = [rep for rep, _ in asta.atoms()]
        assert names[:-1] == ["a", "b", "c"]
        assert asta.atom_rep("a") == "a"
        assert asta.atom_rep("zzz") == names[-1]

    def test_describe_lists_transitions(self):
        text = example_41().describe()
        assert "⇒" in text and "q1" in text


class TestRopes:
    def test_concat_identity(self):
        assert concat(EMPTY_ROPE, leaf(3)) == leaf(3)
        assert concat(leaf(3), EMPTY_ROPE) == leaf(3)

    def test_flatten_sorts_and_dedups(self):
        rope = concat(leaf(5), concat(leaf(1), leaf(5)))
        assert flatten(rope) == [1, 5]

    def test_flatten_empty(self):
        assert flatten(EMPTY_ROPE) == []


class TestFormulaEvaluation:
    def test_down_collects_markings(self):
        g1 = {"q": leaf(7)}
        ok, rope = eval_formula(down(1, "q"), g1, {})
        assert ok and flatten(rope) == [7]

    def test_down_accepted_with_empty_rope(self):
        ok, rope = eval_formula(down(2, "q"), {}, {"q": EMPTY_ROPE})
        assert ok and rope == EMPTY_ROPE

    def test_or_unions_both_true_branches(self):
        g1 = {"p": leaf(1), "q": leaf(2)}
        ok, rope = eval_formula(for_(down(1, "p"), down(1, "q")), g1, {})
        assert ok and flatten(rope) == [1, 2]

    def test_or_takes_single_true_branch(self):
        g1 = {"p": leaf(1)}
        ok, rope = eval_formula(for_(down(1, "p"), down(1, "q")), g1, {})
        assert ok and flatten(rope) == [1]

    def test_and_requires_both(self):
        g1 = {"p": leaf(1)}
        ok, _ = eval_formula(fand(down(1, "p"), down(1, "q")), g1, {})
        assert not ok
        g1["q"] = leaf(2)
        ok, rope = eval_formula(fand(down(1, "p"), down(1, "q")), g1, {})
        assert ok and flatten(rope) == [1, 2]

    def test_not_discards_markings(self):
        g1 = {"p": leaf(1)}
        ok, rope = eval_formula(fnot(down(1, "q")), g1, {})
        assert ok and rope == EMPTY_ROPE
        ok, _ = eval_formula(fnot(down(1, "p")), g1, {})
        assert not ok


class TestEvalTransitions:
    def test_selecting_transition_adds_node(self):
        asta = example_41()
        active = asta.active({"q1"}, "b")
        g1 = {"q2": EMPTY_ROPE}
        gamma = eval_transitions(active, g1, {}, v=9)
        assert flatten(gamma["q1"]) == [9]

    def test_non_selecting_propagates_only(self):
        asta = example_41()
        active = asta.active({"q0"}, "x")
        g1 = {"q0": leaf(4)}
        gamma = eval_transitions(active, g1, {}, v=0)
        assert flatten(gamma["q0"]) == [4]

    def test_unsatisfied_transition_absent(self):
        asta = example_41()
        active = asta.active({"q1"}, "b")
        gamma = eval_transitions(active, {}, {}, v=9)
        assert "q1" not in gamma  # needs a c child (q2 on the left)

    def test_root_answer(self):
        asta = example_41()
        accepted, ids = root_answer(asta, {"q0": leaf(3)})
        assert accepted and ids == [3]
        accepted, ids = root_answer(asta, {"q1": leaf(3)})
        assert not accepted and ids == []
