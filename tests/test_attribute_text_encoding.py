"""Attribute / text-node encoding (the 'straightforward encoding' of [1])."""

import pytest

from repro import Engine
from repro.tree.binary import BinaryTree
from repro.tree.parser import parse_xml

XML = '<r><a id="1" lang="en">hello<b/></a><a>  </a><b id="2"/></r>'


class TestEncodingOptions:
    def test_default_elements_only(self):
        tree = BinaryTree.from_document(parse_xml(XML))
        assert set(tree.labels) == {"r", "a", "b"}

    def test_attributes_become_at_children(self):
        tree = BinaryTree.from_document(parse_xml(XML), encode_attributes=True)
        hist = tree.label_histogram()
        assert hist["@id"] == 2
        assert hist["@lang"] == 1
        # Attributes precede the element's real children.
        a = 1
        children = [tree.label(c) for c in tree.children(a)]
        assert children[:2] == ["@id", "@lang"]

    def test_text_becomes_hash_text_children(self):
        tree = BinaryTree.from_document(parse_xml(XML), encode_text=True)
        hist = tree.label_histogram()
        assert hist["#text"] == 1  # whitespace-only content is dropped

    def test_document_order_preserved(self):
        tree = BinaryTree.from_document(
            parse_xml(XML), encode_attributes=True, encode_text=True
        )
        # ids must still be a valid preorder: parents before children.
        for v in range(1, tree.n):
            assert tree.parent[v] < v


class TestAttributeAxisEndToEnd:
    def test_attribute_step(self):
        engine = Engine(parse_xml(XML), encode_attributes=True)
        ids = engine.select("//a/@id")
        assert engine.labels_of(ids) == ["@id"]

    def test_attribute_predicate(self):
        engine = Engine(parse_xml(XML), encode_attributes=True)
        assert engine.count("//a[@id]") == 1
        assert engine.count("//a[@missing]") == 0
        assert engine.count("//b[@id]") == 1

    def test_attribute_not_matched_by_wildcard_child(self):
        engine = Engine(parse_xml(XML), encode_attributes=True)
        # '*' must not leak '@'-encoded attributes.
        labels = engine.labels_of(engine.select("//a/*"))
        assert "@id" not in labels
        assert labels == ["b"]

    def test_engines_agree_with_attributes(self):
        from repro.xpath.parser import parse_xpath
        from repro.xpath.reference import evaluate_reference

        tree = BinaryTree.from_document(parse_xml(XML), encode_attributes=True)
        for strategy in ("naive", "optimized", "hybrid"):
            engine = Engine(tree, strategy=strategy)
            for q in ("//a/@id", "//a[@lang]", "/r/*[@id]"):
                expected = evaluate_reference(tree, parse_xpath(q))
                assert engine.select(q) == expected, (strategy, q)


class TestTextAxisEndToEnd:
    def test_text_node_test(self):
        engine = Engine(parse_xml(XML), encode_text=True)
        assert engine.count("//a/text()") == 1

    def test_text_predicate(self):
        engine = Engine(parse_xml(XML), encode_text=True)
        labels = engine.labels_of(engine.select("//a[text()]"))
        assert labels == ["a"]
