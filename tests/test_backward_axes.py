"""Backward axes (parent/ancestor) via the mixed pipeline (Section 6)."""

import pytest
from hypothesis import given, settings

from repro import Engine
from repro.baselines.stepwise import stepwise_evaluate
from repro.counters import EvalStats
from repro.engine.mixed import forward_prefix_length, mixed_evaluate
from repro.index.jumping import TreeIndex
from repro.tree.binary import BinaryTree
from repro.xpath.parser import parse_xpath
from repro.xpath.reference import evaluate_reference

from strategies import binary_trees

XML = "<r><a><x><b/></x><b/></a><c><b/></c><b/></r>"


@pytest.fixture(scope="module")
def tree():
    return BinaryTree.from_xml(XML)


@pytest.fixture(scope="module")
def index(tree):
    return TreeIndex(tree)


class TestParsing:
    def test_dotdot(self):
        path = parse_xpath("//b/..")
        assert path.steps[-1].axis.value == "parent"
        assert path.has_backward_axes()

    def test_explicit_axes(self):
        path = parse_xpath("//b/ancestor::a/parent::r")
        assert [s.axis.value for s in path.steps] == [
            "descendant",
            "ancestor",
            "parent",
        ]

    def test_backward_in_predicate_detected(self):
        assert parse_xpath("//b[../c]").has_backward_axes()
        assert not parse_xpath("//b[c]").has_backward_axes()

    def test_dotdot_after_slashslash_rejected(self):
        from repro.xpath.parser import XPathSyntaxError

        with pytest.raises(XPathSyntaxError):
            parse_xpath("//a//..")


class TestSegmentation:
    def test_prefix_length(self):
        assert forward_prefix_length(parse_xpath("//a//b/..")) == 2
        assert forward_prefix_length(parse_xpath("//a/../b")) == 1
        assert forward_prefix_length(parse_xpath("/r/..")) == 1
        assert forward_prefix_length(parse_xpath("//a[../x]/b")) == 0

    def test_backward_predicate_breaks_prefix(self):
        assert forward_prefix_length(parse_xpath("//a/b[..]//c")) == 1


class TestReferenceSemantics:
    def test_parent_step(self, tree):
        got = evaluate_reference(tree, parse_xpath("//b/.."))
        assert [tree.label(v) for v in got] == ["r", "a", "x", "c"]

    def test_ancestor_step(self, tree):
        got = evaluate_reference(tree, parse_xpath("//b/ancestor::a"))
        assert [tree.label(v) for v in got] == ["a"]

    def test_parent_with_test(self, tree):
        got = evaluate_reference(tree, parse_xpath("//b/parent::c"))
        assert [tree.label(v) for v in got] == ["c"]

    def test_backward_then_forward(self, tree):
        # parents of b's that have an x child
        got = evaluate_reference(tree, parse_xpath("//b/../x"))
        assert [tree.label(v) for v in got] == ["x"]

    def test_backward_in_predicate(self, tree):
        got = evaluate_reference(tree, parse_xpath("//b[ancestor::a]"))
        assert len(got) == 2


class TestMixedPipeline:
    QUERIES = [
        "//b/..",
        "//b/ancestor::a",
        "//b/parent::c",
        "//b/../x",
        "//x/b/ancestor::a/b",
        "//b[ancestor::a]",
        "//a/..",
        "/r/a/x/..",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_matches_reference(self, query, tree, index):
        expected = evaluate_reference(tree, parse_xpath(query))
        _, got = mixed_evaluate(query, index)
        assert got == expected

    @pytest.mark.parametrize("query", QUERIES)
    def test_stepwise_matches_reference(self, query, tree, index):
        expected = evaluate_reference(tree, parse_xpath(query))
        assert stepwise_evaluate(query, index) == expected

    def test_engine_routes_automatically(self, tree):
        for strategy in ("naive", "optimized", "hybrid", "deterministic"):
            engine = Engine(tree, strategy=strategy)
            got = engine.select("//b/ancestor::a")
            assert [tree.label(v) for v in got] == ["a"]

    def test_forward_segment_uses_jumping(self, index):
        stats = EvalStats()
        mixed_evaluate("//b/..", index, stats)
        assert stats.jumps > 0  # the //b prefix ran on the ASTA engine

    @given(binary_trees(max_depth=4, max_children=4))
    @settings(max_examples=60, deadline=None)
    def test_random_docs(self, t):
        idx = TreeIndex(t)
        for query in ("//b/..", "//c/ancestor::a", "//a/../b", "//b[../c]"):
            expected = evaluate_reference(t, parse_xpath(query))
            assert mixed_evaluate(query, idx)[1] == expected
            assert stepwise_evaluate(query, idx) == expected


class TestRandomBackwardQueries:
    from strategies import xpath_queries as _xq

    @given(binary_trees(max_depth=4, max_children=3),
           __import__("strategies").xpath_queries(backward=True))
    @settings(max_examples=80, deadline=None)
    def test_engine_matches_reference(self, t, query):
        from repro import Engine

        path = parse_xpath(query)
        expected = evaluate_reference(t, path)
        engine = Engine(t)
        assert engine.select(path) == expected, query


class TestExplainBackward:
    def test_explain_describes_mixed_pipeline(self, tree):
        engine = Engine(tree)
        text = engine.explain("//b/ancestor::a")
        assert "mixed pipeline" in text
        assert "forward segment: 1 step" in text
        assert "ASTA" in text  # the compiled prefix automaton
