"""Bench harness and experiment drivers (smoke level)."""

from repro.bench.harness import Timer, format_table, time_prepared
from repro.bench.experiments import (
    ablation_storage,
    ablation_techniques,
    build_index,
    fig3_node_counts,
    fig4_times,
    fig5_hybrid,
    fig8_vs_stepwise,
    main,
)


class TestHarness:
    def test_timer_returns_positive_ms(self):
        t = Timer(repeats=2)
        assert t.best_ms(lambda: sum(range(1000))) >= 0

    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text
        assert len({len(l) for l in lines[1:]}) == 1  # aligned rows

    def test_time_prepared_rows(self):
        from repro.engine.api import Engine

        engine = Engine("<r><a><b/></a><b/></r>")
        rows = time_prepared(
            engine, ["//a//b"], strategies=("optimized", "hybrid"), repeats=1
        )
        assert [(r[0], r[1], r[2], r[4]) for r in rows] == [
            ("//a//b", "optimized", "optimized", 1),
            ("//a//b", "hybrid", "hybrid", 1),
        ]
        assert all(r[3] >= 0 for r in rows)


class TestDrivers:
    def test_fig3_rows(self):
        index = build_index(scale=0.05, seed=5)
        rows, n = fig3_node_counts(index)
        assert len(rows) == 15
        assert n == index.tree.n
        for row in rows:
            assert row[1] <= row[2] <= n  # selected <= visited <= nodes

    def test_fig4_rows(self):
        index = build_index(scale=0.05, seed=5)
        rows = fig4_times(index, repeats=1)
        assert len(rows) == 15
        assert all(len(r) == 5 for r in rows)

    def test_fig5_rows(self):
        rows = fig5_hybrid(fraction=0.01, repeats=1)
        assert [r[0] for r in rows] == ["A", "B", "C", "D"]

    def test_fig8_rows(self):
        index = build_index(scale=0.05, seed=5)
        rows = fig8_vs_stepwise(index, repeats=1)
        assert len(rows) == 15

    def test_ablation_storage(self):
        out = ablation_storage(scale=0.05)
        assert out["pointer_bytes"] > out["succinct_bytes"]
        assert out["blowup"] > 1

    def test_ablation_grid_has_8_rows(self):
        index = build_index(scale=0.03, seed=5)
        rows = ablation_techniques(index, repeats=1)
        assert len(rows) == 8

    def test_main_rejects_unknown(self, capsys):
        assert main(["nope"]) == 2


class TestSweep:
    def test_hybrid_sweep_rows_monotone(self):
        from repro.bench.experiments import hybrid_sweep

        rows = hybrid_sweep(listitems=400, pivot_counts=(4, 64, 400), repeats=1)
        assert [r[0] for r in rows] == [4, 64, 400]
        # hybrid visits grow with the pivot count; selections match it.
        assert rows[0][2] < rows[-1][2]
        for kw, selected, *_ in rows:
            assert selected == kw
