"""Rank/select bitvector: unit tests plus equivalence with naive scans."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.bitvector import BitVector


class TestSmall:
    def test_empty(self):
        bv = BitVector([])
        assert len(bv) == 0
        assert bv.rank1(0) == 0

    def test_single_bits(self):
        bv = BitVector([1])
        assert bv.get(0) == 1
        assert bv.rank1(1) == 1
        assert bv.select1(0) == 0

    def test_pattern(self):
        bits = [1, 0, 1, 1, 0, 0, 1]
        bv = BitVector(bits)
        assert [bv.get(i) for i in range(7)] == bits
        assert bv.rank1(0) == 0
        assert bv.rank1(3) == 2
        assert bv.rank1(7) == 4
        assert bv.rank0(7) == 3
        assert bv.select1(0) == 0
        assert bv.select1(3) == 6
        assert bv.select0(0) == 1
        assert bv.select0(2) == 5

    def test_rank_beyond_length_clamps(self):
        bv = BitVector([1, 1])
        assert bv.rank1(100) == 2

    def test_select_out_of_range(self):
        bv = BitVector([1, 0])
        with pytest.raises(IndexError):
            bv.select1(1)
        with pytest.raises(IndexError):
            bv.select0(1)

    def test_get_out_of_range(self):
        bv = BitVector([1])
        with pytest.raises(IndexError):
            bv.get(1)

    def test_crosses_word_boundaries(self):
        bits = ([1] * 63 + [0]) * 3  # 192 bits, spans 3 words
        bv = BitVector(bits)
        assert bv.rank1(64) == 63
        assert bv.rank1(128) == 126
        assert bv.select1(63) == 64  # first one of the second block


class TestAgainstNaive:
    @given(st.lists(st.booleans(), max_size=700))
    @settings(max_examples=50)
    def test_rank_matches_prefix_sums(self, bits):
        bv = BitVector(bits)
        count = 0
        for i, b in enumerate(bits):
            assert bv.rank1(i) == count
            count += 1 if b else 0
        assert bv.rank1(len(bits)) == count

    @given(st.lists(st.booleans(), min_size=1, max_size=700))
    @settings(max_examples=50)
    def test_select_inverts_rank(self, bits):
        bv = BitVector(bits)
        ones = [i for i, b in enumerate(bits) if b]
        zeros = [i for i, b in enumerate(bits) if not b]
        for k, pos in enumerate(ones):
            assert bv.select1(k) == pos
        for k, pos in enumerate(zeros):
            assert bv.select0(k) == pos
