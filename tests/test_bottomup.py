"""Bottom-up evaluation (Algorithm B.2) and the jumping variant."""

import pytest
from hypothesis import given, settings

from repro.automata.bottomup import (
    active_label_ids,
    bottom_up,
    bottom_up_reduce,
    bottomup_jump,
    selected_by_run,
)
from repro.automata.examples import sta_a_with_b_below
from repro.automata.minimize import complete_bottomup
from repro.counters import EvalStats
from repro.index.jumping import TreeIndex
from repro.tree.binary import BinaryTree

from strategies import binary_trees


def sta():
    return sta_a_with_b_below()


def tree(spec):
    return BinaryTree.from_spec(spec)


class TestBottomUp:
    def test_unique_run_states(self):
        automaton = sta()
        t = tree(("r", ("a", ("c", "b")), "c"))
        run = bottom_up(automaton, t)
        assert run is not None
        # q1 = "XML subtree contains b" flows up to the root.
        assert run[3] == "q1"  # the b itself
        assert run[1] == "q1"  # the a above it
        assert run[4] == "q0"  # the trailing plain c

    def test_selection_from_run(self):
        automaton = sta()
        t = tree(("r", ("a", ("c", "b")), "c"))
        run = bottom_up(automaton, t)
        assert selected_by_run(automaton, t, run) == [1]
        assert automaton.selected_nodes(t) == [1]

    def test_requires_single_bottom_state(self):
        from repro.automata.examples import sta_desc_a_desc_b

        with pytest.raises(ValueError):
            bottom_up(sta_desc_a_desc_b(), tree("a"))

    @given(binary_trees(labels=("a", "b", "c")))
    @settings(max_examples=60)
    def test_run_agrees_with_oracle_selection(self, t):
        automaton = sta()
        run = bottom_up(automaton, t)
        assert run is not None  # accepts all trees
        assert selected_by_run(automaton, t, run) == automaton.selected_nodes(t)


class TestListReduction:
    @given(binary_trees(labels=("a", "b", "c")))
    @settings(max_examples=60)
    def test_reduce_equals_sweep(self, t):
        automaton = sta()
        assert bottom_up_reduce(automaton, t) == bottom_up(automaton, t)

    def test_single_node(self):
        automaton = sta()
        assert bottom_up_reduce(automaton, tree("a")) == bottom_up(automaton, tree("a"))


class TestJumping:
    def test_active_labels_of_example(self):
        automaton = sta()
        t = tree(("r", ("a", "b"), "c"))
        ids = active_label_ids(automaton, t)
        assert ids is not None
        # Only b changes the initial state (a-selection needs a q1 child).
        assert [t.labels[i] for i in ids] == ["b"]

    def test_skips_inert_subtrees(self):
        automaton = sta()
        # A large b-free sibling chain should be skipped wholesale.
        t = tree(("r", ("a", "b")) + tuple("c" for _ in range(50)))
        index = TreeIndex(t)
        stats = EvalStats()
        run = bottomup_jump(automaton, index, stats)
        assert run is not None
        assert stats.visited < t.n // 2

    @given(binary_trees(labels=("a", "b", "c")))
    @settings(max_examples=60)
    def test_jump_run_values_match_full_run(self, t):
        automaton = sta()
        index = TreeIndex(t)
        full = bottom_up(automaton, t)
        partial = bottomup_jump(automaton, index)
        assert (full is None) == (partial is None)
        if full is not None:
            for v, q in partial.items():
                assert full[v] == q

    @given(binary_trees(labels=("a", "b", "c")))
    @settings(max_examples=40)
    def test_jump_never_visits_more_than_sweep(self, t):
        automaton = sta()
        s_full, s_jump = EvalStats(), EvalStats()
        bottom_up(automaton, t, s_full)
        bottomup_jump(automaton, TreeIndex(t), s_jump)
        assert s_jump.visited <= s_full.visited
