"""Regression tests for the word-parallel BP navigation layer.

``findclose``/``enclose`` skip blocks through min/max excess summaries
and scan candidate blocks byte-at-a-time through 8-bit excess tables;
``select0``/``select1`` walk byte popcount/select tables below a
directory search.  These tests pin them against brute-force references
on structures chosen to cross many blocks -- in particular the deep
trees where the old ``enclose`` block-skip over-scanned (the
``start_exc == target`` clause) and where a too-tight window would skip
the answer entirely.
"""

from __future__ import annotations

import random

import pytest

from repro.index.bitvector import BitVector
from repro.index.succinct import SuccinctTree, _BLOCK
from repro.tree.binary import NIL, BinaryTree


def _brute_findclose(parens, p):
    exc = 0
    for i in range(p, len(parens)):
        exc += 1 if parens[i] else -1
        if exc == 0:
            return i
    raise AssertionError("unbalanced")


def _brute_enclose(parens, p):
    depth = 0
    for i in range(p - 1, -1, -1):
        if parens[i]:
            depth += 1
            if depth > 0:
                return i
        else:
            depth -= 1
    return -1


def _parens_of(tree: BinaryTree):
    out = []
    stack = [(0, 0)]
    while stack:
        v, phase = stack.pop()
        if phase:
            out.append(0)
            continue
        out.append(1)
        stack.append((v, 1))
        for c in reversed(list(tree.children(v))):
            stack.append((c, 0))
    return out


def _deep_spec(depth, fanout=1):
    spec = "leaf"
    for i in range(depth):
        spec = tuple(["n"] + [spec] + ["pad"] * (fanout - 1))
    return spec


class TestDeepTrees:
    """Chains deep enough that every query crosses many 256-bit blocks."""

    @pytest.mark.parametrize("depth", [3, 60, 400, 900])
    def test_enclose_findclose_on_chains(self, depth):
        tree = BinaryTree.from_spec(_deep_spec(depth))
        succ = SuccinctTree.from_binary(tree)
        parens = _parens_of(tree)
        assert 2 * tree.n > _BLOCK or depth < 200  # deep cases span blocks
        for v in range(tree.n):
            p = succ.open_pos(v)
            assert succ.findclose(p) == _brute_findclose(parens, p)
            assert succ.enclose(p) == _brute_enclose(parens, p)
            assert succ.parent(v) == tree.parent[v]

    def test_enclose_block_skip_with_flat_runs(self):
        """A wide-then-deep shape: long runs of '()' siblings create
        blocks whose interior never reaches the enclosing target, so the
        block-skip must take the O(1) start-position path, not scan."""
        spec = tuple(
            ["root"]
            + [("mid", *["leaf"] * 100)]
            + ["leaf"] * 300
            + [_deep_spec(80)]
        )
        tree = BinaryTree.from_spec(spec)
        succ = SuccinctTree.from_binary(tree)
        parens = _parens_of(tree)
        for v in range(tree.n):
            p = succ.open_pos(v)
            assert succ.enclose(p) == _brute_enclose(parens, p)
            assert succ.findclose(p) == _brute_findclose(parens, p)

    def test_to_binary_roundtrip_deep(self):
        tree = BinaryTree.from_spec(_deep_spec(700))
        succ = SuccinctTree.from_binary(tree)
        back = succ.to_binary()
        assert back.left == tree.left
        assert back.right == tree.right
        assert back.parent == tree.parent
        assert back.xml_end == tree.xml_end


class TestRandomTrees:
    def test_navigation_matches_pointer_tree(self):
        rng = random.Random(1234)

        def spec(depth):
            if depth == 0 or rng.random() < 0.25:
                return "l" + str(rng.randint(0, 3))
            kids = [spec(depth - 1) for _ in range(rng.randint(1, 5))]
            return tuple(["n" + str(rng.randint(0, 3))] + kids)

        for _ in range(60):
            tree = BinaryTree.from_spec(spec(6))
            succ = SuccinctTree.from_binary(tree)
            for v in range(tree.n):
                assert succ.first_child(v) == tree.first_child(v)
                assert succ.next_sibling(v) == tree.next_sibling(v)
                assert succ.parent(v) == tree.parent[v]
                assert succ.xml_end(v) == tree.xml_end[v]


class TestSelectDirectories:
    def test_select0_uses_zero_directory(self):
        rng = random.Random(7)
        bits = [rng.random() < 0.7 for _ in range(3000)]
        bv = BitVector(bits)
        zeros = [i for i, b in enumerate(bits) if not b]
        for k in range(len(zeros)):
            assert bv.select0(k) == zeros[k]
        with pytest.raises(IndexError):
            bv.select0(len(zeros))

    def test_select1_byte_tables(self):
        rng = random.Random(8)
        bits = [rng.random() < 0.3 for _ in range(3000)]
        bv = BitVector(bits)
        ones = [i for i, b in enumerate(bits) if b]
        for k in range(len(ones)):
            assert bv.select1(k) == ones[k]

    def test_fast_path_constructors_agree(self):
        import numpy as np

        bits = [1, 0, 1, 1, 0, 0, 1] * 41
        from_list = BitVector(bits)
        from_np = BitVector(np.array(bits, dtype=np.uint8))
        from_bytes = BitVector(bytes(bits))
        for bv in (from_np, from_bytes):
            assert bv.n == from_list.n
            assert bv.total_ones == from_list.total_ones
            for i in range(bv.n):
                assert bv.get(i) == from_list.get(i)
            for k in range(bv.total_ones):
                assert bv.select1(k) == from_list.select1(k)
            for i in range(0, bv.n, 13):
                assert bv.rank1(i) == from_list.rank1(i)
