"""Streaming array-native builder: equivalence, hot-path purity, events."""

import random

import pytest

from repro.index.succinct import SuccinctTree
from repro.tree.binary import BinaryTree
from repro.tree.builder import (
    LateTextChild,
    TreeBuilder,
    XMLNodeBuilder,
    build_tree_from_xml,
)
from repro.tree.document import XMLNode
from repro.tree.parser import parse_events, parse_xml
from repro.xmark.generator import XMarkGenerator

from strategies import random_document


def _arrays(tree: BinaryTree):
    return (
        list(tree.labels),
        list(tree.label_of),
        list(tree.left),
        list(tree.right),
        list(tree.parent),
        list(tree.bparent),
        list(tree.xml_end),
    )


HAND_DOCS = [
    "<a/>",
    "<a><b/></a>",
    "<a><b/><c x='1'>hi</c></a>",
    "<a>pre<b/>post</a>",
    "<r>" + "<a><b/></a>" * 40 + "</r>",
    "<a t='1' u='2'>x<b y='3'>z</b> tail</a>",
    "<a>" + "<b>" * 60 + "deep" + "</b>" * 60 + "</a>",
    "<a>  \n\t </a>",
    "<a><![CDATA[ <raw> ]]><b/></a>",
]


class TestBuilderEquivalence:
    @pytest.mark.parametrize("encode_attributes", [False, True])
    @pytest.mark.parametrize("encode_text", [False, True])
    def test_hand_docs_match_from_document(
        self, encode_attributes, encode_text
    ):
        for xml in HAND_DOCS:
            legacy = BinaryTree.from_document(
                parse_xml(xml),
                encode_attributes=encode_attributes,
                encode_text=encode_text,
            )
            streaming = build_tree_from_xml(
                xml,
                encode_attributes=encode_attributes,
                encode_text=encode_text,
            )
            assert _arrays(legacy) == _arrays(streaming), xml

    def test_fuzz_docs_match_from_document(self):
        rng = random.Random(20260729)
        for _ in range(150):
            xml = random_document(rng, attributes=True, text=True)
            for ea in (False, True):
                for et in (False, True):
                    legacy = BinaryTree.from_document(
                        parse_xml(xml), encode_attributes=ea, encode_text=et
                    )
                    streaming = build_tree_from_xml(
                        xml, encode_attributes=ea, encode_text=et
                    )
                    assert _arrays(legacy) == _arrays(streaming), (xml, ea, et)

    def test_late_mixed_text_falls_back_identically(self):
        # Leading whitespace-only text, then a child, then real text: the
        # streaming #text placement is undecidable online, so the builder
        # signals and from_xml falls back -- byte-identically.
        xml = "<a>  <b/>late words</a>"
        builder = TreeBuilder(encode_text=True)
        with pytest.raises(LateTextChild):
            parse_events(xml, builder)
        legacy = BinaryTree.from_document(parse_xml(xml), encode_text=True)
        assert _arrays(BinaryTree.from_xml(xml, encode_text=True)) == _arrays(
            legacy
        )


class TestHotPathPurity:
    def test_from_xml_allocates_no_xmlnode(self, monkeypatch):
        """Acceptance: the streaming path never materializes an XMLNode."""
        created = []
        original = XMLNode.__init__

        def counting(self, *args, **kwargs):
            created.append(type(self).__name__)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(XMLNode, "__init__", counting)
        xml = "<r>" + "<a x='1'>t<b/></a>" * 25 + "</r>"
        tree = BinaryTree.from_xml(xml, encode_attributes=True, encode_text=True)
        assert tree.n > 100
        assert created == []
        # ...while the legacy pipeline allocates one per element.
        parse_xml(xml)
        assert len(created) == tree.n - 50  # minus @x and #text encodings

    def test_xmark_tree_allocates_no_xmlnode(self, monkeypatch):
        created = []
        original = XMLNode.__init__
        monkeypatch.setattr(
            XMLNode,
            "__init__",
            lambda self, *a, **k: created.append(1) or original(self, *a, **k),
        )
        tree = XMarkGenerator(scale=0.05, seed=7).tree()
        assert tree.n > 500
        assert created == []


class TestBuilderOutputs:
    def test_parens_match_succinct_from_binary(self):
        for xml in HAND_DOCS:
            builder = TreeBuilder()
            parse_events(xml, builder)
            tree = builder.finish()
            direct = SuccinctTree(
                builder.parens_array(), list(tree.label_of), list(tree.labels)
            )
            rebuilt = SuccinctTree.from_binary(tree)
            assert direct.bv._bytes == rebuilt.bv._bytes, xml

    def test_finish_requires_balanced_events(self):
        builder = TreeBuilder()
        builder.start_element("a", None)
        with pytest.raises(ValueError, match="open"):
            builder.finish()

    def test_end_without_start_rejected(self):
        with pytest.raises(ValueError, match="end_element"):
            TreeBuilder().end_element("a")

    def test_multiple_roots_rejected(self):
        builder = TreeBuilder()
        builder.start_element("a", None)
        builder.end_element("a")
        with pytest.raises(ValueError, match="root"):
            builder.start_element("b", None)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="document element"):
            TreeBuilder().finish()

    def test_finished_builder_is_sealed(self):
        builder = TreeBuilder()
        builder.start_element("a", None)
        builder.end_element("a")
        builder.finish()
        with pytest.raises(ValueError, match="finished"):
            builder.start_element("b", None)


class TestXMarkEventStream:
    def test_streaming_tree_matches_legacy_tree(self):
        for text_content in (False, True):
            streaming = XMarkGenerator(
                scale=0.05, seed=3, text_content=text_content
            ).tree()
            legacy = XMarkGenerator(
                scale=0.05, seed=3, text_content=text_content
            ).tree(legacy=True)
            assert _arrays(streaming) == _arrays(legacy)

    def test_document_view_matches_event_stream(self):
        generator = XMarkGenerator(scale=0.05, seed=5, text_content=True)
        doc = generator.document()
        sink = XMLNodeBuilder()
        generator.events(sink)
        replay = sink.document()
        a = [(n.label, n.text) for n in doc.preorder()]
        b = [(n.label, n.text) for n in replay.preorder()]
        assert a == b
